#!/usr/bin/env python3
"""Hypertext queries over the HAM store (Sections 1 and 5, and [CM89]).

The paper's motivating application: structural queries over hypertext.
This example exercises the transactional HAM store end to end:

1. bulk-load a generated hypertext web into the store;
2. run GraphLog queries: table of contents (containment + reading order),
   reachable cards, cross-reference cycles;
3. edit the web inside a transaction (add a link), re-query, then show the
   previous version is still reconstructible (versioning);
4. iterative filtering: turn an answer set into a new graph and query it
   again, as the prototype's third display mode.

Run:  python examples/hypertext_browser.py
"""

from repro import parse_graphical_query
from repro.datasets import random_hypertext
from repro.graphs import EdgeLabel
from repro.ham import HAMStore
from repro.rpq import RPQEvaluator
from repro.visual import render_relation

store = HAMStore()
web = random_hypertext(seed=5, n_documents=3, sections_per_document=4, cross_refs=10)
store.load_database(web)
print(f"loaded web: {store!r}")

# --------------------------------------------------------------- queries
QUERIES = """
% Reading order within a document: contained card reachable over next*.
define (D) -[toc(C)]-> (S0) {
    (D) -[contains]-> (S0);
    (S0) -[next*]-> (C);
}

% Cards reachable from a card by following any link.
define (C1) -[reachable]-> (C2) {
    (C1) -[(next | refers-to | annotates)+]-> (C2);
}

% Cross-reference cycles: a card that refers back to itself indirectly.
define (C) -[in-ref-cycle]-> (C) {
    (C) -[refers-to refers-to*]-> (C);
}
"""
query = parse_graphical_query(QUERIES)
result = store.query(query)
cycles = sorted({c for c, _ in result.facts("in-ref-cycle")})
print(f"cards on a refers-to cycle: {', '.join(cycles) or '(none)'}")
reachable = result.facts("reachable")
print(f"reachable pairs: {len(reachable)}")

# ----------------------------------------------------- transactional edit
version_before = store.version
session = store.session()
with session.transaction() as txn:
    txn.add_edge("doc0-s3", "doc1-s0", EdgeLabel("refers-to"))
print(f"committed version {store.version} (was {version_before})")

after = store.query(query)
print(f"reachable pairs after the new link: {len(after.facts('reachable'))}")

old_graph = store.graph_at(version_before)
print(
    f"version {version_before} still reconstructible: "
    f"{old_graph.edge_count()} edges vs {store.graph.edge_count()} now"
)

# ------------------------------------------------------ iterative filtering
evaluator = RPQEvaluator(store.graph)
refs_only = evaluator.pairs("refers-to+")
print(render_relation(sorted(refs_only)[:8], header=("from", "to"), title="refers-to+ (first rows)"))
