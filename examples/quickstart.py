#!/usr/bin/env python3
"""Quickstart: define a GraphLog query, evaluate it, inspect the translation.

Walks the core workflow of the library on the paper's running example
(Figure 2): the descendants of P1 which are not descendants of P2.

Run:  python examples/quickstart.py
"""

from repro import Database, GraphLogEngine, parse_graphical_query
from repro.visual import graphical_query_to_dot, render_relation

# ---------------------------------------------------------------- the data
#
# A relational database is a set of facts; binary relations are edges of the
# database graph, unary relations annotate nodes (Section 2 of the paper).

db = Database()
db.add_facts(
    "descendant",
    [
        ("adam", "beth"),
        ("adam", "carl"),
        ("beth", "dora"),
        ("carl", "fern"),
        ("gina", "hugo"),
    ],
)
db.add_facts("person", [(p,) for p in ["adam", "beth", "carl", "dora", "fern", "gina", "hugo"]])

# --------------------------------------------------------------- the query
#
# A GraphLog query is a graph pattern.  The header is the *distinguished
# edge*: the relation the query defines.  Dashed closure edges in the paper
# are written with "+"; crossed (negated) edges with "~".

query = parse_graphical_query(
    """
    define (P1) -[not-desc-of(P2)]-> (P3) {
        (P1) -[descendant+]-> (P3);    % P3 is a descendant of P1 ...
        (P2) -[~descendant+]-> (P3);   % ... but not of P2,
        person(P2);                    % for every person P2.
    }
    """
)

# -------------------------------------------------------------- evaluation

engine = GraphLogEngine()
answers = engine.answers(query, db, "not-desc-of")
print(render_relation(answers, header=("P1", "P3", "P2"), title="not-desc-of"))

# ------------------------------------------- what runs under the hood: λ
#
# The logical translation function λ (Definition 2.4) compiles the query
# graph into a stratified Datalog program; closure literals become the
# transitive-closure rule pair of Figure 3.

program = engine.translate(query)
print("translated Datalog program (Figure 3):")
print(program.pretty())

# ------------------------------------------------------------- visual form
#
# The paper's visual formalism round-trips: render the query as Graphviz DOT
# (dashed closure edges, bold distinguished edge, red negated edges).

print("Graphviz DOT of the query:")
print(graphical_query_to_dot(query))
