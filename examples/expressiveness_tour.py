#!/usr/bin/env python3
"""A tour of Theorem 3.3: one query, four equivalent formalisms, round trip.

Walks the paper's expressiveness result end to end on the Figure 2 query:

  1. GraphLog          — evaluate the visual query directly;
  2. SL-DATALOG        — λ translation (Figure 3), evaluate bottom-up;
  3. STC-DATALOG       — Algorithm 3.1 (Figures 7/9 machinery), evaluate;
  4. TC (FO + closure) — translate the STC program to one FO+TC formula
                         per predicate, evaluate model-theoretically;
  5. back to GraphLog  — the STC program re-drawn as a graphical query
                         (Lemma 3.4's other direction), evaluate again;

asserting identical answers at every stage, then explains one answer with a
derivation tree (provenance) — the library's version of the prototype's
answer highlighting.

Run:  python examples/expressiveness_tour.py
"""

from repro import Database, GraphLogEngine, parse_graphical_query
from repro.core.engine import prepare_database
from repro.core.translate import translate
from repro.datalog import evaluate
from repro.datalog.classify import classification
from repro.fo_tc import Structure, answers as fo_answers, stc_to_tc
from repro.translation import graphlog_from_stc, prepare_adom, sl_to_stc
from repro.visual import render_relation

db = Database()
db.add_facts(
    "descendant",
    [("adam", "beth"), ("beth", "dora"), ("adam", "carl"), ("gina", "hugo")],
)
db.add_facts("person", [(p,) for p in ["adam", "beth", "carl", "dora", "gina", "hugo"]])

query = parse_graphical_query(
    """
    define (P1) -[not-desc-of(P2)]-> (P3) {
        (P1) -[descendant+]-> (P3);
        (P2) -[~descendant+]-> (P3);
        person(P2);
    }
    """
)
engine = GraphLogEngine()

# 1. GraphLog ---------------------------------------------------------------
stage1 = engine.answers(query, db, "not-desc-of")
print(f"1. GraphLog answers: {len(stage1)} tuples")

# 2. SL-DATALOG (λ translation) ---------------------------------------------
sl_program = translate(query)
flags = classification(sl_program)
print(f"2. λ yields SL-DATALOG (linear={flags['linear']}, stratified={flags['stratified']}):")
print("   " + "\n   ".join(str(r) for r in sl_program))
prepared = prepare_database(db)
stage2 = set(evaluate(sl_program, prepared).facts("not-desc-of"))
assert stage2 == stage1

# 3. STC-DATALOG (Algorithm 3.1) ---------------------------------------------
stc = sl_to_stc(sl_program, use_predicate_name_signatures=False)
print(f"3. Algorithm 3.1 yields STC-DATALOG ({len(stc.program)} rules, "
      f"{len(stc.components)} recursive component(s))")
stage3 = set(evaluate(stc.program, prepare_adom(prepared)).facts("not-desc-of"))
assert stage3 == stage1

# 4. TC: first-order logic with transitive closure ---------------------------
queries = stc_to_tc(sl_program)
tc_query = queries["not-desc-of"]
print("4. as one FO+TC formula:")
print(f"   {tc_query}")
structure = Structure.from_database(prepared)
stage4 = fo_answers(tc_query.formula, structure, tc_query.parameters)
assert stage4 == stage1

# 5. ... and back to GraphLog -------------------------------------------------
again, _unary = graphlog_from_stc(stc.program)
print(f"5. STC re-drawn as a graphical query with {len(again)} query graphs")
stage5 = set(engine.run(again, prepare_adom(db)).facts("not-desc-of"))
assert stage5 == stage1

print("\nall five stages agree ✓\n")
print(render_relation(sorted(stage1)[:8], header=("P1", "P3", "P2"),
                      title="first answers"))

# Provenance: why is (adam, dora, gina) an answer? ----------------------------
tree = engine.explain(query, db, "not-desc-of", ("adam", "dora", "gina"))
print("why not-desc-of(adam, dora, gina)?")
print(tree.render())
print("\nsupporting base facts:", sorted(tree.base_facts()))
