#!/usr/bin/env python3
"""Software-dependency audit: the Figure 6 workload, scaled up.

Uses the software-development-environment schema of Example 2.6
(``in-module``, ``calls-local``, ``calls-extn``, ``in-library``) to audit a
randomly generated codebase:

1. modules that circularly call themselves through other modules while using
   the async-io library (the paper's ``self-used`` query);
2. modules transitively depending on any library (a reachability report);
3. dead functions: never called locally or externally (negation).

Run:  python examples/software_audit.py
"""

from repro import GraphLogEngine, parse_graphical_query
from repro.datasets import figure6_database, random_callgraph
from repro.visual import render_relation

engine = GraphLogEngine()

AUDIT = """
define (M) -[self-used]-> (M) {
    (F1) -[in-module]-> (M);
    (F1) -[calls-extn (calls-local | calls-extn)*]-> (F2);
    (F2) -[in-module]-> (M);
    (G1) -[in-module]-> (M);
    (G1) -[(calls-local | calls-extn)*]-> (GL);
    (GL) -[in-library]-> (async-io);
}

define (M) -[uses-library(L)]-> (M) {
    (F) -[in-module]-> (M);
    (F) -[(calls-local | calls-extn)*]-> (FL);
    (FL) -[in-library]-> (L);
}

% "Nobody calls F" is a negated *defined* edge: first define the called
% functions (a loop edge, so the relation is the diagonal), then negate it.
define (F) -[called]-> (F) {
    (X) -[calls-local | calls-extn]-> (F);
}

define (F) -[dead-function]-> (M) {
    (F) -[in-module]-> (M);
    (F) -[~called]-> (F);
}
"""


def audit(db, title):
    print(f"=== {title} ===")
    query = parse_graphical_query(AUDIT)
    result = engine.run(query, db)
    self_used = sorted({m for m, _ in result.facts("self-used")})
    print(f"self-used modules (circular + async-io): {', '.join(self_used) or '(none)'}")
    uses = {(m, l) for m, _m2, l in result.facts("uses-library")}
    print(render_relation(uses, header=("module", "library"), title="library dependencies"))
    dead = sorted(result.facts("dead-function"))
    print(render_relation(dead, header=("function", "module"), title="dead functions"))
    print()


audit(figure6_database(), "Figure 6 instance")
audit(random_callgraph(seed=3, n_modules=6, functions_per_module=4), "random codebase (seed 3)")
