#!/usr/bin/env python3
"""Project scheduling with aggregation and path summarization (Figure 11).

The Section 4 workload: a task DAG with durations and scheduled starts.

- critical-path analysis via the max-plus path summarization (the
  ``earlier-start`` stage of Example 4.1);
- delay propagation: how a slip in one task pushes the others
  (the ``delayed-start`` stage);
- aggregate reporting with the Datalog aggregate extension: per-task fan-out
  and the project's longest chain.

Run:  python examples/project_scheduling.py
"""

from repro.aggregation import AggregateProgram, AggregateRule, AggregateTerm, evaluate_with_aggregates
from repro.datalog import lit
from repro.datasets import figure11_database, random_project
from repro.figures.fig11 import delayed_start, earlier_start
from repro.visual import render_relation

db = figure11_database()

# ----------------------------------------------------- earlier-start (fig11)
earlier = earlier_start(db)
rows = [(a, b, v) for (a, b), v in earlier.items()]
print(render_relation(rows, header=("from", "to", "days"), title="earlier-start (longest duration-sum)"))

# Critical path length: the largest earlier-start value out of the sources.
critical = max(earlier.values())
print(f"longest dependency chain (days of downstream work): {critical}\n")

# ------------------------------------------------------------ delay impact
for task, delay in [("design", 7), ("build-core", 3)]:
    impact = delayed_start(db, task, delay)
    print(
        render_relation(
            sorted(impact.items()),
            header=("task", "new start"),
            title=f"if '{task}' slips {delay} days",
        )
    )

# ------------------------------------------------------ aggregate reporting
report = AggregateProgram(
    [
        AggregateRule("fan-out", ["T", AggregateTerm("count")], [lit("affects", "T", "S")]),
        AggregateRule("total-work", [AggregateTerm("sum", "D")], [lit("duration", "T", "D")]),
        AggregateRule("longest-task", [AggregateTerm("max", "D")], [lit("duration", "T", "D")]),
    ]
)
result = evaluate_with_aggregates(report, db)
print(render_relation(result.facts("fan-out"), header=("task", "successors"), title="fan-out"))
(total,) = next(iter(result.facts("total-work")))
(longest,) = next(iter(result.facts("longest-task")))
print(f"total work: {total} days; longest single task: {longest} days\n")

# ------------------------------------------------------------- scaled run
big = random_project(seed=11, n_tasks=60, layers=8)
big_earlier = earlier_start(big)
print(
    f"random project (60 tasks): {len(big_earlier)} dependent pairs, "
    f"critical chain = {max(big_earlier.values())} days"
)
