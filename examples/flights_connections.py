#!/usr/bin/env python3
"""Flight connections: the Figures 1/4/12 workload end to end.

- builds the Figure 1 flights database;
- runs the Figure 4 graphical query (feasible connections, stop-connected
  cities), including the time comparison edge;
- answers "which capitals can I reach from Toronto with at least one stop?"
  by composing a third query graph on top of ``stop-connected``;
- switches to the Figure 12 airline multigraph and evaluates the RT-scale
  regular path query, printing the highlighted DOT.

Run:  python examples/flights_connections.py
"""

from repro import GraphLogEngine, parse_graphical_query
from repro.datasets import figure1_database, figure12_graph
from repro.figures.fig12 import rt_scale_cities
from repro.rpq import RPQEvaluator
from repro.visual import graph_to_dot, render_relation

db = figure1_database()
engine = GraphLogEngine()

# ---------------------------------------------------------------- Figure 4
query = parse_graphical_query(
    """
    define (F1) -[feasible]-> (F2) {
        (F1) -[to]-> (C);
        (C) <-[from]- (F2);
        (F1) -[arrival]-> (TA);
        (F2) -[departure]-> (TD);
        (TA) -[<]-> (TD);
    }

    define (C1) -[stop-connected]-> (C2) {
        (C1) <-[from]- (F1);
        (F1) -[feasible+]-> (F2);
        (F2) -[to]-> (C2);
    }

    % A third graph composing on the previous ones: capitals reachable from
    % toronto with at least one stop.
    define (C) -[capital-with-stops]-> (C) {
        (toronto) -[stop-connected]-> (C);
        capital(C);
    }
    """
)

result = engine.run(query, db)
print(render_relation(result.facts("feasible"), header=("F1", "F2"), title="feasible flights"))
print(render_relation(result.facts("stop-connected"), header=("C1", "C2"), title="stop-connected cities"))
capitals = sorted({c for c, _ in result.facts("capital-with-stops")})
print(f"capitals reachable from toronto with >=1 stop: {', '.join(capitals)}\n")

# --------------------------------------------------------------- Figure 12
graph = figure12_graph()
scales = rt_scale_cities(graph)
print(f"RT-scale cities (stopovers on CP routes rome -> tokyo): {', '.join(sorted(scales))}\n")

evaluator = RPQEvaluator(graph)
edges = {e for e in evaluator.matching_edges("CP+", sources=["rome"]) if e.label == "CP"}
print("airline graph with qualifying CP flights highlighted:")
print(graph_to_dot(graph, name="rt_scale", highlighted_edges=edges))
