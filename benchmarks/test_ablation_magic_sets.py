"""abl4: goal-directed (magic sets) vs full bottom-up evaluation.

Section 6 points implementations at linear-Datalog optimization [Ull89];
magic sets is its canonical instance.  On a bound-argument closure goal over
a graph with a large irrelevant component, the rewritten program explores
only the goal-reachable part.  Shape asserted: identical answers, and the
magic evaluation derives a small fraction of the facts.
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import Engine
from repro.datalog.magic import magic_query
from repro.datalog.parser import parse_atom, parse_program

from conftest import report

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    """
)


def lopsided_db(relevant=8, irrelevant=300):
    db = Database()
    db.add_facts("e", [(f"a{i}", f"a{i+1}") for i in range(relevant)])
    db.add_facts("e", [(f"b{i}", f"b{i+1}") for i in range(irrelevant)])
    return db


GOAL = parse_atom("tc(a0, Y)")
DB = lopsided_db()
EXPECTED = Engine().query(TC, DB, GOAL)


def test_abl4_full_evaluation(benchmark):
    engine = Engine()
    answers = benchmark(engine.query, TC, DB, GOAL)
    assert answers == EXPECTED


def test_abl4_magic_evaluation(benchmark):
    answers, stats = benchmark(magic_query, TC, DB, GOAL)
    assert answers == EXPECTED
    full = Engine()
    full.query(TC, DB, GOAL)
    report(
        "abl4 facts derived",
        [(stats.facts_derived, full.stats.facts_derived)],
        header=("magic", "full"),
    )
    # The win shape: magic touches only the relevant component.
    assert stats.facts_derived < full.stats.facts_derived / 10


@pytest.mark.parametrize("irrelevant", [100, 400])
def test_abl4_win_grows_with_irrelevant_data(benchmark, irrelevant):
    db = lopsided_db(relevant=8, irrelevant=irrelevant)
    answers, stats = benchmark(magic_query, TC, db, GOAL)
    assert len(answers) == 8
    # Magic cost is independent of the irrelevant component's size.
    assert stats.facts_derived <= 100
