"""abl6: evaluating raw vs optimized λ translations.

The λ translation introduces one auxiliary predicate per composite path
subexpression; the optimizer (dedupe + view inlining + pruning) flattens
single-use auxiliaries into their callers, trading intermediate relation
materialization for wider joins.  Shape asserted: identical answers, fewer
rules, and fewer facts derived after optimization.
"""


from repro.core.dsl import parse_graphical_query
from repro.core.engine import prepare_database
from repro.core.translate import translate
from repro.datalog.engine import Engine
from repro.datalog.optimize import optimize
from repro.datasets.random_graphs import random_labeled_graph
from repro.graphs.bridge import database_from_graph

from conftest import report

QUERY = parse_graphical_query(
    """
    define (X) -[out]-> (Y) {
        (X) -[a b (a | b) c]-> (Y);
    }
    """
)
GRAPH = random_labeled_graph(51, 30, 150, labels=("a", "b", "c"))
DATABASE = prepare_database(database_from_graph(GRAPH))
RAW = translate(QUERY)
OPTIMIZED = optimize(RAW, roots=["out"])
EXPECTED = Engine().evaluate(RAW, DATABASE).facts("out")


def test_abl6_raw_translation(benchmark):
    engine = Engine()
    result = benchmark(engine.evaluate, RAW, DATABASE)
    assert result.facts("out") == EXPECTED


def test_abl6_optimized_translation(benchmark):
    engine = Engine()
    result = benchmark(engine.evaluate, OPTIMIZED, DATABASE)
    assert result.facts("out") == EXPECTED

    raw_engine = Engine()
    raw_engine.evaluate(RAW, DATABASE)
    opt_engine = Engine()
    opt_engine.evaluate(OPTIMIZED, DATABASE)
    report(
        "abl6 rules and facts derived",
        [
            ("raw", len(RAW), raw_engine.stats.facts_derived),
            ("optimized", len(OPTIMIZED), opt_engine.stats.facts_derived),
        ],
        header=("variant", "rules", "facts derived"),
    )
    assert len(OPTIMIZED) < len(RAW)
    assert opt_engine.stats.facts_derived <= raw_engine.stats.facts_derived
