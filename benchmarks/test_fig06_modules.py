"""fig6: circularly-used modules invoking async-io code (Example 2.6).

Evaluates the self-used query on the constructed Figure 6 instance (where
the answer is known exactly) and on random call graphs, asserting both
conjuncts of the query semantics on every answer.
"""

import pytest

from repro.core.engine import GraphLogEngine
from repro.datasets.software import figure6_database, random_callgraph
from repro.figures.fig06 import query

from conftest import report


def test_fig06_paper_instance(benchmark):
    graphical = query()
    database = figure6_database()
    engine = GraphLogEngine()
    answers = benchmark(engine.answers, graphical, database, "self-used")
    modules = sorted({m for m, _ in answers})
    assert modules == ["buffers", "netd"]


@pytest.mark.parametrize("n_modules", [6, 12])
def test_fig06_scaling(benchmark, n_modules):
    database = random_callgraph(17, n_modules=n_modules, functions_per_module=5)
    graphical = query()
    engine = GraphLogEngine()
    answers = benchmark(engine.answers, graphical, database, "self-used")
    modules = sorted({m for m, _ in answers})

    # Independent verification of both conjuncts with plain graph search.
    calls = set(database.facts("calls-local")) | set(database.facts("calls-extn"))
    external = set(database.facts("calls-extn"))
    module_of = dict(database.facts("in-module"))
    async_functions = {f for f, lib in database.facts("in-library") if lib == "async-io"}
    from repro.graphs.closure import reflexive_transitive_closure, transitive_closure

    star = reflexive_transitive_closure(calls)
    for module in modules:
        members = {f for f, m in module_of.items() if m == module}
        assert any(
            (f, g) in star for f in members for g in async_functions
        ), f"{module} does not reach async-io"
        assert any(
            first in external and (mid, g) in star
            for g in members
            for first in external
            for f in members
            if first[0] == f
            for mid in [first[1]]
        ), f"{module} has no external self-cycle"
    report(f"fig06 with {n_modules} modules", [(n_modules, modules)])
