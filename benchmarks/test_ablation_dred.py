"""abl6: DRed deletion maintenance vs full recomputation.

The abl5 ablation shows semi-naive delta evaluation winning on *insertions*;
this one covers the other half of view maintenance.  A transitive-closure
view over a long chain loses one edge: delete-and-rederive with support
counting should repair the materialization in time proportional to the
delta's consequences, while recomputation pays for the whole closure again.
The headline test asserts the claimed gap — DRed at least 5x faster than
recomputing, median over repeated runs — on a chain of n >= 2000 edges.
"""

import statistics
import time

import pytest

from repro.datalog.database import Database
from repro.datalog.dred import MaintenancePlan
from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program

from conftest import report

PROGRAM = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    """
)


def chain_edb(n):
    db = Database()
    db.add_facts("e", [(f"n{i}", f"n{i+1}") for i in range(n)])
    return db


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


@pytest.mark.parametrize("size", [200, 400])
def test_abl6_dred_delete_readd_cycle(benchmark, size):
    """One delete + one re-insert of the chain's last edge, maintained."""
    edb = chain_edb(size)
    plan = MaintenancePlan(PROGRAM)
    database, counts = plan.evaluate(edb)
    last = {"e": [(f"n{size-1}", f"n{size}")]}

    def cycle():
        plan.maintain(database, None, last, counts)
        plan.maintain(database, last, None, counts)

    benchmark(cycle)
    assert ("n0", f"n{size}") in database.facts("tc")


def test_abl6_dred_beats_recompute_on_single_edge_deletion():
    """The acceptance claim: >= 5x median speedup at n = 2000."""
    size = 2000
    edb = chain_edb(size)
    plan = MaintenancePlan(PROGRAM)
    database, counts = plan.evaluate(edb)
    last = {"e": [(f"n{size-1}", f"n{size}")]}

    dred_times = []
    for _ in range(3):
        elapsed, _ = timed(lambda: plan.maintain(database, None, last, counts))
        dred_times.append(elapsed)
        plan.maintain(database, last, None, counts)  # restore for the next run
    dred_median = statistics.median(dred_times)

    recompute_time, recomputed = timed(
        lambda: Engine(check_safety=False).evaluate(PROGRAM, edb)
    )
    assert set(database.facts("tc")) == set(recomputed.facts("tc"))

    # Correctness of the deletion itself: the far pair disappears, the
    # surviving prefix closure does not.
    plan.maintain(database, None, last, counts)
    assert ("n0", f"n{size}") not in database.facts("tc")
    assert ("n0", f"n{size-1}") in database.facts("tc")

    speedup = recompute_time / dred_median
    report(
        f"abl6 single-edge deletion, chain n={size}",
        [
            ("dred_median_s", round(dred_median, 4)),
            ("recompute_s", round(recompute_time, 4)),
            ("speedup", round(speedup, 1)),
        ],
    )
    assert speedup >= 5.0
