"""abl3: closure-edge evaluation strategies.

Three ways to answer the same path query:

1. generic λ translation evaluated by the Datalog engine;
2. the Datalog engine with the closure precomputed by a TC kernel
   (GraphLogEngine's ``closure_kernel`` option);
3. the RPQ product-automaton evaluator.

Shape asserted: identical answers; the automaton wins when only reachable
pairs matter (it never materializes intermediate relations), matching the
Section 6 expectation that TC-specialized evaluation pays off.
"""

import pytest

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine
from repro.datasets.random_graphs import random_labeled_graph
from repro.graphs.bridge import database_from_graph
from repro.rpq.evaluate import RPQEvaluator

from conftest import report

GRAPH = random_labeled_graph(41, 40, 160, labels=("a", "b"))
DATABASE = database_from_graph(GRAPH)
QUERY = parse_graphical_query(
    """
    define (X) -[out]-> (Y) {
        (X) -[a+]-> (Y);
    }
    """
)
EXPECTED = RPQEvaluator(GRAPH).pairs("a+")


def test_abl3_datalog_generic(benchmark):
    engine = GraphLogEngine()
    answers = benchmark(engine.answers, QUERY, DATABASE, "out")
    assert answers == EXPECTED


@pytest.mark.parametrize("kernel", ["seminaive", "warshall", "squaring"])
def test_abl3_datalog_with_kernel(benchmark, kernel):
    engine = GraphLogEngine(closure_kernel=kernel)
    answers = benchmark(engine.answers, QUERY, DATABASE, "out")
    assert answers == EXPECTED


def test_abl3_rpq_automaton(benchmark):
    evaluator = RPQEvaluator(GRAPH)
    answers = benchmark(evaluator.pairs, "a+")
    assert answers == EXPECTED
    report("abl3 answer set size", [(len(EXPECTED),)], header=("pairs",))
