"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark asserts the *shape* of the paper's claim (who wins, what is
equal to what, how cost scales) in addition to timing the operation; absolute
numbers are environment-dependent and not compared to the paper (which
reports none).
"""

from __future__ import annotations

import pytest


def report(title, rows, header=None):
    """Print a small table into the benchmark log (visible with -s)."""
    print()
    print(f"== {title} ==")
    if header:
        print("  " + " | ".join(str(h) for h in header))
    for row in rows:
        print("  " + " | ".join(str(cell) for cell in row))


@pytest.fixture(scope="session")
def figure1_db():
    from repro.datasets.flights import figure1_database

    return figure1_database()


@pytest.fixture(scope="session")
def family_db():
    from repro.datasets.family import figure2_family

    return figure2_family()
