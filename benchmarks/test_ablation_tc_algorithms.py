"""abl2: transitive-closure kernels (naive / semi-naive / Warshall / squaring).

The Section 6 remark — implementations benefit from specialized TC
computation — is quantified here: each kernel is benchmarked on a sparse
random graph and a dense cycle-heavy graph.  Shape asserted: all kernels
agree; squaring needs logarithmically many rounds on chains while naive
needs linearly many (visible in timings).
"""

import pytest

from repro.datasets.random_graphs import chain_database, random_edge_relation
from repro.graphs.closure import closure_methods, transitive_closure

SPARSE = set(random_edge_relation(31, 60, 120).facts("edge"))
CHAIN = set(chain_database(64).facts("edge"))
EXPECTED = {name: transitive_closure(SPARSE) for name in ["ref"]}["ref"]
CHAIN_EXPECTED = transitive_closure(CHAIN)


@pytest.mark.parametrize("method", closure_methods())
def test_abl2_sparse_random(benchmark, method):
    result = benchmark(transitive_closure, SPARSE, method)
    assert result == EXPECTED


@pytest.mark.parametrize("method", closure_methods())
def test_abl2_long_chain(benchmark, method):
    result = benchmark(transitive_closure, CHAIN, method)
    assert result == CHAIN_EXPECTED
