"""thm3.2: Algorithm 3.1 runs in time polynomial in program size.

Sweeps input program size and measures translation time and output size,
asserting the *shape*: output rule count grows linearly in the number of
recursive predicates (the paper claims polynomial; the construction is in
fact linear per SCC member), and translated programs remain equivalent.
"""

import pytest

from repro.datalog.parser import parse_program
from repro.translation.differential import check_equivalence, random_database
from repro.translation.sl_to_stc import sl_to_stc

from conftest import report


def _chain_program(n_predicates):
    """q0 is TC over e; each q_{i+1} is TC over q_i: n stacked recursions."""
    lines = [
        "q0(X, Y) :- e(X, Y).",
        "q0(X, Y) :- e(X, Z), q0(Z, Y).",
    ]
    for i in range(1, n_predicates):
        lines.append(f"q{i}(X, Y) :- q{i-1}(X, Y).")
        lines.append(f"q{i}(X, Y) :- q{i-1}(X, Z), q{i}(Z, Y).")
    return parse_program("\n".join(lines))


@pytest.mark.parametrize("n_predicates", [2, 8, 16])
def test_thm32_translation_scales_linearly(benchmark, n_predicates):
    program = _chain_program(n_predicates)
    result = benchmark(sl_to_stc, program, use_predicate_name_signatures=False)
    # Shape: <= 6 output rules per input recursive predicate (2 edge rules,
    # 2 TC rules, 1 read-back, slack for guards).
    assert len(result.program) <= 6 * n_predicates
    assert len(result.components) == n_predicates
    report(
        f"thm32 size at n={n_predicates}",
        [(len(program), len(result.program))],
        header=("input rules", "output rules"),
    )


def test_thm32_translated_programs_stay_equivalent(benchmark):
    program = _chain_program(4)
    db = random_database(3, {"e": 2}, domain_size=6, facts_per_predicate=10)

    def translate_and_verify():
        result = sl_to_stc(program, use_predicate_name_signatures=False)
        equal, diffs = check_equivalence(program, db, translation=result)
        assert equal, diffs
        return result

    benchmark(translate_and_verify)
