"""abl5: incremental view maintenance vs full recomputation.

A materialized transitive-closure view over a growing chain: maintaining it
by delta evaluation after one edge insertion should beat recomputing the
whole closure, and the gap should widen with the database size.
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_program
from repro.ham.views import incremental_insert

from conftest import report

PROGRAM = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    """
)


def chain_edb(n):
    db = Database()
    db.add_facts("e", [(f"n{i}", f"n{i+1}") for i in range(n)])
    return db


@pytest.mark.parametrize("size", [40, 80])
def test_abl5_incremental_one_edge(benchmark, size):
    edb = chain_edb(size)
    materialized = evaluate(PROGRAM, edb)
    new_edge = {"e": [(f"n{size}", f"n{size+1}")]}
    # The new edge extends the chain at the far end; the delta touches
    # every prefix, the worst case for an insertion.
    updated = benchmark(incremental_insert, PROGRAM, materialized, new_edge)
    assert ("n0", f"n{size+1}") in updated.facts("tc")


@pytest.mark.parametrize("size", [40, 80])
def test_abl5_full_recompute(benchmark, size):
    edb = chain_edb(size + 1)

    def recompute():
        return evaluate(PROGRAM, edb)

    result = benchmark(recompute)
    assert ("n0", f"n{size+1}") in result.facts("tc")


def test_abl5_incremental_matches_recompute(benchmark):
    size = 30
    edb = chain_edb(size)
    materialized = evaluate(PROGRAM, edb)

    def maintain_three_inserts():
        state = materialized
        for i in range(3):
            state = incremental_insert(
                PROGRAM, state, {"e": [(f"n{size+i}", f"n{size+i+1}")]}
            )
        return state

    state = benchmark(maintain_three_inserts)
    expected = evaluate(PROGRAM, chain_edb(size + 3))
    assert state.facts("tc") == expected.facts("tc")
    report("abl5 |tc| after maintenance", [(len(state.facts("tc")),)])
