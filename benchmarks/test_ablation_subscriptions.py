"""abl12: subscription fanout — the shared-view registry decouples per-commit
maintenance cost from subscriber count.

A naive design maintains one view *per subscriber*, so a commit costs
O(subscribers) maintenance passes.  The registry keys views by prepared-plan
fingerprint + params and refcounts them: all N subscribers to one query share
one materialized view, one DRed maintenance pass per commit, and one wire
encoding of the delta payload (per-subscriber frames share the nested
row lists).  The ablation drives 1 / 100 / 1000 subscribers through the same
commit sequence and asserts the pass count stays exactly ``commits`` —
independent of N — while reporting fanout throughput (delta frames delivered
per second of commit+drain work).
"""

from __future__ import annotations

import time

import pytest

from repro.graphs.multigraph import LabeledMultigraph
from repro.ham.store import HAMStore
from repro.service.prepared import PreparedQueryCache
from repro.subs import SubscriptionManager

from conftest import report

REACH = "define (X) -[reach]-> (Y) { (X) -[link+]-> (Y); }"

CHAIN = 30
COMMITS = 5


class Sink:
    __slots__ = ("notifications",)

    def __init__(self):
        self.notifications = 0

    def notify(self):
        self.notifications += 1


def chain_store(n=CHAIN):
    graph = LabeledMultigraph()
    for i in range(n):
        graph.add_edge(f"n{i}", f"n{i + 1}", "link")
    store = HAMStore()
    store.load_graph(graph)
    return store


def run_fanout(fanout):
    """Subscribe *fanout* sinks to one query, run COMMITS commits, drain.

    Returns (view, sinks, frames_delivered, commit_seconds, drain_seconds).
    """
    store = chain_store()
    manager = SubscriptionManager(store)
    plan = PreparedQueryCache().get("graphlog", REACH)
    sinks = [Sink() for _ in range(fanout)]
    for sink in sinks:
        manager.subscribe(plan, {"predicate": "reach"}, sink)

    session = store.session()
    started = time.perf_counter()
    for i in range(COMMITS):
        with session.transaction() as txn:
            txn.add_edge(f"m{i}", f"m{i + 1}", "link")
    commit_seconds = time.perf_counter() - started

    started = time.perf_counter()
    delivered = 0
    for sink in sinks:
        frames, disconnect = manager.drain(sink)
        assert not disconnect
        assert [f["frame"] for f in frames] == ["delta"] * COMMITS
        delivered += len(frames)
    drain_seconds = time.perf_counter() - started

    (view,) = manager._views_by_key.values()
    stats = manager.stats()
    manager.close()
    return view, stats, delivered, commit_seconds, drain_seconds


@pytest.mark.parametrize("fanout", [1, 100, 1000])
def test_abl12_one_maintenance_pass_per_commit(fanout):
    """The structural claim: passes == commits, regardless of fanout."""
    view, stats, delivered, _, _ = run_fanout(fanout)
    assert stats["active_subscriptions"] == fanout
    assert stats["shared_views"] == 1
    assert view.maintenance_passes == COMMITS
    assert view.diff_refreshes == 0
    assert delivered == fanout * COMMITS
    assert stats["deltas_pushed"] == fanout * COMMITS


def test_abl12_fanout_throughput_and_flat_maintenance():
    """Maintenance work per commit is flat in N; only delivery scales."""
    rows = []
    passes = {}
    for fanout in (1, 100, 1000):
        view, stats, delivered, commit_s, drain_s = run_fanout(fanout)
        passes[fanout] = view.maintenance_passes
        total = commit_s + drain_s
        rows.append(
            (
                fanout,
                view.maintenance_passes,
                delivered,
                round(commit_s * 1000.0 / COMMITS, 3),
                round(delivered / total if total else 0.0, 0),
            )
        )
    report(
        f"abl12 subscription fanout, chain={CHAIN}, commits={COMMITS}",
        rows,
        header=(
            "subscribers",
            "maintenance_passes",
            "frames",
            "ms_per_commit",
            "frames_per_s",
        ),
    )
    # The claim that makes 10k subscribers affordable: the maintenance pass
    # count is identical at every fanout.
    assert passes[1] == passes[100] == passes[1000] == COMMITS
