"""thm3.4 (flavour): collapsing independent closures into one TC application.

The paper notes that with constants and order, stratified linear programs
collapse to a single transitive-closure application.  We benchmark the
unconditional special case (independent closures merged by disjoint-union
tagging): k separate TC pairs vs one tagged TC over their union.  Shape
asserted: identical answers, exactly one TC pair after merging, and
comparable evaluation cost (the merged closure does the same work inside
one wider relation).
"""


from repro.datalog.database import Database
from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.datasets.random_graphs import random_edge_relation
from repro.translation.merge_tc import count_tc_pairs, merge_independent_closures

from conftest import report

K = 4
PROGRAM = parse_program(
    "".join(
        f"r{i}(X, Y) :- e{i}(X, Y).\nr{i}(X, Y) :- e{i}(X, Z), r{i}(Z, Y).\n"
        for i in range(K)
    )
)
MERGED = merge_independent_closures(PROGRAM)

DB = Database()
for i in range(K):
    component = random_edge_relation(100 + i, 20, 50, predicate=f"e{i}")
    DB.add_facts(f"e{i}", component.facts(f"e{i}"))

EXPECTED = {
    f"r{i}": Engine().evaluate(PROGRAM, DB).facts(f"r{i}") for i in range(K)
}


def test_thm34_separate_closures(benchmark):
    engine = Engine()
    result = benchmark(engine.evaluate, PROGRAM, DB)
    for predicate, rows in EXPECTED.items():
        assert result.facts(predicate) == rows


def test_thm34_single_merged_closure(benchmark):
    assert count_tc_pairs(PROGRAM) == K
    assert count_tc_pairs(MERGED.program) == 1
    engine = Engine()
    result = benchmark(engine.evaluate, MERGED.program, DB)
    for predicate, rows in EXPECTED.items():
        assert result.facts(predicate) == rows
    report(
        "thm34 TC pairs",
        [("separate", K), ("merged", count_tc_pairs(MERGED.program))],
        header=("variant", "TC pairs"),
    )
