"""lem3.5: GraphLog ⊆ QNLOGSPACE — TC by frontier-only reachability.

Contrasts deciding one TC fact by frontier search (memory proportional to
the frontier, the NLOGSPACE flavour) against materializing the full closure
relation.  Shape asserted: the frontier peak stays far below the closure
size, and both methods agree on the decision.
"""

import pytest

from repro.datasets.random_graphs import chain_database, random_edge_relation
from repro.fo_tc.reachability import peak_frontier_size, tc_holds, tc_relation

from conftest import report


def _oracle(pairs):
    pairs = set(pairs)
    return lambda u, v: (u[0], v[0]) in pairs


@pytest.mark.parametrize("length", [30, 60])
def test_lem35_frontier_decision_on_chain(benchmark, length):
    database = chain_database(length)
    pairs = database.facts("edge")
    domain = sorted({x for pair in pairs for x in pair})
    edge = _oracle(pairs)

    holds = benchmark(tc_holds, domain, 1, ("n0",), (f"n{length}",), edge)
    assert holds
    reached, peak = peak_frontier_size(domain, 1, ("n0",), edge)
    closure_size = length * (length + 1) // 2
    assert peak <= 2  # chain frontier is O(1)
    report(
        f"lem35 chain {length}",
        [(peak, closure_size)],
        header=("peak frontier", "full closure size"),
    )


@pytest.mark.parametrize("length", [30, 60])
def test_lem35_materialized_closure_on_chain(benchmark, length):
    database = chain_database(length)
    pairs = database.facts("edge")
    domain = sorted({x for pair in pairs for x in pair})
    edge = _oracle(pairs)

    relation = benchmark(tc_relation, domain, 1, edge)
    assert len(relation) == length * (length + 1) // 2


def test_lem35_methods_agree_on_random_graph(benchmark):
    database = random_edge_relation(9, 14, 30)
    pairs = database.facts("edge")
    domain = sorted({x for pair in pairs for x in pair})
    edge = _oracle(pairs)
    relation = tc_relation(domain, 1, edge)

    def decide_all():
        return {
            (u, v)
            for u in domain
            for v in domain
            if tc_holds(domain, 1, (u,), (v,), edge)
        }

    decided = benchmark(decide_all)
    assert decided == {(u[0], v[0]) for u, v in relation}
