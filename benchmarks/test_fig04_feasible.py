"""fig4: feasible flight connections and stop-connected cities.

Runs the two-query-graph graphical query of Figure 4 on the paper instance
and on random schedules of increasing size; asserts the time-feasibility
semantics on every output tuple.
"""

import pytest

from repro.core.engine import GraphLogEngine
from repro.datasets.flights import random_flights
from repro.figures.fig04 import query

from conftest import report


def test_fig04_paper_instance(benchmark, figure1_db):
    graphical = query()
    engine = GraphLogEngine()
    result = benchmark(engine.run, graphical, figure1_db)
    feasible = result.facts("feasible")
    assert feasible  # the instance admits connections
    departures = dict(figure1_db.facts("departure"))
    arrivals = dict(figure1_db.facts("arrival"))
    for f1, f2 in feasible:
        assert arrivals[f1] < departures[f2]
    # A stop-connected pair needs >= 2 flights: toronto->ottawa is direct only.
    assert ("toronto", "ottawa") not in result.facts("stop-connected")


@pytest.mark.parametrize("n_flights", [50, 150, 300])
def test_fig04_scaling(benchmark, n_flights):
    database = random_flights(11, n_cities=15, n_flights=n_flights)
    graphical = query()
    engine = GraphLogEngine()
    result = benchmark(engine.run, graphical, database)
    report(
        f"fig04 with {n_flights} flights",
        [
            (
                n_flights,
                len(result.facts("feasible")),
                len(result.facts("stop-connected")),
            )
        ],
        header=("flights", "feasible", "stop-connected"),
    )
    assert len(result.facts("feasible")) > 0
