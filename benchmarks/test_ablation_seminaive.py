"""abl1: naive vs semi-naive Datalog evaluation.

The engine's default is semi-naive; on deep recursions (chains) naive
evaluation re-derives every earlier fact each round (cubic-ish work), while
semi-naive joins only the delta.  Shape asserted: identical results, and
semi-naive performs strictly fewer rule firings.
"""

import pytest

from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.datasets.random_graphs import chain_database, random_edge_relation

TC = parse_program(
    """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    """
)


@pytest.mark.parametrize("length", [40, 80])
def test_abl1_seminaive_chain(benchmark, length):
    database = chain_database(length)
    engine = Engine(method="seminaive")
    result = benchmark(engine.evaluate, TC, database)
    assert len(result.facts("tc")) == length * (length + 1) // 2


@pytest.mark.parametrize("length", [40, 80])
def test_abl1_naive_chain(benchmark, length):
    database = chain_database(length)
    engine = Engine(method="naive")
    result = benchmark(engine.evaluate, TC, database)
    assert len(result.facts("tc")) == length * (length + 1) // 2


def test_abl1_same_answers_fewer_iterations(benchmark):
    database = random_edge_relation(21, 40, 120)

    def both():
        semi = Engine(method="seminaive")
        fast = semi.evaluate(TC, database)
        naive = Engine(method="naive")
        slow = naive.evaluate(TC, database)
        return fast, slow, semi.stats, naive.stats

    fast, slow, semi_stats, naive_stats = benchmark(both)
    assert fast.to_dict() == slow.to_dict()
    # Naive restarts every rule each round; semi-naive only joins deltas.
    assert semi_stats.rule_firings <= naive_stats.rule_firings
