"""fig3: the λ translation of the Figure 2 query into Datalog.

Asserts the translated program is exactly the paper's Figure 3 (modulo
generated variable names) and benchmarks translation throughput on batches
of query graphs.
"""

from repro.core.dsl import parse_graphical_query
from repro.core.translate import translate
from repro.figures.fig02 import QUERY_TEXT


def test_fig03_exact_program(benchmark):
    graphical = parse_graphical_query(QUERY_TEXT)
    program = benchmark(translate, graphical)
    text = program.pretty()
    assert (
        "not-desc-of(P1, P3, P2) :- descendant-tc(P1, P3), "
        "not descendant-tc(P2, P3), person(P2)." in text
    )
    # The TC rule pair (2)-(3) of Definition 2.4.
    tc_rules = [r for r in program if r.head.predicate == "descendant-tc"]
    assert len(tc_rules) == 2
    assert {len(r.body) for r in tc_rules} == {1, 2}


def test_fig03_translation_throughput(benchmark):
    # A larger graphical query: ten chained definitions with p.r.e. edges.
    blocks = []
    for i in range(10):
        previous = f"lvl{i-1}" if i else "edge"
        blocks.append(
            f"""
            define (X) -[lvl{i}]-> (Y) {{
                (X) -[({previous} | back)+]-> (Y);
            }}
            """
        )
    graphical = parse_graphical_query("".join(blocks))

    program = benchmark(translate, graphical)
    assert len(program.idb_predicates) >= 10
