"""fig5: the local-family-friends query with path regular expressions.

The p.r.e. ``(father | mother(_))*`` condenses three query graphs into one
edge; this benchmark evaluates it on the Example 2.5 instance and on random
genealogies, asserting the ancestor-or-self semantics of the Kleene star.
"""

import pytest

from repro.core.engine import GraphLogEngine
from repro.datasets.family import example25_family, random_genealogy
from repro.figures.fig05 import query

from conftest import report


def test_fig05_paper_instance(benchmark):
    graphical = query()
    database = example25_family()
    engine = GraphLogEngine()
    answers = benchmark(engine.answers, graphical, database, "local-family-friend")
    mine = {p2 for p1, p2 in answers if p1 == "me"}
    assert mine == {"carol", "alice", "erin"}  # self, father's, grandmother's
    assert "bob" not in mine  # mother's friend lives in ottawa


@pytest.mark.parametrize("generations", [4, 6])
def test_fig05_scaling(benchmark, generations):
    graphical = query()
    database = random_genealogy(
        3, generations=generations, people_per_generation=8, cities=["toronto", "ottawa"]
    )
    engine = GraphLogEngine()
    answers = benchmark(engine.answers, graphical, database, "local-family-friend")
    # Every answer's friend must reside in toronto.
    residences = dict(database.facts("residence"))
    assert all(residences[p2] == "toronto" for _p1, p2 in answers)
    report(
        f"fig05 at {generations} generations",
        [(database.count("person"), len(answers))],
        header=("people", "answers"),
    )
