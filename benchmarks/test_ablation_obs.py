"""abl9: telemetry overhead on the service hot path.

The observability layer claims to be safe to leave on in production: the
abl7 result-cache hit path (a key lookup, ~tens of microseconds) must not
noticeably slow down when the full telemetry stack is armed — histogram
metrics (always on), a JSON logging handler with request-ID stamping
installed on the ``repro`` logger, and the slow-query log enabled with a
threshold no hot request crosses.  The design keeps the per-request
additions to a counter-based request-ID allocation, one threshold
comparison, and histogram observes that were already being paid as
sample-window appends; nothing on the hit path logs, traces, or
allocates beyond the ID string.  Headline bound: armed telemetry stays
within 5% of the bare hot path (min over rounds, plus a small constant
floor so the bound is about overhead, not timer jitter).
"""

import io
import logging
import time

from repro.datasets.flights import random_flights
from repro.graphs.bridge import graph_from_database
from repro.ham.store import HAMStore
from repro.obs.logs import configure_logging
from repro.service.server import QueryService, ServiceConfig

from conftest import report

QUERY = """
define (C1) -[reach]-> (C2) {
    (C1) <-[from]- (F); (F) -[to]-> (C2);
}
define (C1) -[connected]-> (C2) {
    (C1) -[reach+]-> (C2);
}
"""

REQUEST = {"op": "graphlog", "query": QUERY}
REQUESTS_PER_ROUND = 2000
ROUNDS = 7


def flights_service(**overrides):
    store = HAMStore()
    store.load_graph(graph_from_database(random_flights(7, n_cities=20, n_flights=150)))
    return QueryService(store=store, config=ServiceConfig(**overrides))


def hot_round_seconds(service):
    """Min-of-rounds time for REQUESTS_PER_ROUND cache-hit requests."""
    service.execute(REQUEST)  # warm plan + result caches
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        for _ in range(REQUESTS_PER_ROUND):
            service.execute(REQUEST)
        best = min(best, time.perf_counter() - started)
    return best


def test_abl9_telemetry_overhead_on_hot_path():
    baseline_service = flights_service()
    baseline = hot_round_seconds(baseline_service)
    assert baseline_service.execute(REQUEST)["cache"] == "hit"

    # Fully armed: JSON logging handler installed, slowlog enabled with a
    # threshold no cache hit crosses (so the arm cost, not trace cost, is
    # what's measured — hits are never traced by design).
    package_logger = logging.getLogger("repro")
    saved_handlers = list(package_logger.handlers)
    stream = io.StringIO()
    configure_logging(level="info", json_output=True, stream=stream)
    try:
        telemetry_service = flights_service(slow_ms=10_000.0)
        telemetry = hot_round_seconds(telemetry_service)
        response = telemetry_service.execute(REQUEST)
        assert response["cache"] == "hit"
        # Nothing on the hot path logged or recorded a slow query.
        assert telemetry_service.slowlog.snapshot() == []
        assert stream.getvalue() == ""
    finally:
        package_logger.handlers = saved_handlers
        package_logger.setLevel(logging.NOTSET)

    per_request_us = {
        "bare": baseline / REQUESTS_PER_ROUND * 1e6,
        "telemetry": telemetry / REQUESTS_PER_ROUND * 1e6,
    }
    report(
        f"abl9 hot-path cost, {REQUESTS_PER_ROUND} cache-hit requests/round",
        [
            (name, f"{per_request_us[name]:7.2f}", f"{value / baseline:5.2f}x")
            for name, value in (("bare", baseline), ("telemetry", telemetry))
        ],
        header=("mode", "us/request", "vs bare"),
    )

    # Acceptance bound: <= 5% overhead, with a 1us/request jitter floor so
    # a sub-measurable absolute difference can't fail the relative bound.
    floor = 1e-6 * REQUESTS_PER_ROUND
    assert telemetry <= 1.05 * baseline + floor, (
        f"telemetry hot path {telemetry:.4f}s vs bare {baseline:.4f}s "
        f"({telemetry / baseline:.3f}x > 1.05x bound)"
    )


def test_abl9_metrics_are_real_under_load():
    """The timed requests actually hit the telemetry: counters and
    histograms reflect every request, and the exposition renders."""
    service = flights_service()
    service.execute(REQUEST)
    for _ in range(50):
        service.execute(REQUEST)
    snapshot = service.metrics.snapshot()
    assert snapshot["counters"]["requests.graphlog"] == 51
    assert snapshot["latency"]["graphlog"]["count"] == 51
    assert snapshot["latency"]["graphlog"]["p99_ms"] is not None
    text = service.prometheus_text()
    assert 'repro_requests_total{op="graphlog"} 51' in text
    assert 'repro_request_seconds_count{op="graphlog"} 51' in text
