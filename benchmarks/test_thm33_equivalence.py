"""thm3.3: TC = STC-DATALOG = GRAPHLOG = SL-DATALOG.

Evaluates the same query through all four formalisms on one database and
benchmarks each stage, asserting identical answer sets.  The expected cost
shape: the two Datalog evaluations are fastest, the STC form pays the wider
``t`` relation, and the FO+TC evaluator (active-domain enumeration) is the
slowest — it is the specification, not the implementation.
"""

import pytest

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine, prepare_database
from repro.core.translate import translate
from repro.datalog.engine import evaluate
from repro.datasets.family import random_genealogy
from repro.fo_tc.evaluate import Structure, answers as fo_answers
from repro.fo_tc.from_stc import stc_to_tc
from repro.translation.sl_to_stc import prepare_adom, sl_to_stc

from conftest import report

QUERY = """
define (P1) -[not-desc-of(P2)]-> (P3) {
    (P1) -[descendant+]-> (P3);
    (P2) -[~descendant+]-> (P3);
    person(P2);
}
"""


@pytest.fixture(scope="module")
def setting():
    query = parse_graphical_query(QUERY)
    database = prepare_database(
        random_genealogy(8, generations=3, people_per_generation=4)
    )
    sl = translate(query)
    stc = sl_to_stc(sl, use_predicate_name_signatures=False)
    queries = stc_to_tc(sl)
    expected = GraphLogEngine().answers(query, database, "not-desc-of")
    assert expected
    return {
        "query": query,
        "database": database,
        "sl": sl,
        "stc": stc,
        "tc": queries["not-desc-of"],
        "expected": expected,
    }


def test_thm33_stage_graphlog(benchmark, setting):
    engine = GraphLogEngine()
    answers = benchmark(
        engine.answers, setting["query"], setting["database"], "not-desc-of"
    )
    assert answers == setting["expected"]


def test_thm33_stage_sl_datalog(benchmark, setting):
    def run():
        return set(evaluate(setting["sl"], setting["database"]).facts("not-desc-of"))

    answers = benchmark(run)
    assert answers == setting["expected"]


def test_thm33_stage_stc_datalog(benchmark, setting):
    database = prepare_adom(setting["database"])

    def run():
        return set(
            evaluate(setting["stc"].program, database).facts("not-desc-of")
        )

    answers = benchmark(run)
    assert answers == setting["expected"]


def test_thm33_stage_tc_formula(benchmark, setting):
    structure = Structure.from_database(setting["database"])
    tc_query = setting["tc"]

    def run():
        return fo_answers(tc_query.formula, structure, tc_query.parameters)

    answers = benchmark(run)
    assert answers == setting["expected"]
    report(
        "thm33 equal answers across 4 formalisms",
        [(len(setting["expected"]),)],
        header=("|answers|",),
    )
