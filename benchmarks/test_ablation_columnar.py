"""abl11: columnar int-encoded evaluation vs the native tuple-set walker.

The columnar backend dictionary-encodes terms to dense ints, stores
relations as sorted runs of int tuples, and runs joins as batch kernels
(C-level comprehensions over hash probes, with the final join fused into
the head projection).  The native walker builds a substitution dict per
candidate match.  Same programs, same answers — the ablation asserts the
differential equality on every run and the claimed gap on the two
workloads the earlier ablations made canonical:

- the abl6 hot path: semi-naive transitive closure over a long chain;
- the abl7 hot path: the flights ``reach``/``connected`` GraphLog query
  (translated to Datalog) over a dense random flight network.

Headline claim: columnar at least 10x faster than native on both,
median over repeated runs.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.core.dsl import parse_graphical_query
from repro.core.translate import translate
from repro.datalog.database import Database
from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.datasets.flights import random_flights

from conftest import report

CHAIN_PROGRAM = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    """
)

FLIGHTS_QUERY = """
define (C1) -[reach]-> (C2) {
    (C1) <-[from]- (F); (F) -[to]-> (C2);
}
define (C1) -[connected]-> (C2) {
    (C1) -[reach+]-> (C2);
}
"""

FLIGHTS_PROGRAM = translate(parse_graphical_query(FLIGHTS_QUERY))


def chain_edb(n):
    db = Database()
    db.add_facts("e", [(f"n{i}", f"n{i+1}") for i in range(n)])
    return db


def median_time(fn, runs):
    times = []
    value = None
    for _ in range(runs):
        started = time.perf_counter()
        value = fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times), value


def evaluate(method, program, edb):
    return Engine(method=method, check_safety=False).evaluate(program, edb)


@pytest.mark.parametrize("size", [100, 200])
def test_abl11_columnar_chain_closure(benchmark, size):
    """Timed columnar run on the abl6 chain, checked against native."""
    edb = chain_edb(size)
    result = benchmark(evaluate, "columnar", CHAIN_PROGRAM, edb)
    assert result == evaluate("seminaive", CHAIN_PROGRAM, edb)
    assert ("n0", f"n{size}") in result.facts("tc")


def test_abl11_columnar_beats_native_on_chain():
    """The abl6 hot path: >= 10x median speedup at n = 500."""
    size = 500
    edb = chain_edb(size)

    columnar_median, columnar = median_time(
        lambda: evaluate("columnar", CHAIN_PROGRAM, edb), runs=3
    )
    native_median, native = median_time(
        lambda: evaluate("seminaive", CHAIN_PROGRAM, edb), runs=2
    )
    assert columnar == native  # the differential gate, every run

    speedup = native_median / columnar_median
    report(
        f"abl11 chain transitive closure, n={size}",
        [
            ("native_median_s", round(native_median, 4)),
            ("columnar_median_s", round(columnar_median, 4)),
            ("speedup", round(speedup, 1)),
        ],
    )
    assert speedup >= 10.0


def test_abl11_columnar_beats_native_on_flights():
    """The abl7 hot path: >= 10x median speedup on the translated query."""
    edb = random_flights(7, n_cities=150, n_flights=5000)

    columnar_median, columnar = median_time(
        lambda: evaluate("columnar", FLIGHTS_PROGRAM, edb), runs=3
    )
    native_median, native = median_time(
        lambda: evaluate("seminaive", FLIGHTS_PROGRAM, edb), runs=2
    )
    assert columnar == native  # the differential gate, every run
    assert columnar.facts("connected")

    speedup = native_median / columnar_median
    report(
        "abl11 flights reach/connected, 150 cities x 5000 flights",
        [
            ("native_median_s", round(native_median, 4)),
            ("columnar_median_s", round(columnar_median, 4)),
            ("speedup", round(speedup, 1)),
        ],
    )
    assert speedup >= 10.0


def test_abl11_encode_cache_amortized_across_queries():
    """Repeat queries against one database reuse the encoded columns: the
    second run must not pay the encode again (structurally asserted via
    the cache, not timing)."""
    from repro.datalog.columnar import encode_database

    edb = chain_edb(100)
    evaluate("columnar", CHAIN_PROGRAM, edb)
    encoded = encode_database(edb)
    evaluate("columnar", CHAIN_PROGRAM, edb)
    assert encode_database(edb) is encoded
