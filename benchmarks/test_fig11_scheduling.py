"""fig11: delay propagation with aggregation and path summarization.

Benchmarks the three-stage Example 4.1 computation (move durations, longest
path-sums, delayed starts) on the paper instance and on random projects,
asserting the max-plus semantics against an independent brute-force
enumeration on the small instance.
"""


import pytest

from repro.datasets.tasks import figure11_database, random_project
from repro.figures.fig11 import delayed_start, earlier_start

from conftest import report


def _all_paths(edges, source, target):
    adjacency = {}
    for a, b, w in edges:
        adjacency.setdefault(a, []).append((b, w))

    def walk(node, total):
        if node == target:
            yield total
        for nxt, weight in adjacency.get(node, ()):
            yield from walk(nxt, total + weight)

    return list(walk(source, 0))


def test_fig11_paper_instance(benchmark):
    database = figure11_database()
    earlier = benchmark(earlier_start, database)
    # Independent brute force: E is the max total over all paths.
    durations = dict(database.facts("duration"))
    edges = [(a, b, durations[b]) for a, b in database.facts("affects")]
    for (a, b), value in earlier.items():
        totals = _all_paths(edges, a, b)
        assert totals and max(totals) == value


def test_fig11_delay_impact(benchmark):
    database = figure11_database()
    delayed = benchmark(delayed_start, database, "design", 7)
    assert delayed["build-core"] == 12
    assert set(delayed) == {"build-ui", "build-core", "integrate", "test", "ship"}


@pytest.mark.parametrize("n_tasks", [30, 60])
def test_fig11_scaling(benchmark, n_tasks):
    database = random_project(23, n_tasks=n_tasks, layers=6)
    earlier = benchmark(earlier_start, database)
    critical = max(earlier.values()) if earlier else 0
    report(
        f"fig11 with {n_tasks} tasks",
        [(n_tasks, len(earlier), critical)],
        header=("tasks", "dependent pairs", "critical chain"),
    )
    assert earlier
