"""abl13: distributed-tracing overhead on the service hot path.

Head-sampled tracing claims to be cheap enough to leave on in production
at a realistic rate.  On the abl7 result-cache hit path (~tens of
microseconds per request) the unsampled request pays one ambient-context
read, one deterministic counter tick in the sampler, and — for the 1-in-N
sampled requests — a span tree whose hit path opens exactly one request
span.  Headline bound: tracing at a 1% head-sample rate stays within 5%
of the untraced hot path (min over rounds, plus a small constant floor so
the bound is about overhead, not timer jitter).  Full tracing (rate 1.0)
is measured and reported for scale but not bounded: tracing every request
on a ~12us path is a debugging posture, not a production one.
"""

import time

from repro.datasets.flights import random_flights
from repro.graphs.bridge import graph_from_database
from repro.ham.store import HAMStore
from repro.service.server import QueryService, ServiceConfig

from conftest import report

QUERY = """
define (C1) -[reach]-> (C2) {
    (C1) <-[from]- (F); (F) -[to]-> (C2);
}
define (C1) -[connected]-> (C2) {
    (C1) -[reach+]-> (C2);
}
"""

REQUEST = {"op": "graphlog", "query": QUERY}
REQUESTS_PER_ROUND = 2000
ROUNDS = 7
SAMPLE_RATE = 0.01


def flights_service(**overrides):
    store = HAMStore()
    store.load_graph(graph_from_database(random_flights(7, n_cities=20, n_flights=150)))
    return QueryService(store=store, config=ServiceConfig(**overrides))


def hot_round_seconds(service):
    """Min-of-rounds time for REQUESTS_PER_ROUND cache-hit requests."""
    service.execute(REQUEST)  # warm plan + result caches
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        for _ in range(REQUESTS_PER_ROUND):
            service.execute(REQUEST)
        best = min(best, time.perf_counter() - started)
    return best


def test_abl13_sampled_tracing_overhead_on_hot_path():
    baseline_service = flights_service()
    baseline = hot_round_seconds(baseline_service)
    assert baseline_service.execute(REQUEST)["cache"] == "hit"

    sampled_service = flights_service(trace_sample=SAMPLE_RATE)
    sampled = hot_round_seconds(sampled_service)
    # The sampler really fired: the deterministic 1/N cadence means the
    # ring saw traces, and every sampled response carried its trace id.
    assert sampled_service.traces.stats()["recorded"] > 0
    response = sampled_service.execute(REQUEST)
    assert response["cache"] == "hit"

    full_service = flights_service(trace_sample=1.0)
    full = hot_round_seconds(full_service)
    assert full_service.execute(REQUEST)["trace_id"] is not None

    per_request_us = {
        "untraced": baseline,
        f"sampled {SAMPLE_RATE:g}": sampled,
        "full 1.0": full,
    }
    report(
        f"abl13 tracing cost, {REQUESTS_PER_ROUND} cache-hit requests/round",
        [
            (name, f"{value / REQUESTS_PER_ROUND * 1e6:7.2f}",
             f"{value / baseline:5.2f}x")
            for name, value in per_request_us.items()
        ],
        header=("mode", "us/request", "vs untraced"),
    )

    # Acceptance bound (ISSUE 10): sampled tracing <= 1.05x the untraced
    # path, with a 1us/request jitter floor so a sub-measurable absolute
    # difference cannot fail the relative bound.
    floor = 1e-6 * REQUESTS_PER_ROUND
    assert sampled <= 1.05 * baseline + floor, (
        f"sampled tracing hot path {sampled:.4f}s vs untraced {baseline:.4f}s "
        f"({sampled / baseline:.3f}x > 1.05x bound)"
    )


def test_abl13_sampling_is_deterministic_and_counted():
    """The measured configuration really samples 1 in N: exact counts from
    the deterministic sampler, mirrored in the trace counters."""
    service = flights_service(trace_sample=0.1)
    service.execute(REQUEST)  # warm (this one ticks the sampler too)
    for _ in range(99):
        service.execute(REQUEST)
    stats = service.stats()
    assert stats["traces"]["sample_rate"] == 0.1
    assert service.metrics.counter("trace.sampled") == 10
    assert service.traces.stats()["recorded"] == 10
