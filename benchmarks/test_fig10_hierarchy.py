"""fig10: the expressive-power hierarchy, as executable evidence.

Benchmarks the full evidence-check suite of Figure 10 plus the FO-vs-TC
separation at growing chain lengths (any fixed FO unfolding depth stops
finding pairs; TC keeps finding them).
"""

import pytest

from repro.datalog.terms import Variable
from repro.datasets.random_graphs import chain_database
from repro.figures import fig10
from repro.fo_tc.evaluate import Structure, answers as fo_answers
from repro.fo_tc.formulas import PredAtom, TCApp

from conftest import report


def test_fig10_all_checks(benchmark):
    artifacts = benchmark(fig10.reproduce)
    assert artifacts["all_pass"], artifacts["checks"]


@pytest.mark.parametrize("chain_length", [5, 8])
def test_fig10_fo_vs_tc_separation(benchmark, chain_length):
    database = chain_database(chain_length)
    structure = Structure.from_database(database)
    X, Y, U, V = (Variable(n) for n in "XYUV")
    k = 3  # fixed FO unfolding depth

    fo_formula = fig10._fo_reach_k(k)
    tc_formula = TCApp((U,), (V,), PredAtom("edge", (U, V)), (X,), (Y,))

    def run_both():
        fo = fo_answers(fo_formula, structure, (X, Y))
        tc = fo_answers(tc_formula, structure, (X, Y))
        return fo, tc

    fo, tc = benchmark(run_both)
    endpoints = ("n0", f"n{chain_length}")
    assert endpoints in tc
    assert endpoints not in fo  # depth-3 FO cannot see distance > 3
    assert fo < tc
    report(
        f"fig10 FO(depth {k}) vs TC on chain {chain_length}",
        [(len(fo), len(tc))],
        header=("|FO answers|", "|TC answers|"),
    )
