"""fig2: the 'descendants of P1 which are not descendants of P2' query.

Benchmarks GraphLog evaluation of the Figure 2 query on the paper's family
and on generated genealogies, asserting the semantic shape (negation prunes
exactly the P2-descendants).
"""

import pytest

from repro.core.engine import GraphLogEngine
from repro.datasets.family import figure2_family, random_genealogy
from repro.figures.fig02 import query

from conftest import report


def test_fig02_paper_instance(benchmark):
    graphical = query()
    database = figure2_family()
    engine = GraphLogEngine()
    answers = benchmark(engine.answers, graphical, database, "not-desc-of")
    assert ("adam", "dora", "gina") in answers
    # Semantic shape: (P1, P3, P2) present iff P3 below P1 and not below P2.
    descendants = database.facts("descendant")
    closure = _closure(descendants)
    people = {p for (p,) in database.facts("person")}
    expected = {
        (p1, p3, p2)
        for (p1, p3) in closure
        for p2 in people
        if (p2, p3) not in closure
    }
    assert answers == expected


@pytest.mark.parametrize("generations", [4, 6])
def test_fig02_scaling(benchmark, generations):
    graphical = query()
    database = random_genealogy(1, generations=generations, people_per_generation=6)
    engine = GraphLogEngine()
    answers = benchmark(engine.answers, graphical, database, "not-desc-of")
    report(
        f"fig02 at {generations} generations",
        [(database.count("person"), database.count("descendant"), len(answers))],
        header=("people", "descendant facts", "answers"),
    )
    assert answers


def _closure(pairs):
    from repro.graphs.closure import transitive_closure

    return transitive_closure(set(pairs))
