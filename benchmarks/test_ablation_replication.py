"""abl10: aggregate read throughput vs replica count (0 / 1 / 2).

The replication design claim: read capacity scales with replicas because
each replica is its own process with its own event loop — the primary's
single asyncio loop is the single-node read ceiling, and WAL shipping
moves read work off it entirely.  This benchmark boots real server
subprocesses (one primary, then one and two replicas of it), preloads a
chain graph, and measures aggregate hot-read QPS from a fixed pool of
client threads spread across the read backends.  Hot read = the same
datalog transitive-closure request repeatedly, so after the first request
each backend serves result-cache hits and the per-request cost is the
wire/serialization work every deployment pays.

Clients send pre-serialized request bytes and count response lines
without decoding them: the point is to saturate the servers, not the
client's JSON parser.  Headline bound (the acceptance criterion): with
two replicas, aggregate read QPS is at least **1.8x** the single-node
(replica-less, primary-only) figure, best of repeated rounds.

The bound is a claim about parallel hardware — three busy processes
(client, two replicas) cannot outrun one on a single core, they just
time-slice it.  On boxes with fewer than four usable cores the benchmark
still runs every scenario and reports the table (so the cluster is
exercised end to end), but the scaling assertion is skipped.
"""

import json
import os
import re
import socket
import subprocess
import sys
import threading
import time

import pytest

from conftest import report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LISTEN = re.compile(r"listening on [\d.]+:(\d+)")

CHAIN = 60
CLIENT_THREADS = 4
#: Cores this process may use: client + primary + 2 replicas need real
#: parallelism before aggregate QPS can scale, hence the 4-core floor.
CORES = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
ROUND_SECONDS = 1.2
ROUNDS = 3
PROGRAM = "tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), e(Z,Y)."
REQUEST = (
    json.dumps({"id": 1, "op": "datalog", "program": PROGRAM, "predicate": "tc"})
    + "\n"
).encode()


def spawn_serve(*args):
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(f"server exited before listening (rc={process.poll()})")
        match = LISTEN.search(line)
        if match:
            return process, int(match.group(1))
    process.kill()
    raise AssertionError("server never reported its port")


def preload(port):
    from repro.service.client import ServiceClient

    with ServiceClient(port=port, timeout=30) as client:
        client.update(edges=[[f"n{i}", "e", f"n{i + 1}"] for i in range(CHAIN)])
        return client.stats()["store"]["version"]


def wait_converged(port, version, timeout=30):
    from repro.service.client import ServiceClient

    deadline = time.monotonic() + timeout
    with ServiceClient(port=port, timeout=10) as client:
        while time.monotonic() < deadline:
            if client.stats()["replication"]["applied_version"] == version:
                return
            time.sleep(0.05)
    raise AssertionError(f"replica :{port} never reached version {version}")


def read_loop(port, stop, counts, index):
    """Hot-read ping-pong on one raw connection; counts responses only."""
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        reader = sock.makefile("rb")
        done = 0
        while not stop.is_set():
            sock.sendall(REQUEST)
            if not reader.readline():
                raise AssertionError("server closed the connection mid-benchmark")
            done += 1
        counts[index] = done


def measure_qps(backend_ports):
    """Best-of-rounds aggregate QPS from CLIENT_THREADS across backends."""
    best = 0.0
    for _ in range(ROUNDS):
        stop = threading.Event()
        counts = [0] * CLIENT_THREADS
        threads = [
            threading.Thread(
                target=read_loop,
                args=(backend_ports[i % len(backend_ports)], stop, counts, i),
                daemon=True,
            )
            for i in range(CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()
        started = time.perf_counter()
        time.sleep(ROUND_SECONDS)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        elapsed = time.perf_counter() - started
        best = max(best, sum(counts) / elapsed)
    return best


def test_abl10_read_qps_scales_with_replicas():
    processes = []
    try:
        primary, primary_port = spawn_serve()
        processes.append(primary)
        version = preload(primary_port)

        replica_ports = []
        for _ in range(2):
            process, port = spawn_serve(
                "--replica-of", f"127.0.0.1:{primary_port}", "--repl-wait-ms", "500"
            )
            processes.append(process)
            wait_converged(port, version)
            replica_ports.append(port)

        scenarios = [
            ("0 (primary only)", [primary_port]),
            ("1", replica_ports[:1]),
            ("2", replica_ports),
        ]
        results = []
        for label, ports in scenarios:
            results.append((label, measure_qps(ports)))

        baseline = results[0][1]
        report(
            f"abl10: aggregate hot-read QPS vs replica count ({CORES} cores)",
            [
                (label, f"{qps:9.0f}", f"{qps / baseline:5.2f}x")
                for label, qps in results
            ],
            header=("replicas", "qps", "vs single-node"),
        )
        # Every scenario must actually have served traffic, cores or not.
        for label, qps in results:
            assert qps > 0, f"no reads completed with replicas={label}"
        if CORES < 4:
            pytest.skip(
                f"read-scaling bound needs >= 4 usable cores, have {CORES}; "
                "cluster exercised and QPS table reported above"
            )
        two_replica = results[2][1]
        assert two_replica >= 1.8 * baseline, (
            f"2-replica read QPS {two_replica:.0f} is below 1.8x the "
            f"single-node {baseline:.0f}"
        )
    finally:
        for process in processes:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=30)
            process.stdout.close()
