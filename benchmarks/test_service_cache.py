"""abl7: service-cache ablation — cold vs prepared-plan vs result-cache hit.

The serving layer has three progressively warmer paths for an identical
query: (a) *cold* — parse, λ-translate, safety-check, stratify, evaluate;
(b) *prepared* — the compiled plan is cached, only evaluation runs; (c)
*hot* — both the plan and the result are cached, the request is a key
lookup.  Shape asserted: all three return identical answers, and the hot
path does no evaluation at all (its cost is independent of the data), which
we verify structurally via cache counters and by it beating the cold path.
"""

from __future__ import annotations

from repro.datasets.flights import random_flights
from repro.graphs.bridge import graph_from_database
from repro.ham.store import HAMStore
from repro.service.server import QueryService, ServiceConfig

from conftest import report

QUERY = """
define (C1) -[reach]-> (C2) {
    (C1) <-[from]- (F); (F) -[to]-> (C2);
}
define (C1) -[connected]-> (C2) {
    (C1) -[reach+]-> (C2);
}
"""

REQUEST = {"op": "graphlog", "query": QUERY}


def flights_service():
    store = HAMStore()
    store.load_graph(graph_from_database(random_flights(7, n_cities=20, n_flights=150)))
    return QueryService(store=store, config=ServiceConfig())


EXPECTED = flights_service().execute(REQUEST)["result"]


def test_abl7_cold(benchmark):
    """Fresh service per run: plan compilation + evaluation every time."""

    def cold():
        return flights_service().execute(REQUEST)

    response = benchmark(cold)
    assert response["cache"] == "miss"
    assert response["result"] == EXPECTED


def test_abl7_prepared_plan(benchmark):
    """Plan cached, result cache emptied: evaluation only."""
    service = flights_service()
    service.execute(REQUEST)  # warm the plan cache

    def prepared():
        service.results.clear()
        return service.execute(REQUEST)

    response = benchmark(prepared)
    assert response["cache"] == "miss"
    assert response["result"] == EXPECTED
    stats = service.plans.stats()
    assert stats["misses"] == 1 and stats["hits"] >= 1


def test_abl7_result_cache_hit(benchmark):
    """Fully warm: the request never reaches the evaluator."""
    service = flights_service()
    service.execute(REQUEST)
    misses_after_warmup = service.results.stats()["misses"]

    response = benchmark(service.execute, REQUEST)
    assert response["cache"] == "hit"
    assert response["result"] == EXPECTED
    assert service.results.stats()["misses"] == misses_after_warmup


def test_abl7_shape(benchmark):
    """One combined run reporting the three latencies; hot must beat cold."""
    import time

    service = flights_service()

    def once(fn):
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started

    cold = once(lambda: service.execute(REQUEST))
    service.results.clear()
    warm_plan = once(lambda: service.execute(REQUEST))
    hot = min(once(lambda: service.execute(REQUEST)) for _ in range(5))
    benchmark(service.execute, REQUEST)

    report(
        "abl7 identical-query latency (ms)",
        [(round(cold * 1e3, 3), round(warm_plan * 1e3, 3), round(hot * 1e3, 3))],
        header=("cold", "prepared-plan", "result-hit"),
    )
    # The hot path is a dict lookup; the cold path runs the full pipeline.
    assert hot < cold
