"""fig1: the flights database and its graph encoding (Figure 1).

Regenerates the figure's artifact (the database graph) and benchmarks the
relational <-> graph bridge at paper scale and at synthetic scale.
"""

from repro.datasets.flights import figure1_database, random_flights
from repro.graphs.bridge import database_from_graph, graph_from_database

from conftest import report


def test_fig01_exact_instance(benchmark):
    database = figure1_database()
    graph = benchmark(graph_from_database, database)
    # Shape of Figure 1: flights and cities as nodes, capital annotations.
    assert graph.node_label("ottawa") == frozenset({"capital"})
    assert graph.node_label("washington") == frozenset({"capital"})
    flights = {f for f, _city in database.facts("from")}
    assert len(flights) == 8
    assert all(graph.has_node(f) for f in flights)
    # Each flight contributes 4 edges (from, to, departure, arrival).
    assert graph.edge_count() == 32
    report(
        "fig01 graph encoding",
        [(graph.node_count(), graph.edge_count())],
        header=("nodes", "edges"),
    )


def test_fig01_roundtrip_at_scale(benchmark):
    database = random_flights(7, n_cities=40, n_flights=400)

    def roundtrip():
        return database_from_graph(graph_from_database(database))

    back = benchmark(roundtrip)
    assert back == database
