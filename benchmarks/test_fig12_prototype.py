"""fig12: the prototype's RT-scale query over the HAM-backed airline graph.

Benchmarks the G+ edge-query path (RPQ product search) including result
highlighting, on the paper's graph and on random airline networks.
"""

import pytest

from repro.datasets.airlines import figure12_graph, random_airline_graph
from repro.figures.fig12 import rt_scale_cities
from repro.ham.store import HAMStore
from repro.rpq.evaluate import RPQEvaluator
from repro.visual.highlight import highlight_rpq

from conftest import report


def test_fig12_rt_scale(benchmark):
    graph = figure12_graph()
    scales = benchmark(rt_scale_cities, graph)
    assert scales == {"geneva", "montreal", "toronto", "vancouver"}


def test_fig12_ham_load_and_query(benchmark):
    def load_and_query():
        store = HAMStore()
        store.load_graph(figure12_graph())
        return store.rpq("CP+", source="rome")

    targets = benchmark(load_and_query)
    assert "tokyo" in targets


def test_fig12_highlighting(benchmark):
    graph = figure12_graph()
    edges, dot = benchmark(highlight_rpq, graph, "CP+", ["rome"])
    assert all(e.label == "CP" for e in edges)
    assert "color=red" in dot


@pytest.mark.parametrize("n_cities", [30, 80])
def test_fig12_scaling(benchmark, n_cities):
    graph = random_airline_graph(5, n_cities=n_cities, flights_per_airline=n_cities * 2)
    evaluator = RPQEvaluator(graph)
    pairs = benchmark(evaluator.pairs, "CP+ AA?")
    report(
        f"fig12 RPQ on {n_cities} cities",
        [(n_cities, graph.edge_count(), len(pairs))],
        header=("cities", "flights", "answer pairs"),
    )
    assert pairs
