"""abl8: durable commit throughput across fsync policies vs in-memory.

The durability design claims the WAL is cheap relative to the store's own
commit cost: every commit already deep-copies the graph for snapshot
isolation, so the incremental price of framing one JSON record and writing
it to the OS page cache (``fsync=off`` / ``interval`` between syncs) should
disappear into that copy.  The headline test asserts the acceptance bound —
``fsync=interval`` commits within 1.25x of a purely in-memory store, min
over repeated rounds — on a preloaded ~500-edge graph.  ``fsync=always``
pays a real disk flush per commit and is reported, not bounded: its cost is
the device's, not the subsystem's.
"""

import time

from repro.ham.store import HAMStore
from repro.persist import DurabilityManager, PersistenceConfig

from conftest import report

PRELOAD_EDGES = 500
COMMITS_PER_ROUND = 40
ROUNDS = 5


def preload(store):
    session = store.session()
    with session.transaction() as txn:
        for i in range(PRELOAD_EDGES):
            txn.add_edge(f"base{i}", f"base{i + 1}", "rail")


def commit_round(store, round_no):
    session = store.session()
    for i in range(COMMITS_PER_ROUND):
        with session.transaction() as txn:
            txn.add_edge(f"r{round_no}n{i}", f"r{round_no}n{i + 1}", "hop")


def best_round_seconds(store):
    """Min-of-rounds commit time: least noisy estimator for a bound check."""
    best = float("inf")
    for round_no in range(ROUNDS):
        started = time.perf_counter()
        commit_round(store, round_no)
        best = min(best, time.perf_counter() - started)
    return best


def durable_store(tmp_path, policy):
    manager = DurabilityManager(
        PersistenceConfig(str(tmp_path / policy), fsync=policy, fsync_interval=0.05)
    )
    store = manager.recover()
    preload(store)
    return manager, store


def test_abl8_fsync_policy_overhead(tmp_path):
    memory_store = HAMStore()
    preload(memory_store)
    memory = best_round_seconds(memory_store)

    timings = {"in-memory": memory}
    managers = []
    for policy in ("off", "interval", "always"):
        manager, store = durable_store(tmp_path, policy)
        managers.append(manager)
        timings[policy] = best_round_seconds(store)

    per_commit = {k: v / COMMITS_PER_ROUND * 1e6 for k, v in timings.items()}
    report(
        f"abl8 commit cost, {PRELOAD_EDGES}-edge graph, {COMMITS_PER_ROUND} commits/round",
        [
            (name, f"{per_commit[name]:9.1f}", f"{timings[name] / memory:5.2f}x")
            for name in ("in-memory", "off", "interval", "always")
        ],
        header=("policy", "us/commit", "vs memory"),
    )
    for manager in managers:
        manager.close()

    # The acceptance bound: interval-fsync durability costs <= 25% on top of
    # the in-memory commit path (the graph copy dominates both).
    assert timings["interval"] <= 1.25 * memory, (
        f"fsync=interval {timings['interval']:.4f}s vs in-memory {memory:.4f}s "
        f"({timings['interval'] / memory:.2f}x > 1.25x bound)"
    )
    # Sanity on ordering: page-cache-only policies never beat pure memory by
    # more than noise, and always-fsync is the most expensive policy.
    assert timings["always"] >= timings["off"] * 0.9


def test_abl8_durable_state_survives_benchmark(tmp_path):
    """The timed stores are real: what abl8 wrote recovers byte-for-byte."""
    manager, store = durable_store(tmp_path, "interval")
    commit_round(store, 0)
    version, edges = store.version, store.graph.edge_count()
    manager.close()
    manager2 = DurabilityManager(PersistenceConfig(str(tmp_path / "interval")))
    recovered = manager2.recover()
    assert recovered.version == version
    assert recovered.graph.edge_count() == edges
    manager2.close()
