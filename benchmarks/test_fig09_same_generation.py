"""fig9 (and fig7/fig8): Algorithm 3.1 on the same-generation program.

Benchmarks the translation itself and the evaluation of the input vs the
output program, asserting exact Figure 9 output and semantic equivalence.
The paper's claim is equivalence, not speed: the TC form usually pays a
constant-factor overhead for the wider ``t`` relation, which the report rows
make visible.
"""

import pytest

from repro.datasets.family import random_genealogy
from repro.figures.fig08 import program as sg_program
from repro.translation.differential import idb_snapshot
from repro.translation.sl_to_stc import prepare_adom, sl_to_stc

from conftest import report


def test_fig09_translation(benchmark):
    program = sg_program()
    result = benchmark(sl_to_stc, program)
    text = result.program.pretty()
    assert "e(c, c, c, X, X, sg) :- person(X)." in text
    assert "e(Z, W, sg, X, Y, sg) :- parent(X, Z), parent(Y, W)." in text
    assert "sg(X1, X2) :- t(c, c, c, X1, X2, sg)." in text


@pytest.mark.parametrize("generations", [4, 5])
def test_fig09_original_evaluation(benchmark, generations):
    program = sg_program()
    database = random_genealogy(2, generations=generations, people_per_generation=6)
    snapshot = benchmark(idb_snapshot, program, database)
    assert snapshot["sg"]


@pytest.mark.parametrize("generations", [4, 5])
def test_fig09_translated_evaluation(benchmark, generations):
    program = sg_program()
    translated = sl_to_stc(program).program
    database = prepare_adom(
        random_genealogy(2, generations=generations, people_per_generation=6)
    )
    snapshot = benchmark(idb_snapshot, translated, database)
    original = idb_snapshot(program, database)
    assert snapshot["sg"] == original["sg"]
    report(
        f"fig09 equivalence at {generations} generations",
        [(generations, len(snapshot["sg"]))],
        header=("generations", "|sg|"),
    )
