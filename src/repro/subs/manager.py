"""The subscription manager: shared views, delta fanout, backpressure.

Threading model: commits dispatch store hooks *outside* the store lock, so
two commits' hooks can reach :meth:`SubscriptionManager._on_commit` out of
order.  The manager serializes through its own lock and an applied-version
watermark: an in-order record is applied directly, a gap is filled from
``store.records_since`` (which returns the retained log in version order),
and a hook arriving late for an already-applied version returns without
work.  Every mutation of view state and subscription queues happens under
the manager lock; delivery happens on the connection's sender task, which
calls :meth:`SubscriptionManager.drain` after being poked through the
sink's ``notify()``.

A *sink* is the manager's handle for one client connection: any object
usable as a dict key with a ``notify()`` method that is safe to call from
commit threads.  The network server backs it with
``loop.call_soon_threadsafe``; tests use a plain object with an event.
"""

from __future__ import annotations

import logging
import threading
import time

from repro import obs
from repro.core.translate import DOMAIN_PREDICATE
from repro.obs import context as trace_context
from repro.errors import NotMaintainable, ProtocolError, SubscriptionError
from repro.graphs.bridge import database_from_graph
from repro.obs.metrics import HistogramData, MetricFamily
from repro.service import protocol
from repro.service.cache import result_key

logger = logging.getLogger(__name__)

#: Queue-overflow policies.  ``resync`` drops the queued deltas and marks
#: the subscription so its next frame is a fresh snapshot at the current
#: version (the client replaces its state wholesale — nothing is silently
#: skipped); ``disconnect`` sends a ``closed`` frame and drops the
#: connection.
OVERFLOW_POLICIES = ("resync", "disconnect")

#: Domain predicate for datalog-backed views.  Datalog requests evaluate
#: against the raw EDB (no active-domain injection), so the maintained view
#: must refcount the domain under a name no user program can reference —
#: injecting under ``node`` would diverge from the request path whenever a
#: program mentions that predicate.
_DATALOG_DOMAIN = "\x00dom"


def view_key(plan, params):
    """The shared-view registry key: plan fingerprint + result-shaping
    params.  ``method`` is excluded — backends are differentially tested to
    produce identical answers, so subscribers asking through different
    engines share one view (and one maintenance pass)."""
    shaped = {k: v for k, v in (params or {}).items() if k != "method"}
    return result_key(plan.fingerprint, shaped)


class SharedView:
    """One refcounted materialized result, shared by all subscribers to the
    same (plan, params).

    ``mode`` is ``"maintained"`` (a :class:`~repro.ham.views.MaterializedView`
    updated by the counting/DRed engine; the per-commit delta is read off
    :class:`~repro.datalog.dred.MaintenanceStats`) or ``"diff"`` (the
    documented fallback for non-maintainable queries: re-evaluate on
    relevant commits and set-diff against the previous answer).
    """

    __slots__ = (
        "key",
        "plan",
        "eval_params",
        "mode",
        "fallback_reason",
        "view",
        "predicates",
        "rows",
        "version",
        "refcount",
        "subs",
        "maintenance_passes",
        "diff_refreshes",
        "deltas_emitted",
        "skipped_empty",
        "maintenance_errors",
    )

    def __init__(self, key, plan, params):
        from repro.ham.views import MaterializedView

        self.key = key
        self.plan = plan
        self.eval_params = dict(params or {})
        self.mode = "diff"
        self.fallback_reason = None
        self.view = None
        self.predicates = ()
        self.rows = {}
        self.version = -1
        self.refcount = 0
        self.subs = set()
        self.maintenance_passes = 0
        self.diff_refreshes = 0
        self.deltas_emitted = 0
        self.skipped_empty = 0
        self.maintenance_errors = 0

        if plan.op == "rpq":
            self.fallback_reason = (
                "rpq answers are computed by automaton search, not by a "
                "maintainable Datalog view"
            )
        elif plan.has_summaries:
            self.fallback_reason = "aggregation/summarization is not maintainable"
        else:
            domain = DOMAIN_PREDICATE if plan.op == "graphlog" else _DATALOG_DOMAIN
            view = MaterializedView(
                f"sub:{plan.fingerprint[:12]}",
                plan.graphical,
                domain_predicate=domain,
                program=plan.program,
            )
            if view.maintainable:
                self.mode = "maintained"
                self.view = view
                self.predicates = plan._requested_predicates(self.eval_params)
            else:
                self.fallback_reason = view.fallback_reason

    @property
    def footprint(self):
        return self.plan.footprint

    def refresh(self, version, graph, edb):
        """(Re)materialize from scratch at *version*."""
        if self.mode == "maintained":
            self.view.refresh_full(edb)
            self.rows = {p: set(self.view.state.facts(p)) for p in self.predicates}
        else:
            result = self.plan.evaluate(graph, edb, self.eval_params)
            self.rows = {p: set(rows) for p, rows in result.items()}
            self.predicates = tuple(sorted(self.rows))
            self.diff_refreshes += 1
        self.version = version

    def stats(self):
        return {
            "mode": self.mode,
            "fallback_reason": self.fallback_reason,
            "subscribers": self.refcount,
            "version": self.version,
            "rows": sum(len(r) for r in self.rows.values()),
            "predicates": list(self.predicates),
            "maintenance_passes": self.maintenance_passes,
            "diff_refreshes": self.diff_refreshes,
            "deltas_emitted": self.deltas_emitted,
            "skipped_empty": self.skipped_empty,
            "maintenance_errors": self.maintenance_errors,
        }


class Subscription:
    """One subscriber: a bounded outbound frame queue on one sink."""

    __slots__ = (
        "id",
        "view",
        "sink",
        "queue_max",
        "policy",
        "pending",
        "needs_resync",
        "closed",
    )

    def __init__(self, sub_id, view, sink, queue_max, policy):
        self.id = sub_id
        self.view = view
        self.sink = sink
        self.queue_max = queue_max
        self.policy = policy
        self.pending = []  # [(frame dict, enqueue monotonic time)]
        self.needs_resync = False
        self.closed = None  # reason string once closed


class SubscriptionManager:
    """Owns every shared view and subscription for one service instance."""

    def __init__(self, store, metrics=None, queue_max=256, policy="resync"):
        if policy not in OVERFLOW_POLICIES:
            raise ValueError(f"unknown overflow policy {policy!r}")
        self.store = store
        self.metrics = metrics
        self.default_queue_max = int(queue_max)
        self.default_policy = policy
        self._lock = threading.Lock()
        self._views_by_key = {}
        self._subs = {}
        self._by_sink = {}
        self._disconnect_sinks = set()
        self._next_id = 1
        self._applied = store.version
        # Cumulative counters (exposed via stats() and /metrics).
        self.deltas_pushed = 0
        self.snapshots_sent = 0
        self.overflows = 0
        self.resyncs = 0
        self.disconnects = 0
        self.forced_resyncs = 0
        self.push_latency = HistogramData()
        self._hook = store.subscribe(self._on_commit)
        self._closed = False

    # ----------------------------------------------------------- subscribe

    def subscribe(self, plan, params, sink, queue_max=None, policy=None,
                  allow_fallback=False):
        """Register one subscriber; returns ``(subscription, snapshot, version)``.

        The snapshot is ``{predicate: set of rows}`` at ``version``; every
        later ``delta`` frame for the subscription carries a strictly
        greater version.  Raises :class:`NotMaintainable` when the query
        has no maintainable view and *allow_fallback* is false.
        """
        if sink is None:
            raise SubscriptionError(
                "subscriptions need a streaming connection (no sink)"
            )
        policy = policy if policy is not None else self.default_policy
        if policy not in OVERFLOW_POLICIES:
            raise ProtocolError(
                f"'policy' must be one of {', '.join(OVERFLOW_POLICIES)}, "
                f"got {policy!r}"
            )
        if queue_max is None:
            queue_max = self.default_queue_max
        if isinstance(queue_max, bool) or not isinstance(queue_max, int) or queue_max < 1:
            raise ProtocolError(
                f"'queue_max' must be a positive integer, got {queue_max!r}"
            )
        key = view_key(plan, params)
        candidate = None
        while True:
            with self._lock:
                if self._closed:
                    raise SubscriptionError("the subscription manager is closed")
                shared = self._views_by_key.get(key)
                if shared is None and candidate is not None:
                    self._catch_up_locked(candidate)
                    self._views_by_key[key] = candidate
                    shared = candidate
                if shared is not None:
                    if shared.fallback_reason is not None and not allow_fallback:
                        if shared.refcount == 0:
                            self._views_by_key.pop(key, None)
                        raise NotMaintainable(
                            "this query has no incrementally maintainable view: "
                            f"{shared.fallback_reason} (pass allow_fallback to "
                            "subscribe through per-commit re-evaluation)",
                            reason=shared.fallback_reason,
                        )
                    sub = Subscription(
                        self._next_id, shared, sink, queue_max, policy
                    )
                    self._next_id += 1
                    shared.refcount += 1
                    shared.subs.add(sub)
                    self._subs[sub.id] = sub
                    self._by_sink.setdefault(sink, set()).add(sub.id)
                    snapshot = {p: set(rows) for p, rows in shared.rows.items()}
                    if self.metrics is not None:
                        self.metrics.incr("subs.subscribed")
                    return sub, snapshot, shared.version
            # Materialize outside the lock: first evaluation can be slow and
            # must not stall commits.  A racing duplicate is discarded above.
            candidate = SharedView(key, plan, params)
            if candidate.fallback_reason is not None and not allow_fallback:
                raise NotMaintainable(
                    "this query has no incrementally maintainable view: "
                    f"{candidate.fallback_reason} (pass allow_fallback to "
                    "subscribe through per-commit re-evaluation)",
                    reason=candidate.fallback_reason,
                )
            version, graph = self.store.snapshot_versioned()
            candidate.refresh(version, graph, database_from_graph(graph))

    def unsubscribe(self, sub_id, sink):
        """Drop one subscription; tears the shared view down on last ref."""
        with self._lock:
            sub = self._subs.get(sub_id)
            if sub is None or sub.sink is not sink:
                raise SubscriptionError(
                    f"no subscription {sub_id!r} on this connection"
                )
            self._remove_locked(sub)
            if self.metrics is not None:
                self.metrics.incr("subs.unsubscribed")

    def drop_sink(self, sink):
        """Release everything a closed connection held (idempotent)."""
        with self._lock:
            for sub_id in list(self._by_sink.get(sink, ())):
                sub = self._subs.get(sub_id)
                if sub is not None:
                    self._remove_locked(sub)
            self._by_sink.pop(sink, None)
            self._disconnect_sinks.discard(sink)

    def _remove_locked(self, sub):
        self._subs.pop(sub.id, None)
        ids = self._by_sink.get(sub.sink)
        if ids is not None:
            ids.discard(sub.id)
            if not ids:
                self._by_sink.pop(sub.sink, None)
        view = sub.view
        view.subs.discard(sub)
        view.refcount -= 1
        if view.refcount <= 0:
            # Last unsubscribe tears the view down: no subscriber, no
            # maintenance pass.
            self._views_by_key.pop(view.key, None)

    def _catch_up_locked(self, view):
        """Bring a freshly materialized view level with the dispatch
        watermark.  Its snapshot was taken outside the lock, so commits may
        have been dispatched (to the *other* views) in between; the view's
        own version guard in :meth:`_apply_record_to_view_locked` makes the
        overlap idempotent."""
        if view.version >= self._applied:
            return
        records = self.store.records_since(view.version)
        if records is None:
            version, graph = self.store.snapshot_versioned()
            view.refresh(version, graph, database_from_graph(graph))
            return
        for record in sorted(records, key=lambda r: r.version):
            self._apply_record_to_view_locked(view, record)

    # ------------------------------------------------------------ dispatch

    def _on_commit(self, record):
        """Store commit hook (runs on the committing thread)."""
        with self._lock:
            if record.version <= self._applied:
                return
            if not self._views_by_key:
                self._applied = record.version
                return
            if record.version == self._applied + 1:
                records = (record,)
            else:
                # Dispatch raced: a later commit's hook got here first.
                since = self.store.records_since(self._applied)
                if since is None:
                    # History truncated under us — replay is impossible, so
                    # every subscriber gets a fresh snapshot instead.
                    self._resync_all_locked()
                    self._applied = self.store.version
                    sinks = {sub.sink for sub in self._subs.values()}
                    self._notify(sinks)
                    return
                records = sorted(since, key=lambda r: r.version)
            sinks = set()
            # The committing request's distributed trace context is ambient
            # on this thread (the hook runs on the committing thread); stamp
            # only the frames for *this* commit's record with its trace id —
            # gap-filled records belong to other commits' traces.
            ambient = trace_context.current()
            trace_id = ambient.trace_id if ambient is not None else None
            with obs.span(
                "subs.dispatch",
                version=record.version,
                views=len(self._views_by_key),
                subscribers=len(self._subs),
            ):
                for rec in records:
                    sinks |= self._dispatch_record_locked(
                        rec, trace_id if rec is record else None
                    )
            self._applied = max(self._applied, records[-1].version)
        self._notify(sinks)

    def _dispatch_record_locked(self, record, trace_id=None):
        """Apply one commit record to every view; returns sinks to poke."""
        sinks = set()
        now = time.monotonic()
        for view in list(self._views_by_key.values()):
            changed = self._apply_record_to_view_locked(view, record)
            if changed is None:
                continue
            inserted, deleted = changed
            view.deltas_emitted += 1
            # The row payload is shared across the fanout: one wire encoding
            # per view per commit, one tiny per-subscriber frame dict.
            wire_inserted = {
                p: protocol.rows_to_wire(rows) for p, rows in sorted(inserted.items())
            }
            wire_deleted = {
                p: protocol.rows_to_wire(rows) for p, rows in sorted(deleted.items())
            }
            for sub in view.subs:
                frame = {
                    "frame": "delta",
                    "subscription": sub.id,
                    "version": record.version,
                    "inserted": wire_inserted,
                    "deleted": wire_deleted,
                }
                if trace_id is not None:
                    frame["trace_id"] = trace_id
                self._enqueue_locked(sub, frame, now)
                sinks.add(sub.sink)
        return sinks

    def _apply_record_to_view_locked(self, view, record):
        """Advance one view past *record*; returns ``(inserted, deleted)``
        dicts of net row changes, or None when the answer did not change."""
        if record.version <= view.version:
            return None
        delta = record.delta
        if delta is not None and delta.is_empty:
            view.version = record.version
            view.skipped_empty += 1
            return None
        if view.mode == "maintained" and delta is not None:
            try:
                stats = view.view.apply_delta(delta)
            except Exception:
                view.maintenance_errors += 1
                logger.exception(
                    "maintenance of subscribed view %s failed; diffing instead",
                    view.plan.fingerprint[:12],
                )
                return self._diff_refresh_locked(view, record)
            view.maintenance_passes += 1
            inserted = {}
            deleted = {}
            for predicate in view.predicates:
                add = stats.added.get(predicate)
                rem = stats.deleted.get(predicate)
                if add:
                    inserted[predicate] = add
                    view.rows.setdefault(predicate, set()).update(add)
                if rem:
                    deleted[predicate] = rem
                    view.rows.setdefault(predicate, set()).difference_update(rem)
            view.version = record.version
            if not inserted and not deleted:
                return None
            return inserted, deleted
        # Diff fallback (and maintained views facing a delta-less record):
        # skip commits that provably miss the plan's footprint, otherwise
        # re-evaluate at the record's version and diff.
        if (
            delta is not None
            and view.footprint is not None
            and not (view.footprint & delta.touched_predicates(DOMAIN_PREDICATE))
        ):
            view.version = record.version
            return None
        return self._diff_refresh_locked(view, record)

    def _diff_refresh_locked(self, view, record):
        version, graph = self.store.snapshot_versioned()
        if version != record.version:
            graph = self.store.graph_at(record.version)
        edb = database_from_graph(graph)
        if view.mode == "maintained":
            # Keep the MaterializedView's internal state in step, or the
            # next apply_delta would maintain off a stale base.
            view.view.refresh_full(edb)
            new_rows = {p: set(view.view.state.facts(p)) for p in view.predicates}
        else:
            result = view.plan.evaluate(graph, edb, view.eval_params)
            new_rows = {p: set(rows) for p, rows in result.items()}
        inserted = {}
        deleted = {}
        for predicate in set(new_rows) | set(view.rows):
            added = new_rows.get(predicate, set()) - view.rows.get(predicate, set())
            removed = view.rows.get(predicate, set()) - new_rows.get(predicate, set())
            if added:
                inserted[predicate] = added
            if removed:
                deleted[predicate] = removed
        view.rows = new_rows
        view.predicates = tuple(sorted(set(view.predicates) | set(new_rows)))
        view.version = record.version
        view.diff_refreshes += 1
        if not inserted and not deleted:
            return None
        return inserted, deleted

    # -------------------------------------------------------- backpressure

    def _enqueue_locked(self, sub, frame, now):
        if sub.closed is not None:
            return
        if sub.needs_resync:
            # The pending snapshot (taken at drain time from the live view)
            # already covers this commit.
            return
        if len(sub.pending) >= sub.queue_max:
            self.overflows += 1
            if self.metrics is not None:
                self.metrics.incr(f"subs.overflow.{sub.policy}")
            if sub.policy == "disconnect":
                sub.closed = "overflow"
                sub.pending.clear()
                sub.pending.append(
                    (protocol.closed_frame(sub.id, "overflow"), now)
                )
                self._disconnect_sinks.add(sub.sink)
                self.disconnects += 1
            else:
                sub.pending.clear()
                sub.needs_resync = True
                self.resyncs += 1
            return
        sub.pending.append((frame, now))
        self.deltas_pushed += 1

    def drain(self, sink):
        """Pop every pending frame for *sink*'s subscriptions.

        Returns ``(frames, disconnect)``; *disconnect* asks the caller to
        close the connection after writing the frames (the ``disconnect``
        overflow policy).  Called by the connection's sender task after a
        ``notify()``.
        """
        with self._lock:
            frames = []
            now = time.monotonic()
            for sub_id in sorted(self._by_sink.get(sink, ())):
                sub = self._subs.get(sub_id)
                if sub is None:
                    continue
                if sub.needs_resync:
                    sub.needs_resync = False
                    frames.append(
                        protocol.snapshot_frame(
                            sub.id, sub.view.version, sub.view.rows, resync=True
                        )
                    )
                    self.snapshots_sent += 1
                for frame, enqueued in sub.pending:
                    self.push_latency.observe(now - enqueued)
                    frames.append(frame)
                sub.pending.clear()
            disconnect = sink in self._disconnect_sinks
            self._disconnect_sinks.discard(sink)
            return frames, disconnect

    # --------------------------------------------------------------- admin

    def resync_all(self):
        """Re-materialize every view and force snapshot frames to every
        subscriber.  Called when version arithmetic can no longer be
        trusted: a replica re-bootstrap (the store version may regress) or
        history truncation below the dispatch watermark."""
        with self._lock:
            self._resync_all_locked()
            self._applied = self.store.version
            sinks = {sub.sink for sub in self._subs.values()}
        self._notify(sinks)

    def _resync_all_locked(self):
        if not self._views_by_key:
            return
        version, graph = self.store.snapshot_versioned()
        edb = database_from_graph(graph)
        for view in self._views_by_key.values():
            view.refresh(version, graph, edb)
        for sub in self._subs.values():
            if sub.closed is None:
                sub.pending.clear()
                sub.needs_resync = True
        self.forced_resyncs += 1

    def _notify(self, sinks):
        for sink in sinks:
            try:
                sink.notify()
            except Exception:  # noqa: BLE001 — a dying connection must not stall commits
                logger.exception("subscription sink notify failed")

    def close(self):
        """Detach from the store and drop all state (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._views_by_key.clear()
            self._subs.clear()
            self._by_sink.clear()
            self._disconnect_sinks.clear()
        try:
            self.store.unsubscribe(self._on_commit)
        except ValueError:  # pragma: no cover - already detached
            pass

    # --------------------------------------------------------------- stats

    def stats(self):
        with self._lock:
            views = {
                view.plan.fingerprint[:12]: view.stats()
                for view in self._views_by_key.values()
            }
            return {
                "active_subscriptions": len(self._subs),
                "shared_views": len(self._views_by_key),
                "queue_depth": sum(len(s.pending) for s in self._subs.values()),
                "deltas_pushed": self.deltas_pushed,
                "snapshots_sent": self.snapshots_sent,
                "overflows": self.overflows,
                "resyncs": self.resyncs,
                "disconnects": self.disconnects,
                "forced_resyncs": self.forced_resyncs,
                "maintenance_passes": sum(
                    v["maintenance_passes"] for v in views.values()
                ),
                "diff_refreshes": sum(v["diff_refreshes"] for v in views.values()),
                "push_p50_ms": round(self.push_latency.quantile(0.5) * 1000.0, 3)
                if self.push_latency.count
                else None,
                "push_p99_ms": round(self.push_latency.quantile(0.99) * 1000.0, 3)
                if self.push_latency.count
                else None,
                "views": views,
            }

    def metric_families(self):
        """Scrape-time collector: the ``repro_subs_*`` exposition series."""
        with self._lock:
            active = len(self._subs)
            shared = len(self._views_by_key)
            depth = sum(len(s.pending) for s in self._subs.values())
            passes = sum(v.maintenance_passes for v in self._views_by_key.values())
            refreshes = sum(v.diff_refreshes for v in self._views_by_key.values())
            latency = self.push_latency.copy()
            deltas = self.deltas_pushed
            snapshots = self.snapshots_sent
            resyncs = self.resyncs
            disconnects = self.disconnects
        overflow = MetricFamily(
            "repro_subs_overflow_total",
            "counter",
            "Subscription queue overflows by policy outcome",
        )
        overflow.add_sample(resyncs, {"policy": "resync"})
        overflow.add_sample(disconnects, {"policy": "disconnect"})
        return [
            MetricFamily(
                "repro_subs_active", "gauge", "Active subscriptions"
            ).add_sample(active),
            MetricFamily(
                "repro_subs_shared_views", "gauge", "Materialized shared views"
            ).add_sample(shared),
            MetricFamily(
                "repro_subs_queue_depth",
                "gauge",
                "Delta frames queued across all subscriptions",
            ).add_sample(depth),
            MetricFamily(
                "repro_subs_deltas_pushed_total",
                "counter",
                "Delta frames enqueued to subscribers",
            ).add_sample(deltas),
            MetricFamily(
                "repro_subs_snapshots_total",
                "counter",
                "Snapshot (resync) frames sent to subscribers",
            ).add_sample(snapshots),
            overflow,
            MetricFamily(
                "repro_subs_maintenance_passes_total",
                "counter",
                "Incremental maintenance passes over shared views",
            ).add_sample(passes),
            MetricFamily(
                "repro_subs_diff_refreshes_total",
                "counter",
                "Fallback re-evaluations of non-maintainable views",
            ).add_sample(refreshes),
            MetricFamily(
                "repro_subs_push_latency_seconds",
                "histogram",
                "Enqueue-to-drain latency of pushed frames",
            ).add_histogram(latency),
        ]
