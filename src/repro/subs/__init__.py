"""Live query subscriptions: maintained view deltas streamed to clients.

The paper's central claim is that GraphLog queries are *maintainable*
recursive views over an evolving graph.  This package turns that claim
into a service feature: a client registers a query once (``subscribe``
wire op), receives an initial snapshot, and from then on is pushed one
versioned delta frame per commit that changes its answer — computed by
the counting/DRed maintenance engine, not by re-evaluation.

Three pieces (see docs/SUBSCRIPTIONS.md):

- a **shared-view registry** keyed by prepared-plan fingerprint + params:
  the view is materialized on the first subscriber and torn down on the
  last unsubscribe, so 10k subscribers to one query cost exactly one
  maintenance pass per commit;
- **per-subscription backpressure**: bounded outbound queues with explicit
  overflow policies — ``resync`` (drop queued deltas, send a fresh
  snapshot instead; deltas are never silently skipped) or ``disconnect``;
- **non-maintainable queries** (aggregation/summarization, RPQ) are
  rejected with a typed ``not_maintainable`` error unless the subscriber
  opts into the documented diff-based fallback (re-evaluate per commit,
  set-diff against the previous answer).
"""

from repro.subs.manager import (
    OVERFLOW_POLICIES,
    SharedView,
    Subscription,
    SubscriptionManager,
)

__all__ = [
    "OVERFLOW_POLICIES",
    "SharedView",
    "Subscription",
    "SubscriptionManager",
]
