"""First-order logic with transitive closure: formulas, evaluation, and the
STC-DATALOG -> TC translation of Lemma 3.3 / Theorem 3.3."""

from repro.fo_tc.evaluate import Structure, answers, holds
from repro.fo_tc.formulas import (
    And,
    Compare,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    PredAtom,
    TCApp,
    count_tc_operators,
    eq,
    exists,
    forall,
    is_existential,
    is_positive_tc,
    pred,
    tc,
)
from repro.fo_tc.from_stc import TCQuery, stc_to_tc
from repro.fo_tc.reachability import (
    peak_frontier_size,
    tc_holds,
    tc_reachable_set,
    tc_relation,
)

__all__ = [
    "And",
    "Compare",
    "Exists",
    "Forall",
    "Formula",
    "Not",
    "Or",
    "PredAtom",
    "Structure",
    "TCApp",
    "TCQuery",
    "answers",
    "count_tc_operators",
    "eq",
    "exists",
    "forall",
    "holds",
    "is_existential",
    "is_positive_tc",
    "peak_frontier_size",
    "pred",
    "stc_to_tc",
    "tc",
    "tc_holds",
    "tc_reachable_set",
    "tc_relation",
]
