"""First-order logic with a transitive-closure operator (Section 3).

The language TC of the paper: domain relational calculus plus formulas
``TR φ(x̄; R)`` — here represented as :class:`TCApp`, the transitive closure
of a formula ``φ(ūx̄, ūy)`` with two designated equal-length variable
vectors, applied to argument terms.

Formulas are evaluated over a :class:`~repro.fo_tc.evaluate.Structure`
(active-domain semantics).  Comparison atoms (``<`` etc.) are interpreted
over the natural Python order of the domain, giving the ordered variants
(TC^<) used by Theorem 3.4.
"""

from __future__ import annotations


from repro.datalog.terms import Variable, make_term
from repro.errors import FormulaError


class Formula:
    """Abstract base class for FO+TC formulas."""

    __slots__ = ()

    def __and__(self, other):
        return And(self, other)

    def __or__(self, other):
        return Or(self, other)

    def __invert__(self):
        return Not(self)

    def free_variables(self):
        raise NotImplementedError

    def substitute(self, binding):
        """Capture-avoiding substitution of terms for free variables."""
        raise NotImplementedError

    def walk(self):
        yield self
        for child in self._children():
            yield from child.walk()

    def _children(self):
        return ()


def _terms(values):
    return tuple(make_term(v) for v in values)


def _term_vars(terms):
    return {t for t in terms if isinstance(t, Variable)}


def _sub_term(term, binding):
    if isinstance(term, Variable):
        return binding.get(term, term)
    return term


class PredAtom(Formula):
    """A relational atom ``p(t1, ..., tn)``."""

    __slots__ = ("predicate", "args")

    def __init__(self, predicate, args=()):
        self.predicate = str(predicate)
        self.args = _terms(args)

    def free_variables(self):
        return _term_vars(self.args)

    def substitute(self, binding):
        return PredAtom(self.predicate, tuple(_sub_term(t, binding) for t in self.args))

    def __repr__(self):
        return f"PredAtom({self})"

    def __str__(self):
        return f"{self.predicate}({', '.join(map(str, self.args))})"


class Compare(Formula):
    """A comparison atom ``t1 op t2`` with op in ==, !=, <, <=, >, >=."""

    __slots__ = ("op", "left", "right")

    _OPS = ("==", "!=", "<", "<=", ">", ">=")

    def __init__(self, op, left, right):
        if op not in self._OPS:
            raise FormulaError(f"unknown comparison {op!r}")
        self.op = op
        self.left = make_term(left)
        self.right = make_term(right)

    def free_variables(self):
        return _term_vars((self.left, self.right))

    def substitute(self, binding):
        return Compare(self.op, _sub_term(self.left, binding), _sub_term(self.right, binding))

    def __repr__(self):
        return f"Compare({self})"

    def __str__(self):
        return f"{self.left} {self.op} {self.right}"


class Not(Formula):
    __slots__ = ("inner",)

    def __init__(self, inner):
        self.inner = inner

    def free_variables(self):
        return self.inner.free_variables()

    def substitute(self, binding):
        return Not(self.inner.substitute(binding))

    def _children(self):
        return (self.inner,)

    def __repr__(self):
        return f"Not({self.inner!r})"

    def __str__(self):
        return f"¬({self.inner})"


class And(Formula):
    __slots__ = ("parts",)

    def __init__(self, *parts):
        flattened = []
        for part in parts:
            if isinstance(part, And):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        self.parts = tuple(flattened)

    def free_variables(self):
        out = set()
        for part in self.parts:
            out |= part.free_variables()
        return out

    def substitute(self, binding):
        return And(*(part.substitute(binding) for part in self.parts))

    def _children(self):
        return self.parts

    def __repr__(self):
        return f"And({', '.join(map(repr, self.parts))})"

    def __str__(self):
        return "(" + " ∧ ".join(map(str, self.parts)) + ")"


class Or(Formula):
    __slots__ = ("parts",)

    def __init__(self, *parts):
        flattened = []
        for part in parts:
            if isinstance(part, Or):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        self.parts = tuple(flattened)

    def free_variables(self):
        out = set()
        for part in self.parts:
            out |= part.free_variables()
        return out

    def substitute(self, binding):
        return Or(*(part.substitute(binding) for part in self.parts))

    def _children(self):
        return self.parts

    def __repr__(self):
        return f"Or({', '.join(map(repr, self.parts))})"

    def __str__(self):
        return "(" + " ∨ ".join(map(str, self.parts)) + ")"


class _Quantifier(Formula):
    __slots__ = ("variables", "inner")

    def __init__(self, variables, inner):
        if isinstance(variables, (str, Variable)):
            variables = [variables]
        self.variables = tuple(
            v if isinstance(v, Variable) else Variable(str(v)) for v in variables
        )
        if not self.variables:
            raise FormulaError("quantifier needs at least one variable")
        self.inner = inner

    def free_variables(self):
        return self.inner.free_variables() - set(self.variables)

    def _children(self):
        return (self.inner,)

    def _substitute_under(self, binding, cls):
        binding = {
            var: value for var, value in binding.items() if var not in self.variables
        }
        # Capture avoidance: rename bound variables that appear in the
        # substituted terms.
        used = set()
        for value in binding.values():
            if isinstance(value, Variable):
                used.add(value.name)
        renames = {}
        fresh_index = 0
        for bound in self.variables:
            if bound.name in used:
                while f"{bound.name}_r{fresh_index}" in used:
                    fresh_index += 1
                renamed = Variable(f"{bound.name}_r{fresh_index}")
                used.add(renamed.name)
                renames[bound] = renamed
        inner = self.inner
        if renames:
            inner = inner.substitute(renames)
        new_vars = tuple(renames.get(v, v) for v in self.variables)
        return cls(new_vars, inner.substitute(binding))


class Exists(_Quantifier):
    def substitute(self, binding):
        return self._substitute_under(binding, Exists)

    def __repr__(self):
        return f"Exists({[v.name for v in self.variables]}, {self.inner!r})"

    def __str__(self):
        names = ",".join(v.name for v in self.variables)
        return f"∃{names}.({self.inner})"


class Forall(_Quantifier):
    def substitute(self, binding):
        return self._substitute_under(binding, Forall)

    def __repr__(self):
        return f"Forall({[v.name for v in self.variables]}, {self.inner!r})"

    def __str__(self):
        names = ",".join(v.name for v in self.variables)
        return f"∀{names}.({self.inner})"


class TCApp(Formula):
    """The transitive closure of a formula, applied to terms.

    ``TCApp(xs, ys, phi, left, right)`` holds when ``(left, right)`` is in
    the transitive closure of the binary (on k-tuples) relation
    ``{(x̄, ȳ) | phi}``.  Free variables of *phi* other than xs/ys are
    parameters, evaluated under the ambient assignment.
    """

    __slots__ = ("xs", "ys", "phi", "left", "right")

    def __init__(self, xs, ys, phi, left, right):
        self.xs = tuple(v if isinstance(v, Variable) else Variable(str(v)) for v in xs)
        self.ys = tuple(v if isinstance(v, Variable) else Variable(str(v)) for v in ys)
        if len(self.xs) != len(self.ys) or not self.xs:
            raise FormulaError("TC needs two non-empty variable vectors of equal length")
        if set(self.xs) & set(self.ys):
            raise FormulaError("TC variable vectors must be disjoint")
        self.phi = phi
        self.left = _terms(left)
        self.right = _terms(right)
        if len(self.left) != len(self.xs) or len(self.right) != len(self.ys):
            raise FormulaError("TC application arity mismatch")

    @property
    def width(self):
        return len(self.xs)

    def parameters(self):
        """Free variables of phi that are not closed by the TC operator."""
        return self.phi.free_variables() - set(self.xs) - set(self.ys)

    def free_variables(self):
        out = _term_vars(self.left + self.right)
        out |= self.parameters()
        return out

    def substitute(self, binding):
        bound = set(self.xs) | set(self.ys)
        inner_binding = {v: t for v, t in binding.items() if v not in bound}
        # Capture check: substituted terms must not mention the TC-bound
        # variables (callers use fresh formula variables, so this is rare).
        for value in inner_binding.values():
            if isinstance(value, Variable) and value in bound:
                raise FormulaError(
                    f"substitution would capture TC-bound variable {value}"
                )
        return TCApp(
            self.xs,
            self.ys,
            self.phi.substitute(inner_binding),
            tuple(_sub_term(t, binding) for t in self.left),
            tuple(_sub_term(t, binding) for t in self.right),
        )

    def _children(self):
        return (self.phi,)

    def __repr__(self):
        return f"TCApp({self})"

    def __str__(self):
        xs = ",".join(v.name for v in self.xs)
        ys = ",".join(v.name for v in self.ys)
        left = ",".join(map(str, self.left))
        right = ",".join(map(str, self.right))
        return f"TC[{xs};{ys}]({self.phi})({left};{right})"


# --------------------------------------------------------------- shortcuts


def pred(name, *args):
    return PredAtom(name, args)


def eq(left, right):
    return Compare("==", left, right)


def exists(variables, inner):
    return Exists(variables, inner)


def forall(variables, inner):
    return Forall(variables, inner)


def tc(xs, ys, phi, left, right):
    return TCApp(xs, ys, phi, left, right)


def count_tc_operators(formula):
    """Number of TC operators (the 'one application suffices' discussion)."""
    return sum(1 for node in formula.walk() if isinstance(node, TCApp))


def is_positive_tc(formula):
    """PTC membership: no TC operator occurs under a negation."""

    def visit(node, under_negation):
        if isinstance(node, TCApp) and under_negation:
            return False
        next_flag = under_negation or isinstance(node, Not)
        children = node._children() if not isinstance(node, Not) else (node.inner,)
        return all(visit(child, next_flag) for child in children)

    return visit(formula, False)


def is_existential(formula):
    """E membership: built from atoms with ∧, ∨, ∃ only (used by TE)."""
    for node in formula.walk():
        if isinstance(node, (Not, Forall, TCApp)):
            return False
    return True
