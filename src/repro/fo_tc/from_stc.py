"""Translate stratified TC Datalog programs into FO+TC formulas.

This is the STC-DATALOG ⊆ TC direction of Lemma 3.3 made executable: since
an STC program's only recursion is its TC rule pairs, every IDB predicate
has a finite formula obtained by inlining, with recursive predicates
becoming TC operators.  Combined with Algorithm 3.1
(:mod:`repro.translation.sl_to_stc`) and the GraphLog translation λ, this
yields the full Theorem 3.3 pipeline

    GRAPHLOG  →  SL-DATALOG  →  STC-DATALOG  →  TC

whose four stages the ``thm33`` benchmark evaluates and compares.
"""

from __future__ import annotations

from repro.datalog.ast import ArithmeticAssign, Comparison, Literal
from repro.datalog.classify import recursive_predicates, tc_base_predicates
from repro.datalog.stratify import DependenceGraph, stratify
from repro.datalog.terms import Constant, Variable
from repro.errors import TranslationError
from repro.fo_tc.formulas import And, Compare, Exists, Not, Or, PredAtom, TCApp


class TCQuery:
    """A named FO+TC query: canonical parameters plus the formula."""

    def __init__(self, predicate, parameters, formula):
        self.predicate = predicate
        self.parameters = tuple(parameters)
        self.formula = formula

    @property
    def arity(self):
        return len(self.parameters)

    def instantiate(self, args):
        """The formula with *args* substituted for the parameters."""
        from repro.datalog.terms import make_term

        args = tuple(make_term(a) for a in args)
        if len(args) != self.arity:
            raise TranslationError(
                f"{self.predicate} expects {self.arity} arguments, got {len(args)}"
            )
        binding = dict(zip(self.parameters, args))
        return self.formula.substitute(binding)

    def __repr__(self):
        return f"TCQuery({self.predicate}/{self.arity})"

    def __str__(self):
        params = ", ".join(v.name for v in self.parameters)
        return f"{self.predicate}({params}) ≡ {self.formula}"


def stc_to_tc(program):
    """Translate an STC-DATALOG program into ``{predicate: TCQuery}``.

    Requirements: the program is stratified; every recursive predicate is
    defined by exactly a TC rule pair (Definition 3.2); no arithmetic
    built-ins (they are outside first-order logic over the domain).
    """
    stratify(program)
    recursive = recursive_predicates(program)
    bases = tc_base_predicates(program)
    not_tc = recursive - set(bases)
    if not_tc:
        names = ", ".join(sorted(not_tc))
        raise TranslationError(
            f"predicates {names} are recursive but not TC-shaped; run Algorithm "
            f"3.1 (sl_to_stc) first"
        )

    graph = DependenceGraph.of_program(program)
    order = [
        predicate
        for component in reversed(graph.strongly_connected_components())
        for predicate in sorted(component)
        if predicate in program.idb_predicates
    ]

    queries = {}
    for predicate in order:
        if predicate in bases:
            queries[predicate] = _tc_predicate_query(program, predicate, bases[predicate], queries)
        else:
            queries[predicate] = _flat_predicate_query(program, predicate, queries)
    return queries


def _parameters(predicate, arity):
    return tuple(Variable(f"{_safe(predicate)}_p{i}") for i in range(arity))


def _safe(name):
    return name.replace("-", "_")


def _tc_predicate_query(program, predicate, base, queries):
    arity = program.arity_of(predicate)
    if arity % 2 != 0:
        raise TranslationError(f"TC predicate {predicate} has odd arity {arity}")
    half = arity // 2
    xs = tuple(Variable(f"{_safe(predicate)}_x{i}") for i in range(half))
    ys = tuple(Variable(f"{_safe(predicate)}_y{i}") for i in range(half))
    inner = _atom_formula(base, xs + ys, queries)
    parameters = _parameters(predicate, arity)
    formula = TCApp(xs, ys, inner, parameters[:half], parameters[half:])
    return TCQuery(predicate, parameters, formula)


def _flat_predicate_query(program, predicate, queries):
    rules = program.rules_for(predicate)
    arity = program.arity_of(predicate)
    parameters = _parameters(predicate, arity)
    disjuncts = []
    for index, rule in enumerate(rules):
        disjuncts.append(_rule_formula(rule, parameters, queries, index))
    if not disjuncts:
        raise TranslationError(f"IDB predicate {predicate} has no rules")
    formula = disjuncts[0] if len(disjuncts) == 1 else Or(*disjuncts)
    return TCQuery(predicate, parameters, formula)


def _rule_formula(rule, parameters, queries, rule_index):
    """One rule as a formula over the head's canonical parameters."""
    # Rename every rule variable to a fresh, rule-local name so that inlining
    # the same predicate twice cannot collide.
    suffix = f"_r{rule_index}"
    renamed = rule.rename_variables(suffix)
    conjuncts = []
    binding_vars = set()
    # Equate head arguments with the canonical parameters.
    head_binding = {}
    for parameter, term in zip(parameters, renamed.head.args):
        if isinstance(term, Constant):
            conjuncts.append(Compare("==", parameter, term))
        else:
            if term in head_binding:
                conjuncts.append(Compare("==", parameter, head_binding[term]))
            else:
                head_binding[term] = parameter
    body_vars = set()
    for element in renamed.body:
        formula = _body_element_formula(element, head_binding, queries)
        conjuncts.append(formula)
        body_vars |= {
            v for v in element.substitute(head_binding).variables()
        }
    existential = sorted(
        (v for v in body_vars if v not in set(parameters) and not v.is_anonymous),
        key=lambda v: v.name,
    )
    matrix = conjuncts[0] if len(conjuncts) == 1 else And(*conjuncts)
    if existential:
        return Exists(existential, matrix)
    return matrix


def _body_element_formula(element, head_binding, queries):
    element = element.substitute(head_binding)
    if isinstance(element, Literal):
        formula = _atom_formula(element.predicate, element.atom.args, queries)
        return formula if element.positive else Not(formula)
    if isinstance(element, Comparison):
        return Compare(element.op, element.left, element.right)
    if isinstance(element, ArithmeticAssign):
        raise TranslationError(
            f"arithmetic built-in {element} has no first-order counterpart"
        )
    raise TranslationError(f"unsupported body element {element!r}")


def _atom_formula(predicate, args, queries):
    query = queries.get(predicate)
    if query is None:
        return PredAtom(predicate, args)
    return query.instantiate(args)
