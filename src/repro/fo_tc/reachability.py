"""Transitive closure via frontier-only reachability (Lemma 3.5 flavour).

A TC formula is decided by graph reachability over k-tuples of domain
values.  A nondeterministic logspace machine guesses the path one tuple at
a time, storing only the current tuple (O(k log n) bits); our deterministic
search stores a frontier and a visited set — still never materializing the
closure relation itself, which is what the ``lem35`` benchmark contrasts
against full-closure computation.
"""

from __future__ import annotations

import itertools
from collections import deque


def tc_holds(domain, width, source, target, edge):
    """Is *target* reachable from *source* in one-or-more *edge* steps?

    Args:
        domain: iterable of domain values.
        width: tuple width k.
        source, target: k-tuples.
        edge: callable ``edge(u, v) -> bool``, the φ oracle.
    """
    domain = list(domain)
    source = tuple(source)
    target = tuple(target)
    visited = set()
    queue = deque()
    for candidate in itertools.product(domain, repeat=width):
        if edge(source, candidate):
            if candidate == target:
                return True
            if candidate not in visited:
                visited.add(candidate)
                queue.append(candidate)
    while queue:
        current = queue.popleft()
        for candidate in itertools.product(domain, repeat=width):
            if candidate in visited:
                continue
            if edge(current, candidate):
                if candidate == target:
                    return True
                visited.add(candidate)
                queue.append(candidate)
    return False


def tc_reachable_set(domain, width, source, edge):
    """All tuples reachable from *source* in one-or-more edge steps."""
    domain = list(domain)
    source = tuple(source)
    visited = set()
    queue = deque([source])
    first = True
    while queue:
        current = queue.popleft()
        for candidate in itertools.product(domain, repeat=width):
            if candidate in visited:
                continue
            if edge(current, candidate):
                visited.add(candidate)
                queue.append(candidate)
        first = False
    return visited


def tc_relation(domain, width, edge):
    """The full transitive closure as a set of (k-tuple, k-tuple) pairs.

    This is the *materializing* evaluation the frontier search avoids;
    provided for testing and for the lem35 memory/time comparison.
    """
    domain = list(domain)
    tuples = list(itertools.product(domain, repeat=width))
    base = {(u, v) for u in tuples for v in tuples if edge(u, v)}
    closure = set(base)
    delta = set(base)
    successors = {}
    for u, v in base:
        successors.setdefault(u, set()).add(v)
    while delta:
        new_delta = set()
        for u, v in delta:
            for w in successors.get(v, ()):
                if (u, w) not in closure:
                    closure.add((u, w))
                    new_delta.add((u, w))
        delta = new_delta
    return closure


def peak_frontier_size(domain, width, source, edge):
    """Instrumented variant of the frontier search: returns
    ``(reachable_count, peak_queue_length)`` for the lem35 benchmark."""
    domain = list(domain)
    source = tuple(source)
    visited = set()
    queue = deque([source])
    peak = 1
    while queue:
        peak = max(peak, len(queue))
        current = queue.popleft()
        for candidate in itertools.product(domain, repeat=width):
            if candidate in visited:
                continue
            if edge(current, candidate):
                visited.add(candidate)
                queue.append(candidate)
    return len(visited), peak
