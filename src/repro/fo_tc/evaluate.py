"""Evaluation of FO+TC formulas over finite structures.

Active-domain semantics: quantifiers range over the structure's domain
(active domain of its relations plus any explicitly declared values).  The
TC operator is evaluated by reachability search over k-tuples — see
:mod:`repro.fo_tc.reachability` for the frontier-only variant that exhibits
the NLOGSPACE memory profile of Lemma 3.5.
"""

from __future__ import annotations

import itertools

from repro.datalog.database import Database
from repro.datalog.terms import Constant, Variable
from repro.errors import FormulaError
from repro.fo_tc.formulas import (
    And,
    Compare,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    PredAtom,
    TCApp,
)
from repro.fo_tc.reachability import tc_holds

_COMPARATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Structure:
    """A finite structure: a domain plus named relations.

    Built directly or from a :class:`~repro.datalog.database.Database`
    (domain = active domain union *extra_domain*).
    """

    def __init__(self, domain=(), relations=None):
        self.domain = sorted(set(domain), key=_domain_key)
        self._relations = {
            name: frozenset(map(tuple, rows)) for name, rows in (relations or {}).items()
        }

    @classmethod
    def from_database(cls, database, extra_domain=()):
        relations = {name: set(database.facts(name)) for name in database}
        domain = set(database.active_domain()) | set(extra_domain)
        return cls(domain, relations)

    def relation(self, name):
        return self._relations.get(name, frozenset())

    def has(self, name, row):
        return tuple(row) in self.relation(name)

    def __repr__(self):
        return f"Structure(|domain|={len(self.domain)}, {len(self._relations)} relations)"


def _domain_key(value):
    return (type(value).__name__, str(value))


def _value(term, assignment):
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        try:
            return assignment[term]
        except KeyError:
            raise FormulaError(f"unassigned free variable {term} during evaluation") from None
    raise FormulaError(f"cannot evaluate term {term!r}")


def holds(formula, structure, assignment=None):
    """Does *structure* satisfy *formula* under *assignment*?"""
    assignment = dict(assignment or {})
    return _holds(formula, structure, assignment)


def _holds(formula, structure, assignment):
    if isinstance(formula, PredAtom):
        row = tuple(_value(t, assignment) for t in formula.args)
        return structure.has(formula.predicate, row)
    if isinstance(formula, Compare):
        left = _value(formula.left, assignment)
        right = _value(formula.right, assignment)
        try:
            return _COMPARATORS[formula.op](left, right)
        except TypeError:
            # Mixed-type comparison: fall back to the canonical domain order.
            return _COMPARATORS[formula.op](_domain_key(left), _domain_key(right))
    if isinstance(formula, Not):
        return not _holds(formula.inner, structure, assignment)
    if isinstance(formula, And):
        return all(_holds(part, structure, assignment) for part in formula.parts)
    if isinstance(formula, Or):
        return any(_holds(part, structure, assignment) for part in formula.parts)
    if isinstance(formula, Exists):
        return _quantify(formula, structure, assignment, any)
    if isinstance(formula, Forall):
        return _quantify(formula, structure, assignment, all)
    if isinstance(formula, TCApp):
        left = tuple(_value(t, assignment) for t in formula.left)
        right = tuple(_value(t, assignment) for t in formula.right)

        def edge(source, target):
            inner = dict(assignment)
            inner.update(zip(formula.xs, source))
            inner.update(zip(formula.ys, target))
            return _holds(formula.phi, structure, inner)

        return tc_holds(structure.domain, formula.width, left, right, edge)
    raise FormulaError(f"unknown formula node {formula!r}")


def _quantify(formula, structure, assignment, combine):
    variables = formula.variables
    inner = formula.inner

    def candidates():
        for values in itertools.product(structure.domain, repeat=len(variables)):
            scoped = dict(assignment)
            scoped.update(zip(variables, values))
            yield _holds(inner, structure, scoped)

    return combine(candidates())


def answers(formula, structure, variables):
    """The set of assignments to *variables* satisfying *formula*.

    Returns tuples in the order of *variables*; other free variables of the
    formula must be absent.
    """
    variables = tuple(
        v if isinstance(v, Variable) else Variable(str(v)) for v in variables
    )
    free = formula.free_variables()
    missing = free - set(variables)
    if missing:
        names = ", ".join(sorted(v.name for v in missing))
        raise FormulaError(f"unbound free variables: {names}")
    out = set()
    for values in itertools.product(structure.domain, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if _holds(formula, structure, assignment):
            out.add(values)
    return out
