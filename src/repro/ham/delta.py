"""Typed commit deltas: the fact-level difference a transaction made.

A :class:`Delta` describes one committed transaction as *net* insertions and
deletions of relational facts (via the Section 2 graph encoding), plus the
node additions/removals that affect the active domain.  It is computed by
:meth:`repro.ham.store.HAMStore._apply_commit` while staging a commit —
against the pre-commit graph, so multiplicity questions ("was that the last
parallel copy of this edge?") and old-label lookups are exact.

Net semantics: inserting a fact that is pending deletion cancels the
deletion (and vice versa), so replaying ``deletions`` then ``insertions``
on the old state yields the new state.  Downstream consumers — DRed view
maintenance (:mod:`repro.ham.views`) and the delta-scoped service result
cache (:mod:`repro.service.cache`) — only ever see the net effect.
"""

from __future__ import annotations

from collections import defaultdict


class Delta:
    """Net fact-level insertions/deletions of one commit.

    Attributes:
        insertions: ``{predicate: set of rows}`` newly-true facts.
        deletions: ``{predicate: set of rows}`` no-longer-true facts.
        nodes_added: set of node values added to the graph.
        nodes_removed: set of node values removed from the graph.
    """

    __slots__ = ("insertions", "deletions", "nodes_added", "nodes_removed")

    def __init__(self):
        self.insertions = defaultdict(set)
        self.deletions = defaultdict(set)
        self.nodes_added = set()
        self.nodes_removed = set()

    # ------------------------------------------------------------- building

    def insert(self, predicate, row):
        row = tuple(row)
        pending = self.deletions.get(predicate)
        if pending and row in pending:
            pending.discard(row)
            if not pending:
                del self.deletions[predicate]
        else:
            self.insertions[predicate].add(row)

    def delete(self, predicate, row):
        row = tuple(row)
        pending = self.insertions.get(predicate)
        if pending and row in pending:
            pending.discard(row)
            if not pending:
                del self.insertions[predicate]
        else:
            self.deletions[predicate].add(row)

    def add_node(self, node):
        if node in self.nodes_removed:
            self.nodes_removed.discard(node)
        else:
            self.nodes_added.add(node)

    def remove_node(self, node):
        if node in self.nodes_added:
            self.nodes_added.discard(node)
        else:
            self.nodes_removed.add(node)

    # ------------------------------------------------------------ consuming

    @property
    def is_empty(self):
        return not (
            self.insertions or self.deletions
            or self.nodes_added or self.nodes_removed
        )

    @property
    def insert_only(self):
        """No fact leaves the database (node additions are fine)."""
        return not self.deletions and not self.nodes_removed

    def touched_predicates(self, domain_predicate=None):
        """Predicates whose extension this delta may change.

        When *domain_predicate* is given it is included whenever the delta
        is non-empty: the active domain is derived from the values of
        *every* fact, so any insertion or deletion can grow or shrink it —
        a conservative but sound footprint for cache invalidation.
        """
        touched = set(self.insertions) | set(self.deletions)
        if domain_predicate is not None and not self.is_empty:
            touched.add(domain_predicate)
        return touched

    def __eq__(self, other):
        """Structural equality — used to verify WAL serialization round
        trips (:mod:`repro.persist.serde`)."""
        if not isinstance(other, Delta):
            return NotImplemented
        return (
            dict(self.insertions) == dict(other.insertions)
            and dict(self.deletions) == dict(other.deletions)
            and self.nodes_added == other.nodes_added
            and self.nodes_removed == other.nodes_removed
        )

    __hash__ = None

    def __repr__(self):
        ins = sum(len(r) for r in self.insertions.values())
        dels = sum(len(r) for r in self.deletions.values())
        return (
            f"Delta(+{ins} facts, -{dels} facts, "
            f"+{len(self.nodes_added)}/-{len(self.nodes_removed)} nodes)"
        )


def _annotation_names(label):
    """The set of annotation predicate names a node label carries.

    Mirrors :func:`repro.graphs.bridge.database_from_graph`: labels that are
    sets/frozensets of names become unary facts, anything falsy contributes
    none.
    """
    if not label:
        return frozenset()
    if isinstance(label, (set, frozenset)):
        return frozenset(str(name) for name in label)
    return frozenset((str(label),))


def _edge_fact(source, target, label):
    """``(predicate, row)`` for one edge via the Section 2 encoding."""
    from repro.graphs.bridge import EdgeLabel, _wrap_node

    if not isinstance(label, EdgeLabel):
        label = EdgeLabel(str(label))
    row = _wrap_node(source) + _wrap_node(target) + label.extra
    return label.predicate, row


def _edge_multiplicity(graph, source, target, label):
    """Copies of the edge currently encoding the same fact as (s, t, label).

    Compares at the *fact* level — a plain-string label and the equivalent
    :class:`~repro.graphs.bridge.EdgeLabel` encode the same tuple, so they
    count as copies of one fact even though the stored labels differ.
    """
    if not graph.has_node(source):
        return 0
    fact = _edge_fact(source, target, label)
    return sum(
        1
        for edge in graph.out_edges(source)
        if edge.target == target
        and _edge_fact(edge.source, edge.target, edge.label) == fact
    )


def compute_delta(graph, operations):
    """The :class:`Delta` of applying *operations* to *graph*.

    *graph* is mutated (the operations are applied to it as a side effect) —
    the store calls this on its staged copy, folding validation and delta
    computation into one pass.  Raises whatever ``op.apply`` raises on a
    conflicting operation, leaving the partial mutation to be discarded by
    the caller.
    """
    from repro.ham.store import _Op

    delta = Delta()
    for op in operations:
        if op.kind == _Op.ADD_EDGE:
            source, target, label = op.args
            before = _edge_multiplicity(graph, source, target, label)
            had_source = graph.has_node(source)
            had_target = graph.has_node(target)
            op.apply(graph)
            if before == 0:
                predicate, row = _edge_fact(source, target, label)
                delta.insert(predicate, row)
            if not had_source:
                delta.add_node(source)
            if not had_target and target != source:
                delta.add_node(target)
        elif op.kind == _Op.REMOVE_EDGE:
            source, target, label = op.args
            before = _edge_multiplicity(graph, source, target, label)
            op.apply(graph)
            if before == 1:
                predicate, row = _edge_fact(source, target, label)
                delta.delete(predicate, row)
        elif op.kind in (_Op.ADD_NODE, _Op.SET_NODE_LABEL):
            node, label = op.args
            existed = graph.has_node(node)
            old_names = (
                _annotation_names(graph.node_label(node)) if existed else frozenset()
            )
            op.apply(graph)
            new_names = _annotation_names(graph.node_label(node))
            from repro.graphs.bridge import _wrap_node

            row = _wrap_node(node)
            for name in new_names - old_names:
                delta.insert(name, row)
            for name in old_names - new_names:
                delta.delete(name, row)
            if not existed:
                delta.add_node(node)
        elif op.kind == _Op.REMOVE_NODE:
            (node,) = op.args
            incident = {
                edge.key: edge
                for edge in graph.out_edges(node) + graph.in_edges(node)
            }
            # Fact-level: a fact disappears only when its *last* parallel
            # copy goes; count surviving copies of each (s, t, label) triple.
            triples = defaultdict(int)
            for edge in incident.values():
                triples[(edge.source, edge.target, edge.label)] += 1
            old_names = _annotation_names(graph.node_label(node))
            op.apply(graph)
            for (source, target, label), removed in triples.items():
                if _edge_multiplicity(graph, source, target, label) == 0:
                    predicate, row = _edge_fact(source, target, label)
                    delta.delete(predicate, row)
            from repro.graphs.bridge import _wrap_node

            row = _wrap_node(node)
            for name in old_names:
                delta.delete(name, row)
            delta.remove_node(node)
        else:  # pragma: no cover - closed set, mirrors _Op.apply
            op.apply(graph)
    return delta
