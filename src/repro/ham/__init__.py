"""HAM-style transactional, versioned graph storage (Section 5 substrate),
plus materialized GraphLog views with incremental maintenance."""

from repro.ham.store import HAMStore, Session, Transaction, TransactionRecord
from repro.ham.views import (
    MaterializedView,
    ViewManager,
    incremental_insert,
    is_monotone_program,
)

__all__ = [
    "HAMStore",
    "MaterializedView",
    "Session",
    "Transaction",
    "TransactionRecord",
    "ViewManager",
    "incremental_insert",
    "is_monotone_program",
]
