"""HAM-style transactional, versioned graph storage (Section 5 substrate),
plus materialized GraphLog views with incremental (counting/DRed)
maintenance driven by typed commit deltas."""

from repro.ham.delta import Delta, compute_delta
from repro.ham.store import HAMStore, Session, Transaction, TransactionRecord, new_epoch
from repro.ham.views import (
    MaterializedView,
    ViewManager,
    incremental_insert,
    is_monotone_program,
)

__all__ = [
    "Delta",
    "HAMStore",
    "MaterializedView",
    "Session",
    "Transaction",
    "TransactionRecord",
    "ViewManager",
    "compute_delta",
    "incremental_insert",
    "is_monotone_program",
    "new_epoch",
]
