"""A Hypertext-Abstract-Machine-style graph store (Section 5 substrate).

The paper's prototype runs GraphLog queries on top of the HAM [DS86]: "a
general-purpose, transaction-based, multiuser server for a hypertext storage
system".  This module provides the equivalent in-process substrate:

- a versioned graph: every committed transaction produces a new version;
- transactions with begin/commit/abort and snapshot isolation (a session
  reads the version current when its transaction began);
- history: any past version can be reconstructed by log replay;
- query integration: evaluate GraphLog graphical queries and regular path
  queries directly against the committed graph.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
import uuid
from collections import defaultdict

from repro.errors import StoreError, TransactionError
from repro.graphs.multigraph import LabeledMultigraph

logger = logging.getLogger(__name__)


def new_epoch():
    """Mint a fresh replication epoch identifier.

    An epoch names one *history line*: as long as the epoch is unchanged,
    equal version numbers denote equal committed histories.  Anything that
    rewrites history under existing version numbers — recovery truncating a
    torn WAL tail, a replica being re-seeded, a promotion — must run under
    a fresh epoch so replicas re-bootstrap instead of trusting version
    arithmetic (see :mod:`repro.replication`).
    """
    return uuid.uuid4().hex[:16]


class _Op:
    """One replayable operation of the commit log."""

    __slots__ = ("kind", "args")

    ADD_NODE = "add_node"
    SET_NODE_LABEL = "set_node_label"
    REMOVE_NODE = "remove_node"
    ADD_EDGE = "add_edge"
    REMOVE_EDGE = "remove_edge"

    def __init__(self, kind, *args):
        self.kind = kind
        self.args = args

    def apply(self, graph):
        if self.kind == self.ADD_NODE:
            node, label = self.args
            graph.add_node(node, label)
        elif self.kind == self.SET_NODE_LABEL:
            node, label = self.args
            graph.set_node_label(node, label)
        elif self.kind == self.REMOVE_NODE:
            (node,) = self.args
            graph.remove_node(node)
        elif self.kind == self.ADD_EDGE:
            source, target, label = self.args
            graph.add_edge(source, target, label)
        elif self.kind == self.REMOVE_EDGE:
            source, target, label = self.args
            for edge in graph.out_edges(source):
                if edge.target == target and edge.label == label:
                    graph.remove_edge(edge)
                    break
            else:
                raise StoreError(
                    f"edge {source!r} -[{label!r}]-> {target!r} not found"
                )
        else:  # pragma: no cover - closed set
            raise StoreError(f"unknown operation {self.kind!r}")

    def __repr__(self):
        return f"_Op({self.kind}, {self.args!r})"


class TransactionRecord:
    """A committed transaction: its id, session, operations, the store
    version its commit produced, and the typed fact-level :class:`Delta`
    the commit made (see :mod:`repro.ham.delta`)."""

    __slots__ = ("txn_id", "session_id", "operations", "version", "delta")

    def __init__(self, txn_id, session_id, operations, version=None, delta=None):
        self.txn_id = txn_id
        self.session_id = session_id
        self.operations = tuple(operations)
        self.version = version
        self.delta = delta

    def as_insertions(self):
        """Interpret this record as pure insertions.

        Returns ``(facts, new_nodes)`` — ``facts`` maps predicate names to
        sets of inserted rows (via the Section 2 edge encoding), and
        ``new_nodes`` is the set of 1-tuples of newly added unlabeled node
        values — or ``None`` when the transaction contains anything other
        than unlabeled node / edge additions (deletions, label updates, and
        labeled nodes need recomputation-style handling downstream).
        """
        from repro.graphs.bridge import EdgeLabel

        facts = defaultdict(set)
        new_nodes = set()
        for op in self.operations:
            if op.kind == _Op.ADD_EDGE:
                source, target, label = op.args
                if not isinstance(label, EdgeLabel):
                    label = EdgeLabel(str(label))
                source = source if isinstance(source, tuple) else (source,)
                target = target if isinstance(target, tuple) else (target,)
                facts[label.predicate].add(source + target + label.extra)
            elif op.kind == _Op.ADD_NODE:
                node, label = op.args
                if label:
                    return None  # labeled nodes are annotation facts
                node = node if isinstance(node, tuple) else (node,)
                new_nodes.update((value,) for value in node)
            else:
                return None
        return dict(facts), new_nodes

    def __repr__(self):
        return f"TransactionRecord(#{self.txn_id}, {len(self.operations)} ops)"


class Transaction:
    """A buffered unit of work; apply through a :class:`Session`."""

    def __init__(self, session):
        self._session = session
        self._ops = []
        self._workspace = session.snapshot()
        self.state = "active"  # active | committed | aborted

    # ------------------------------------------------------------- edits

    def _record(self, op):
        if self.state != "active":
            raise TransactionError(f"transaction is {self.state}")
        op.apply(self._workspace)  # validate eagerly against the workspace
        self._ops.append(op)

    def add_node(self, node, label=None):
        self._record(_Op(_Op.ADD_NODE, node, label))
        return node

    def set_node_label(self, node, label):
        self._record(_Op(_Op.SET_NODE_LABEL, node, label))

    def remove_node(self, node):
        self._record(_Op(_Op.REMOVE_NODE, node))

    def add_edge(self, source, target, label):
        self._record(_Op(_Op.ADD_EDGE, source, target, label))

    def remove_edge(self, source, target, label):
        self._record(_Op(_Op.REMOVE_EDGE, source, target, label))

    # ------------------------------------------------------------ control

    @property
    def workspace(self):
        """The transaction's private view (committed snapshot + local edits)."""
        return self._workspace

    def commit(self):
        if self.state != "active":
            raise TransactionError(f"cannot commit a {self.state} transaction")
        self._session._commit(self._ops)
        self.state = "committed"

    def abort(self):
        if self.state != "active":
            raise TransactionError(f"cannot abort a {self.state} transaction")
        self.state = "aborted"
        self._ops = []

    def __enter__(self):
        return self

    def __exit__(self, exc_type, _exc, _tb):
        if self.state == "active":
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False


class Session:
    """One client of the store (the HAM is multiuser)."""

    _ids = itertools.count(1)

    def __init__(self, store):
        self._store = store
        self.session_id = next(Session._ids)
        self._active = None

    def snapshot(self):
        """A private copy of the current committed graph."""
        return self._store.graph.copy()

    def transaction(self):
        if self._active is not None and self._active.state == "active":
            raise TransactionError("session already has an active transaction")
        self._active = Transaction(self)
        return self._active

    def _commit(self, ops):
        self._store._apply_commit(self.session_id, ops)
        self._active = None


class HAMStore:
    """The versioned, transactional graph store."""

    def __init__(self):
        self.graph = LabeledMultigraph()
        self._log = []  # list of TransactionRecord (the retained tail)
        self._next_txn_id = 1
        self._last_txn_id = 0
        self._subscribers = []
        self._subscriber_failures = 0
        # Per-predicate delta churn: total inserted+deleted rows and the
        # number of commits touching each predicate, accumulated at commit
        # time from the typed Delta (see predicate_stats()).
        self._churn_rows = defaultdict(int)
        self._churn_commits = defaultdict(int)
        self._version = 0
        self._lock = threading.Lock()
        # Signaled (under self._lock) whenever the committed version moves:
        # min-version reads and replication long-polls wait on it.
        self._version_cond = threading.Condition(self._lock)
        # Replicas reject client writes; replication applies through
        # apply_replicated(), which bypasses this guard.
        self._read_only = False
        # History truncation point: self._log holds only records with
        # version > _base_version; _base_graph is the graph at exactly
        # _base_version, the replay base for graph_at().
        self._base_version = 0
        self._base_graph = LabeledMultigraph()
        # Optional repro.persist.DurabilityManager; when attached, commits
        # are WAL-logged inside the commit critical section (see
        # attach_durability).
        self._durability = None
        # The replication epoch: names this store's history line.  Durable
        # stores overwrite it from the data dir at recovery (repro.persist
        # keeps it stable across clean restarts, rotates it when recovery
        # truncates); replicas adopt the primary's epoch at bootstrap.
        self._epoch = new_epoch()

    def subscribe(self, callback):
        """Register a commit hook invoked with each committed
        :class:`TransactionRecord` (carrying its resulting ``version``).

        Hooks run synchronously inside the commit, after the graph and
        version have been updated; aborted transactions never reach them.
        A hook that raises is logged and counted (``stats()["subscriber_
        failures"]``) without aborting the notification of later hooks.
        Used by materialized views and the query-service result cache.
        """
        with self._lock:
            self._subscribers.append(callback)
        return callback

    #: Decorator-friendly alias: ``@store.on_commit``.
    on_commit = subscribe

    def unsubscribe(self, callback):
        with self._lock:
            self._subscribers.remove(callback)

    # ---------------------------------------------------------- durability

    def attach_durability(self, manager):
        """Bind a :class:`~repro.persist.DurabilityManager` to this store.

        From here on every commit calls ``manager.log_commit(record)``
        inside the commit critical section, *before* the in-memory graph
        and version are updated — so the WAL is version-ordered, a failed
        append aborts the commit with store state untouched, and with
        ``fsync="always"`` a returned ``commit()`` is durable.  Use
        :meth:`DurabilityManager.recover` rather than calling this
        directly; it restores state first, then attaches.
        """
        if self._durability is not None:
            raise StoreError("store already has a durability manager attached")
        self._durability = manager

    def detach_durability(self):
        self._durability = None

    def restore_state(
        self,
        graph,
        version,
        last_txn_id,
        records=(),
        base_graph=None,
        base_version=None,
        epoch=None,
    ):
        """Install recovered state into a fresh store (used by
        :mod:`repro.persist` after checkpoint load + WAL replay).

        *records* is the replayed WAL tail (everything after the
        checkpoint); *base_graph*/*base_version* describe the checkpoint
        itself, so :meth:`graph_at` replays from the checkpoint rather
        than from the empty graph.  *epoch*, when given, names the history
        line this state belongs to (the durable epoch on recovery, the
        primary's epoch on a replica bootstrap).
        """
        with self._lock:
            if self._version != 0 or self._log:
                raise StoreError("can only restore state into a fresh store")
            self.graph = graph
            self._version = version
            self._next_txn_id = last_txn_id + 1
            self._last_txn_id = last_txn_id
            self._log = list(records)
            self._base_graph = base_graph if base_graph is not None else LabeledMultigraph()
            self._base_version = base_version if base_version is not None else 0
            if epoch is not None:
                self._epoch = epoch
            self._version_cond.notify_all()

    # ------------------------------------------------------------ sessions

    def session(self):
        return Session(self)

    def _apply_commit(self, session_id, ops):
        # Operations were validated against the transaction workspace; apply
        # them to the authoritative graph (last-committer-wins at the
        # operation level; a conflicting replay error aborts the commit).
        # Replay goes through compute_delta so the commit record carries the
        # typed fact-level delta, computed against pre-operation state.
        from repro.ham.delta import compute_delta

        if self._read_only:
            raise StoreError(
                "store is read-only (replica); writes must go to the primary"
            )
        staged = self.graph.copy()
        try:
            delta = compute_delta(staged, ops)
        except (KeyError, StoreError) as exc:
            raise TransactionError(f"commit conflict: {exc}") from exc
        with self._lock:
            record = TransactionRecord(
                self._next_txn_id,
                session_id,
                ops,
                version=self._version + 1,
                delta=delta,
            )
            if self._durability is not None:
                # WAL-append (and, under fsync=always, fsync) before any
                # in-memory state changes: a failed append aborts the commit
                # with the store untouched, and the log stays version-ordered
                # because appends happen under the commit lock.
                try:
                    self._durability.log_commit(record)
                except Exception as exc:
                    raise TransactionError(
                        f"commit aborted: WAL append failed: {exc}"
                    ) from exc
            subscribers = self._install_locked(record, staged)
        self._dispatch_subscribers(subscribers, record)
        if self._durability is not None:
            self._durability.maybe_checkpoint()
        return record

    def _install_locked(self, record, staged):
        """Make one committed record current (caller holds ``self._lock``).

        Swaps the graph in wholesale, advances version/txn counters, appends
        to the retained log, folds the delta into churn accounting, wakes
        version waiters, and returns the subscriber snapshot to dispatch
        after the lock is released.  Shared by the local commit path and the
        replication apply path so a replicated commit is indistinguishable
        from a local one to every downstream consumer.
        """
        self.graph = staged
        self._version = record.version
        self._next_txn_id = max(self._next_txn_id, record.txn_id + 1)
        self._last_txn_id = record.txn_id
        self._log.append(record)
        delta = record.delta
        if delta is not None:
            for predicate in delta.touched_predicates():
                self._churn_commits[predicate] += 1
            for predicate, rows in delta.insertions.items():
                self._churn_rows[predicate] += len(rows)
            for predicate, rows in delta.deletions.items():
                self._churn_rows[predicate] += len(rows)
        self._version_cond.notify_all()
        # Snapshot under the lock: subscribe() may run concurrently, and
        # iterating the live list while it mutates skips or doubles
        # callbacks.
        return tuple(self._subscribers)

    def _dispatch_subscribers(self, subscribers, record):
        for callback in subscribers:
            try:
                callback(record)
            except Exception:  # noqa: BLE001 — one failing view must not starve the rest
                with self._lock:
                    self._subscriber_failures += 1
                logger.exception(
                    "commit subscriber %r failed for version %d", callback, record.version
                )

    # ----------------------------------------------------------- replication

    def set_read_only(self, read_only=True):
        """Reject client commits (replicas set this; see
        :mod:`repro.replication`).  :meth:`apply_replicated` still works —
        it *is* the replication write path."""
        self._read_only = bool(read_only)

    @property
    def read_only(self):
        return self._read_only

    @property
    def epoch(self):
        """The replication epoch identifier for the current history line.

        Two stores with the same epoch and the same version hold the same
        committed history; across different epochs, version numbers are not
        comparable at all.  See :func:`new_epoch`.
        """
        return self._epoch

    def set_epoch(self, epoch):
        """Adopt *epoch* as this store's history-line identifier.

        Used by :mod:`repro.persist` (installing the durable epoch at
        recovery) and by promotion (minting a fresh epoch when a replica
        becomes a writable primary).
        """
        if not epoch:
            raise StoreError("epoch must be a non-empty string")
        self._epoch = str(epoch)

    def apply_replicated(self, record):
        """Apply one replicated :class:`TransactionRecord` (as decoded from
        the primary's WAL stream) to this store.

        Mirrors :meth:`_apply_commit` — ops replay onto a staged copy that
        is swapped in wholesale, subscribers (views, result caches) are
        notified per record — so replica state evolves exactly the way crash
        recovery rebuilds it.  Records must arrive in version order;
        anything else raises :class:`StoreError` (the applier re-bootstraps
        on divergence rather than guessing).
        """
        staged = self.graph.copy()
        try:
            for op in record.operations:
                op.apply(staged)
        except (KeyError, StoreError) as exc:
            raise StoreError(
                f"cannot apply replicated version {record.version}: {exc}"
            ) from exc
        with self._lock:
            if record.version != self._version + 1:
                raise StoreError(
                    f"replicated record out of order: store at version "
                    f"{self._version}, record carries {record.version}"
                )
            subscribers = self._install_locked(record, staged)
        self._dispatch_subscribers(subscribers, record)
        return record

    def replace_state(self, graph, version, last_txn_id, epoch=None):
        """Discard the current state and install *graph* at *version*.

        The replica re-bootstrap path: after a primary divergence (the
        primary lost acknowledged commits in a crash, or a different primary
        now answers at the address) the applied history is worthless and is
        replaced wholesale.  Subscribers are *not* notified — callers must
        reset version-scoped caches themselves (a version can regress here,
        which would otherwise let stale cache entries stamped with a future
        version serve wrong answers once the version climbs back).

        The store adopts *epoch* when given (the new primary's history
        line); otherwise it mints a fresh one, because whatever history the
        old epoch named no longer exists here.
        """
        with self._lock:
            if self._durability is not None:
                raise StoreError("cannot replace state on a durable store")
            self.graph = graph
            self._version = version
            self._next_txn_id = max(self._next_txn_id, last_txn_id + 1)
            self._last_txn_id = last_txn_id
            self._log = []
            self._base_graph = graph
            self._base_version = version
            self._epoch = str(epoch) if epoch else new_epoch()
            self._version_cond.notify_all()

    def wait_for_version(self, version, timeout=None):
        """Block until the committed version reaches *version*.

        Returns ``True`` once ``self.version >= version``; ``False`` when
        *timeout* (seconds) elapses first.  Used by min-version reads
        (read-your-writes through the router) and the primary's replication
        long-poll.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._version_cond:
            while self._version < version:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._version_cond.wait(remaining)
            return True

    def records_since(self, from_version):
        """The retained commit records with ``version > from_version``.

        Returns ``None`` when *from_version* predates the in-memory base
        (the caller must fall back to the durable WAL segments); the
        replication source uses this as its no-disk fast path.
        """
        with self._lock:
            if from_version < self._base_version:
                return None
            return [r for r in self._log if r.version > from_version]

    # ------------------------------------------------------------ history

    @property
    def version(self):
        """The committed version number (0 = empty store).

        Strictly monotonic: bumped exactly once per committed transaction,
        never by aborted ones.  Concurrent readers pair it with the graph
        via :meth:`snapshot_versioned`.
        """
        return self._version

    def snapshot_versioned(self):
        """``(version, graph)`` read atomically with respect to commits.

        The returned graph is the live committed instance — commits replace
        ``self.graph`` wholesale rather than mutating it, so the reference
        stays internally consistent; treat it as read-only.
        """
        with self._lock:
            return self._version, self.graph

    def _durable_snapshot(self):
        """``(version, graph, last_txn_id)`` read atomically — the state a
        checkpoint captures (see :mod:`repro.persist`)."""
        with self._lock:
            return self._version, self.graph, self._last_txn_id

    def history(self):
        """The retained tail of committed records (oldest first).

        After :meth:`truncate_history` (or recovery from a checkpoint) this
        no longer starts at version 1; the WAL holds the full history.
        """
        return list(self._log)

    def graph_at(self, version):
        """Reconstruct the graph as of *version*.

        Records are selected by ``record.version`` — never by list position,
        which silently breaks once the log has been truncated or compacted.
        Replay starts from the nearest retained base: the in-memory
        truncation snapshot when *version* is at or after it, else the
        nearest durable checkpoint (when persistence is attached).
        """
        if version < 0 or version > self.version:
            raise StoreError(f"no such version {version}; current is {self.version}")
        with self._lock:
            base_version = self._base_version
            if version >= base_version:
                graph = self._base_graph.copy()
                records = [r for r in self._log if base_version < r.version <= version]
            else:
                graph = records = None
            durability = self._durability
        if records is None:
            if durability is not None:
                return durability.graph_at(version)
            raise StoreError(
                f"version {version} predates the retained history "
                f"(truncated at {base_version}; no durability attached)"
            )
        for record in records:
            for op in record.operations:
                op.apply(graph)
        return graph

    def truncate_history(self, keep_last=0):
        """Drop all but the last *keep_last* in-memory transaction records.

        Once a WAL holds the authoritative history the in-memory log only
        needs to cover what live consumers (views, caches) might still
        replay; this folds older records into the ``graph_at`` base
        snapshot so the log stops growing without bound.  Returns the
        number of records dropped.

        On a store *without* durability, dropping records makes the old
        history unservable (nothing can replay it back), so the epoch is
        rotated and tailing replicas re-bootstrap rather than trusting
        version numbers that now skip over a hole.  A durable store keeps
        its epoch: the WAL segments still serve the full history, so the
        history line is intact.
        """
        if keep_last < 0:
            raise StoreError("keep_last must be >= 0")
        with self._lock:
            drop = len(self._log) - keep_last
            if drop <= 0:
                return 0
            dropped, kept = self._log[:drop], self._log[drop:]
            base = self._base_graph.copy()
            for record in dropped:
                for op in record.operations:
                    op.apply(base)
            self._base_graph = base
            self._base_version = dropped[-1].version
            self._log = kept
            if self._durability is None:
                self._epoch = new_epoch()
            return drop

    def predicate_stats(self, top=None):
        """Per-predicate statistics: committed fact counts (off the label
        index) and delta churn (rows inserted+deleted, commits touching).

        Returns ``{predicate: {"facts", "churn_rows", "churn_commits"}}``,
        restricted to the *top* highest-churn predicates when given.  The
        graph reference is read under the lock but iterated outside it —
        commits replace the graph wholesale rather than mutating it, so the
        snapshot stays internally consistent.
        """
        with self._lock:
            graph = self.graph
            churn_rows = dict(self._churn_rows)
            churn_commits = dict(self._churn_commits)
        facts = {}
        for label, count in graph.label_counts().items():
            predicate = getattr(label, "predicate", None) or str(label)
            facts[predicate] = facts.get(predicate, 0) + count
        predicates = set(facts) | set(churn_rows)
        if top is not None:
            ranked = sorted(
                predicates,
                key=lambda p: (churn_rows.get(p, 0), facts.get(p, 0)),
                reverse=True,
            )
            predicates = ranked[: max(0, int(top))]
        return {
            predicate: {
                "facts": facts.get(predicate, 0),
                "churn_rows": churn_rows.get(predicate, 0),
                "churn_commits": churn_commits.get(predicate, 0),
            }
            for predicate in predicates
        }

    def stats(self, top_predicates=10):
        """A JSON-ready summary of the store (and durable state, if any)."""
        with self._lock:
            stats = {
                "version": self._version,
                "epoch": self._epoch,
                "nodes": self.graph.node_count(),
                "edges": self.graph.edge_count(),
                "retained_records": len(self._log),
                "base_version": self._base_version,
                "subscriber_failures": self._subscriber_failures,
            }
            durability = self._durability
        # Computed after releasing the lock: predicate_stats() re-acquires
        # it, and the store lock is not reentrant.
        stats["predicates"] = self.predicate_stats(top=top_predicates)
        if durability is not None:
            stats["durability"] = durability.stats()
        return stats

    # ------------------------------------------------------------- loading

    def load_graph(self, graph):
        """Commit an entire graph as one transaction (bulk load)."""
        session = self.session()
        with session.transaction() as txn:
            for node in graph.nodes:
                txn.add_node(node, graph.node_label(node))
            for edge in graph.edges:
                txn.add_edge(edge.source, edge.target, edge.label)
        return self.version

    def load_database(self, database, schema=None):
        """Bulk-load a relational database via the Section 2 encoding."""
        from repro.graphs.bridge import graph_from_database

        return self.load_graph(graph_from_database(database, schema))

    # ------------------------------------------------------------- queries

    def query(self, graphical_query):
        """Evaluate a GraphLog graphical query against the committed graph."""
        from repro.core.engine import GraphLogEngine

        return GraphLogEngine().run(graphical_query, self.graph)

    def answers(self, graphical_query, predicate=None):
        from repro.core.engine import GraphLogEngine

        return GraphLogEngine().answers(graphical_query, self.graph, predicate)

    def rpq(self, regex, source=None):
        """Evaluate a G+ edge query (regular path query)."""
        from repro.rpq.evaluate import RPQEvaluator

        evaluator = RPQEvaluator(self.graph)
        if source is None:
            return evaluator.pairs(regex)
        return evaluator.targets(regex, source)

    def __repr__(self):
        return (
            f"HAMStore(version={self.version}, {self.graph.node_count()} nodes, "
            f"{self.graph.edge_count()} edges)"
        )
