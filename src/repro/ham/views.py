"""Materialized GraphLog views over the HAM store, maintained incrementally.

The prototype (Section 5) turns query answers into new graphs that can be
queried again; a server-backed implementation wants those derived graphs
kept up to date as transactions commit.  This module maintains materialized
views through the typed fact-level :class:`~repro.ham.delta.Delta` each
commit record carries:

- stratified views — including recursion and negation — are maintained
  under insertions, deletions, and label updates by the counting / DRed
  engine (:mod:`repro.datalog.dred`): support counts for non-recursive
  strata, overdelete → rederive for recursive ones;
- views whose λ-translation aggregates or summarizes (Section 4) are *not*
  insert-monotone (a new tuple can change an aggregate's value, deleting
  the old answer), so they fall back to full recomputation — the fallback
  reason is logged once at registration time;
- the active domain is maintained by reference counting the values in the
  view's EDB, so star/optional edges see nodes appear and disappear without
  rescanning the database.

The ``abl5`` benchmark compares incremental maintenance against recompute.
"""

from __future__ import annotations

import logging
import time
from collections import Counter, defaultdict

from repro.core.engine import GraphLogEngine, prepare_database
from repro.core.query_graph import GraphicalQuery, QueryGraph
from repro.core.translate import DOMAIN_PREDICATE, translate, translate_extended
from repro.datalog.ast import Literal
from repro.datalog.database import Database
from repro.datalog.dred import MaintenancePlan
from repro.datalog.engine import Engine, _as_relation
from repro.datalog.safety import schedule_body
from repro.datalog.stratify import stratify
from repro.errors import AggregationError, TranslationError
from repro.graphs.bridge import database_from_graph

logger = logging.getLogger(__name__)


def is_monotone_program(program):
    """Insertions can only add answers: no negation, and no aggregation.

    Accepts both plain :class:`~repro.datalog.ast.Program` and the extended
    :class:`~repro.aggregation.aggregates.AggregateProgram`.  Aggregate and
    path-summary rules are *not* monotone even though they contain no
    negated literal — a new tuple changes ``count``/``sum``/``min`` answers,
    deleting the old one — so any program carrying them reports False.
    """
    from repro.aggregation.aggregates import AggregateProgram

    if isinstance(program, AggregateProgram):
        if program.aggregate_rules or program.summary_rules:
            return False
        rules = program.plain_rules
    else:
        rules = program
    return all(
        element.positive
        for rule in rules
        for element in rule.body
        if isinstance(element, Literal)
    )


def incremental_insert(program, materialized, new_facts, method="seminaive"):
    """Maintain *materialized* (a fully-evaluated Database for *program*)
    under the insertion of *new_facts* (``{predicate: iterable of rows}``).

    Requires a monotone program (raises :class:`AggregationError` -- the
    caller should fall back to full recomputation).  Returns a new Database;
    the input is not modified.
    """
    if not is_monotone_program(program):
        raise AggregationError(
            "incremental insertion maintenance requires a monotone program"
        )
    database = materialized.copy()
    engine = Engine(method=method, check_safety=False)

    # Global delta: facts that are new since the last fixpoint.
    delta = {}
    for predicate, rows in new_facts.items():
        rows = [tuple(r) for r in rows]
        if not rows:
            continue
        relation = database.relation(predicate, len(rows[0]))
        added = {row for row in rows if relation.add(row)}
        if added:
            delta[predicate] = added

    if not delta:
        return database

    strata = stratify(program)
    idb = program.idb_predicates
    groups = Engine._evaluation_groups(program, strata, idb)

    for group in groups:
        rules = [
            (rule, schedule_body(rule))
            for rule in program
            if not rule.is_fact and rule.head.predicate in group
        ]
        if not rules:
            continue
        # Round 0 consumes the external delta (earlier groups + EDB);
        # later rounds consume only this group's own newly derived facts.
        current = dict(delta)
        group_new = defaultdict(set)
        while current:
            produced = defaultdict(set)
            delta_relations = {
                predicate: _as_relation(predicate, rows, database)
                for predicate, rows in current.items()
            }
            for rule, schedule in rules:
                head_pred = rule.head.predicate
                relation = database.relation(head_pred)
                for position, element in enumerate(schedule):
                    if not (isinstance(element, Literal) and element.positive):
                        continue
                    delta_relation = delta_relations.get(element.predicate)
                    if delta_relation is None:
                        continue
                    for row, _support in engine._fire(
                        rule,
                        schedule,
                        database,
                        delta_position=position,
                        delta_relation=delta_relation,
                    ):
                        if relation.add(row):
                            produced[head_pred].add(row)
            for predicate, rows in produced.items():
                group_new[predicate] |= rows
            # Only this group's derivations can trigger further rounds here.
            current = {p: rows for p, rows in produced.items() if p in group}
        for predicate, rows in group_new.items():
            delta.setdefault(predicate, set())
            delta[predicate] |= rows

    return database


class MaterializedView:
    """One registered view: the query, its program, and the current state."""

    def __init__(self, name, query, domain_predicate=DOMAIN_PREDICATE, program=None):
        if isinstance(query, QueryGraph):
            query = GraphicalQuery([query])
        self.name = name
        self.query = query
        self.domain_predicate = domain_predicate
        if program is not None:
            # Pre-translated program (e.g. a datalog subscription that has
            # no graphical query to translate from).
            self.program = program
        else:
            try:
                self.program = translate(query, domain_predicate=domain_predicate)
            except TranslationError:
                # Blobs/path summaries need the extended engine; they are not
                # insert-monotone, so the view is recompute-only.
                self.program = translate_extended(
                    query, domain_predicate=domain_predicate
                )
        self.monotone = is_monotone_program(self.program)
        self.plan = None
        self.fallback_reason = None
        from repro.aggregation.aggregates import AggregateProgram

        if isinstance(self.program, AggregateProgram):
            # Summary/aggregate rules are opaque to the Datalog maintenance
            # planner (and not insert-monotone in the first place).
            self.fallback_reason = "aggregation/summarization is not maintainable"
        else:
            try:
                self.plan = MaintenancePlan(self.program)
            except Exception as exc:  # StratificationError and kin
                self.fallback_reason = f"not maintainable: {exc}"
        if self.fallback_reason is not None:
            logger.info(
                "view %r falls back to full recomputation: %s",
                name,
                self.fallback_reason,
            )
        self.state = None  # evaluated Database
        self.counts = None  # support counts for the maintenance plan
        self._domain_refs = None  # value -> occurrences across EDB facts
        self.full_refreshes = 0
        self.incremental_updates = 0
        self.overdeleted = 0
        self.rederived = 0
        self.maintenance_ms = 0.0

    @property
    def maintainable(self):
        return self.plan is not None

    def answers(self, predicate=None):
        if self.state is None:
            raise RuntimeError(f"view {self.name!r} has not been refreshed")
        if predicate is None:
            predicate = self.query.graphs[-1].head_predicate
        return set(self.state.facts(predicate))

    def refresh_full(self, edb):
        if self.plan is not None:
            prepared = prepare_database(edb, self.domain_predicate)
            self.state, self.counts = self.plan.evaluate(prepared)
        else:
            self.state = GraphLogEngine().run(self.query, edb)
        self._domain_refs = Counter(
            value
            for predicate in edb
            for row in edb.facts(predicate)
            for value in row
        )
        self.full_refreshes += 1
        return self.state

    def apply_insertions(self, new_facts):
        """Insert-only legacy path; raises AggregationError when not monotone."""
        if self.state is None:
            raise RuntimeError(f"view {self.name!r} has not been refreshed")
        self.state = incremental_insert(self.program, self.state, new_facts)
        self.incremental_updates += 1
        return self.state

    def apply_delta(self, delta):
        """Maintain the view under one commit's :class:`Delta`, in place."""
        if self.state is None:
            raise RuntimeError(f"view {self.name!r} has not been refreshed")
        if self.plan is None:
            raise AggregationError(
                f"view {self.name!r} is not maintainable: {self.fallback_reason}"
            )
        started = time.perf_counter()
        delta_plus = {p: set(rows) for p, rows in delta.insertions.items()}
        delta_minus = {p: set(rows) for p, rows in delta.deletions.items()}
        self._fold_domain_changes(delta, delta_plus, delta_minus)
        stats = self.plan.maintain(
            self.state,
            delta_plus=delta_plus,
            delta_minus=delta_minus,
            counts=self.counts,
        )
        self.incremental_updates += 1
        self.overdeleted += stats.overdeleted
        self.rederived += stats.rederived
        self.maintenance_ms += (time.perf_counter() - started) * 1000.0
        return stats

    def _fold_domain_changes(self, delta, delta_plus, delta_minus):
        """Turn EDB fact changes into domain-predicate facts via refcounts.

        The domain holds every value occurring in any EDB fact; a value's
        domain fact appears with its first occurrence and disappears with
        its last, which only reference counting can tell in O(delta).
        """
        changed = Counter()
        for rows in delta.insertions.values():
            for row in rows:
                for value in row:
                    changed[value] += 1
        for rows in delta.deletions.values():
            for row in rows:
                for value in row:
                    changed[value] -= 1
        domain = self.domain_predicate
        for value, change in changed.items():
            if change == 0:
                continue
            before = self._domain_refs[value]
            after = before + change
            if after > 0:
                self._domain_refs[value] = after
            else:
                del self._domain_refs[value]
            if before == 0 and after > 0:
                delta_plus.setdefault(domain, set()).add((value,))
            elif before > 0 and after <= 0:
                delta_minus.setdefault(domain, set()).add((value,))

    def stats(self):
        return {
            "maintainable": self.maintainable,
            "fallback_reason": self.fallback_reason,
            "full_refreshes": self.full_refreshes,
            "incremental_updates": self.incremental_updates,
            "overdeleted": self.overdeleted,
            "rederived": self.rederived,
            "maintenance_ms": round(self.maintenance_ms, 3),
        }


class ViewManager:
    """Keeps a set of materialized views in sync with a HAM store.

    Subscribe-on-commit: each commit's typed delta is routed through the
    counting/DRed maintenance engine, for deletions and label updates as
    much as insertions.  Only views the planner cannot handle (aggregation,
    summaries, non-stratifiable translations) fall back to full
    recomputation — with the reason logged.
    """

    def __init__(self, store):
        self.store = store
        self.views = {}
        store.subscribe(self._on_commit)

    def register(self, name, query):
        view = MaterializedView(name, query)
        view.refresh_full(self._current_edb())
        self.views[name] = view
        return view

    def answers(self, name, predicate=None):
        return self.views[name].answers(predicate)

    def stats(self):
        """Aggregate and per-view maintenance counters (service `stats` op)."""
        views = {name: view.stats() for name, view in self.views.items()}
        totals = {
            "full_refreshes": sum(v["full_refreshes"] for v in views.values()),
            "incremental_updates": sum(
                v["incremental_updates"] for v in views.values()
            ),
            "overdeleted": sum(v["overdeleted"] for v in views.values()),
            "rederived": sum(v["rederived"] for v in views.values()),
            "view_maintenance_ms": round(
                sum(v["maintenance_ms"] for v in views.values()), 3
            ),
        }
        return {"count": len(views), "totals": totals, "views": views}

    def _current_edb(self):
        return database_from_graph(self.store.graph)

    def _on_commit(self, record):
        delta = record.delta
        if delta is not None and delta.is_empty:
            return
        for view in self.views.values():
            if delta is not None and view.maintainable:
                try:
                    view.apply_delta(delta)
                    continue
                except Exception:
                    logger.exception(
                        "incremental maintenance of view %r failed; "
                        "falling back to full refresh",
                        view.name,
                    )
            view.refresh_full(self._current_edb())
