"""Materialized GraphLog views over the HAM store, maintained incrementally.

The prototype (Section 5) turns query answers into new graphs that can be
queried again; a server-backed implementation wants those derived graphs
kept up to date as transactions commit.  This module maintains materialized
views:

- *monotone* views (the λ translation contains no negation) are maintained
  under edge/node insertions by **delta evaluation**: only the new facts are
  re-joined, semi-naive style, through the whole stratified program;
- deletions, label updates, or non-monotone views fall back to full
  recomputation (sound and simple; counting/DRed is future work).

The ``abl5`` benchmark compares incremental maintenance against recompute.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.engine import GraphLogEngine, prepare_database
from repro.core.query_graph import GraphicalQuery, QueryGraph
from repro.core.translate import DOMAIN_PREDICATE, translate
from repro.datalog.ast import Literal
from repro.datalog.database import Database
from repro.datalog.engine import Engine, _as_relation
from repro.datalog.safety import schedule_body
from repro.datalog.stratify import stratify
from repro.errors import AggregationError
from repro.graphs.bridge import database_from_graph


def is_monotone_program(program):
    """No negated literals anywhere: insertions can only add answers."""
    return all(
        element.positive
        for rule in program
        for element in rule.body
        if isinstance(element, Literal)
    )


def incremental_insert(program, materialized, new_facts, method="seminaive"):
    """Maintain *materialized* (a fully-evaluated Database for *program*)
    under the insertion of *new_facts* (``{predicate: iterable of rows}``).

    Requires a monotone program (raises :class:`AggregationError` -- the
    caller should fall back to full recomputation).  Returns a new Database;
    the input is not modified.
    """
    if not is_monotone_program(program):
        raise AggregationError(
            "incremental insertion maintenance requires a monotone program"
        )
    database = materialized.copy()
    engine = Engine(method=method, check_safety=False)

    # Global delta: facts that are new since the last fixpoint.
    delta = {}
    for predicate, rows in new_facts.items():
        rows = [tuple(r) for r in rows]
        if not rows:
            continue
        relation = database.relation(predicate, len(rows[0]))
        added = {row for row in rows if relation.add(row)}
        if added:
            delta[predicate] = added

    if not delta:
        return database

    strata = stratify(program)
    idb = program.idb_predicates
    groups = Engine._evaluation_groups(program, strata, idb)

    for group in groups:
        rules = [
            (rule, schedule_body(rule))
            for rule in program
            if not rule.is_fact and rule.head.predicate in group
        ]
        if not rules:
            continue
        # Round 0 consumes the external delta (earlier groups + EDB);
        # later rounds consume only this group's own newly derived facts.
        current = dict(delta)
        group_new = defaultdict(set)
        while current:
            produced = defaultdict(set)
            delta_relations = {
                predicate: _as_relation(predicate, rows, database)
                for predicate, rows in current.items()
            }
            for rule, schedule in rules:
                head_pred = rule.head.predicate
                relation = database.relation(head_pred)
                for position, element in enumerate(schedule):
                    if not (isinstance(element, Literal) and element.positive):
                        continue
                    delta_relation = delta_relations.get(element.predicate)
                    if delta_relation is None:
                        continue
                    for row, _support in engine._fire(
                        rule,
                        schedule,
                        database,
                        delta_position=position,
                        delta_relation=delta_relation,
                    ):
                        if relation.add(row):
                            produced[head_pred].add(row)
            for predicate, rows in produced.items():
                group_new[predicate] |= rows
            # Only this group's derivations can trigger further rounds here.
            current = {p: rows for p, rows in produced.items() if p in group}
        for predicate, rows in group_new.items():
            delta.setdefault(predicate, set())
            delta[predicate] |= rows

    return database


class MaterializedView:
    """One registered view: the query, its program, and the current state."""

    def __init__(self, name, query, domain_predicate=DOMAIN_PREDICATE):
        if isinstance(query, QueryGraph):
            query = GraphicalQuery([query])
        self.name = name
        self.query = query
        self.program = translate(query, domain_predicate=domain_predicate)
        self.monotone = is_monotone_program(self.program)
        self.domain_predicate = domain_predicate
        self.state = None  # evaluated Database
        self.full_refreshes = 0
        self.incremental_updates = 0

    def answers(self, predicate=None):
        if self.state is None:
            raise RuntimeError(f"view {self.name!r} has not been refreshed")
        if predicate is None:
            predicate = self.query.graphs[-1].head_predicate
        return set(self.state.facts(predicate))

    def refresh_full(self, edb):
        prepared = prepare_database(edb, self.domain_predicate)
        self.state = Engine().evaluate(self.program, prepared)
        self.full_refreshes += 1
        return self.state

    def apply_insertions(self, new_facts):
        """Incremental path; raises AggregationError when not monotone."""
        if self.state is None:
            raise RuntimeError(f"view {self.name!r} has not been refreshed")
        self.state = incremental_insert(self.program, self.state, new_facts)
        self.incremental_updates += 1
        return self.state


class ViewManager:
    """Keeps a set of materialized views in sync with a HAM store.

    Subscribe-on-commit: insertion-only transactions maintain monotone views
    incrementally; anything else triggers a full refresh of the affected
    views.
    """

    def __init__(self, store):
        self.store = store
        self.views = {}
        store.subscribe(self._on_commit)

    def register(self, name, query):
        view = MaterializedView(name, query)
        view.refresh_full(self._current_edb())
        self.views[name] = view
        return view

    def answers(self, name, predicate=None):
        return self.views[name].answers(predicate)

    def _current_edb(self):
        return database_from_graph(self.store.graph)

    def _on_commit(self, record):
        parsed = record.as_insertions()
        if parsed is None:
            for view in self.views.values():
                view.refresh_full(self._current_edb())
            return
        insertions, new_nodes = parsed
        domain_values = set(new_nodes)
        for rows in insertions.values():
            for row in rows:
                domain_values.update((value,) for value in row)
        for view in self.views.values():
            if view.monotone:
                # New values extend the active domain used by star/optional.
                facts = {p: set(rows) for p, rows in insertions.items()}
                if domain_values:
                    facts[view.domain_predicate] = (
                        facts.get(view.domain_predicate, set()) | domain_values
                    )
                try:
                    view.apply_insertions(facts)
                    continue
                except AggregationError:  # pragma: no cover - guarded above
                    pass
            view.refresh_full(self._current_edb())
