"""Serialization: databases and graphs to/from disk.

Two formats:

- **Datalog text** for relational databases — the same fact syntax the
  parser reads, so files round-trip through the CLI and the shell;
- **JSON** for labeled multigraphs — nodes (with annotations) and edges
  (with :class:`~repro.graphs.bridge.EdgeLabel` structure preserved).

Values survive a round trip when they are strings, ints, floats, bools, or
None; exotic Python values are rejected rather than silently stringified.
"""

from __future__ import annotations

import json

from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.errors import ReproError
from repro.graphs.bridge import EdgeLabel
from repro.graphs.multigraph import LabeledMultigraph

_SCALARS = (str, int, float, bool, type(None))


class SerializationError(ReproError):
    """A value or structure cannot be represented in the chosen format."""


# ------------------------------------------------------------- datalog text


def _fact_term(value):
    if isinstance(value, bool) or value is None:
        raise SerializationError(
            f"Datalog text cannot hold {value!r}; use the JSON graph format"
        )
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, str):
        bare = value.replace("-", "_")
        if bare.isidentifier() and value[:1].islower():
            return value
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    raise SerializationError(f"cannot serialize value {value!r} to Datalog text")


def database_to_source(database):
    """Render every fact as Datalog text (sorted, deterministic)."""
    lines = []
    for predicate in sorted(database.predicates):
        rows = sorted(database.facts(predicate), key=lambda r: tuple(map(str, r)))
        for row in rows:
            args = ", ".join(_fact_term(v) for v in row)
            lines.append(f"{predicate}({args}).")
    return "\n".join(lines) + ("\n" if lines else "")


def database_from_source(text):
    """Parse a fact file back into a Database (rules are rejected)."""
    program = parse_program(text)
    database = Database()
    for rule in program:
        if not rule.is_fact:
            raise SerializationError(f"expected facts only, found rule: {rule}")
        database.add_fact(rule.head.predicate, *(t.value for t in rule.head.args))
    return database


def save_database(database, path):
    with open(path, "w") as handle:
        handle.write(database_to_source(database))
    return path


def load_database(path):
    with open(path) as handle:
        return database_from_source(handle.read())


# -------------------------------------------------------------- JSON graphs


def _check_scalar(value, where):
    if isinstance(value, tuple):
        for part in value:
            _check_scalar(part, where)
        return
    if not isinstance(value, _SCALARS):
        raise SerializationError(f"cannot serialize {value!r} in {where}")


def _encode_node(node):
    if isinstance(node, tuple):
        return {"tuple": [_encode_node(part) for part in node]}
    _check_scalar(node, "node")
    return {"value": node}


def _decode_node(obj):
    if "tuple" in obj:
        return tuple(_decode_node(part) for part in obj["tuple"])
    return obj["value"]


def _encode_label(label):
    if isinstance(label, EdgeLabel):
        _check_scalar(label.extra, "edge label extras")
        return {"predicate": label.predicate, "extra": list(label.extra)}
    _check_scalar(label, "edge label")
    return {"value": label}


def _decode_label(obj):
    if "predicate" in obj:
        return EdgeLabel(obj["predicate"], tuple(obj["extra"]))
    return obj["value"]


def graph_to_json(graph):
    """Encode a LabeledMultigraph as a JSON-compatible dict."""
    nodes = []
    for node in graph.nodes:
        entry = _encode_node(node)
        annotation = graph.node_label(node)
        if annotation is not None:
            if isinstance(annotation, frozenset):
                entry["annotations"] = sorted(annotation)
            else:
                _check_scalar(annotation, "node annotation")
                entry["annotation"] = annotation
        nodes.append(entry)
    edges = [
        {
            "source": _encode_node(edge.source),
            "target": _encode_node(edge.target),
            "label": _encode_label(edge.label),
        }
        for edge in graph.edges
    ]
    return {"format": "repro-graph", "version": 1, "nodes": nodes, "edges": edges}


def graph_from_json(data):
    """Decode :func:`graph_to_json` output back into a LabeledMultigraph."""
    if data.get("format") != "repro-graph":
        raise SerializationError("not a repro-graph document")
    graph = LabeledMultigraph()
    for entry in data["nodes"]:
        node = _decode_node(entry)
        if "annotations" in entry:
            graph.add_node(node, frozenset(entry["annotations"]))
        elif "annotation" in entry:
            graph.add_node(node, entry["annotation"])
        else:
            graph.add_node(node)
    for entry in data["edges"]:
        graph.add_edge(
            _decode_node(entry["source"]),
            _decode_node(entry["target"]),
            _decode_label(entry["label"]),
        )
    return graph


def save_graph(graph, path):
    with open(path, "w") as handle:
        json.dump(graph_to_json(graph), handle, indent=2, sort_keys=True)
    return path


def load_graph(path):
    with open(path) as handle:
        return graph_from_json(json.load(handle))
