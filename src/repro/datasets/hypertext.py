"""Hypertext webs (the [CM89] companion application, Section 1/5).

The paper's test-case domain for GraphLog was Hypertext: nodes are cards
(documents/sections), edges are typed links.  The generator produces a web
with a containment hierarchy, a next/prev reading path per document, and
random cross-reference / annotation links — the structural patterns the
[CM89] queries (reachable cards, cycles of references, tables of contents)
exercise.
"""

from __future__ import annotations

import random

from repro.datalog.database import Database


def random_hypertext(seed, n_documents=4, sections_per_document=5, cross_refs=12):
    """A hypertext database with ``contains``, ``next``, ``refers-to`` and
    ``annotates`` link relations plus unary ``document`` and ``card``."""
    rng = random.Random(seed)
    database = Database()
    all_cards = []
    for d in range(n_documents):
        document = f"doc{d}"
        database.add_fact("document", document)
        previous = None
        for s in range(sections_per_document):
            card = f"doc{d}-s{s}"
            all_cards.append(card)
            database.add_fact("card", card)
            database.add_fact("contains", document, card)
            if previous is not None:
                database.add_fact("next", previous, card)
            previous = card
    for _ in range(cross_refs):
        source, target = rng.sample(all_cards, 2)
        database.add_fact("refers-to", source, target)
    for _ in range(max(1, cross_refs // 3)):
        source, target = rng.sample(all_cards, 2)
        database.add_fact("annotates", source, target)
    return database


def hypertext_graph(seed=0, **kwargs):
    """The same web in graph form."""
    from repro.graphs.bridge import graph_from_database

    return graph_from_database(random_hypertext(seed, **kwargs))
