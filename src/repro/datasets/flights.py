"""Flight-schedule databases (Figure 1 and Example 2.1).

``figure1_database`` is a concrete instance with the exact schema of
Figure 1: each flight number connects two cities (``from``/``to``), has
``departure`` and ``arrival`` times, and ``capital`` marks capital cities.
The printed figure's data values are not digitally recoverable, so the
instance mirrors its shape (a small multi-city schedule where some
connections are only reachable through time-feasible stops); the scalable
:func:`random_flights` generator drives the benchmarks.

Times are minutes since midnight (so ``21:45`` is ``1305``), keeping the
``<`` comparison of Figure 4 meaningful.
"""

from __future__ import annotations

import random

from repro.datalog.database import Database


def hhmm(text):
    """Parse ``"21:45"`` into minutes since midnight."""
    hours, minutes = text.split(":")
    return int(hours) * 60 + int(minutes)


#: (flight, origin, destination, departure, arrival) in the style of Figure 1.
FIGURE1_FLIGHTS = (
    (21, "toronto", "ottawa", hhmm("08:00"), hhmm("09:00")),
    (32, "ottawa", "montreal", hhmm("09:30"), hhmm("10:15")),
    (45, "toronto", "montreal", hhmm("21:45"), hhmm("23:15")),
    (57, "montreal", "new-york", hhmm("11:00"), hhmm("12:30")),
    (64, "montreal", "new-york", hhmm("09:00"), hhmm("10:30")),
    (78, "new-york", "washington", hhmm("13:30"), hhmm("14:45")),
    (81, "ottawa", "toronto", hhmm("17:00"), hhmm("18:00")),
    (92, "washington", "toronto", hhmm("15:30"), hhmm("17:10")),
)

FIGURE1_CAPITALS = ("ottawa", "washington")


def figure1_database():
    """The flights database of Figure 1 as a relational Database."""
    database = Database()
    for flight, origin, destination, departure, arrival in FIGURE1_FLIGHTS:
        database.add_fact("from", flight, origin)
        database.add_fact("to", flight, destination)
        database.add_fact("departure", flight, departure)
        database.add_fact("arrival", flight, arrival)
    for city in FIGURE1_CAPITALS:
        database.add_fact("capital", city)
    return database


def figure1_graph():
    """The Figure 1 database in its graph representation."""
    from repro.graphs.bridge import graph_from_database

    return graph_from_database(figure1_database())


def random_flights(seed, n_cities=20, n_flights=120, min_leg=30, max_leg=240):
    """A random but deterministic flight schedule.

    Flights connect random distinct city pairs at random times; leg duration
    is between *min_leg* and *max_leg* minutes.  Roughly a quarter of cities
    are capitals.  Returns a Database with the Figure 1 schema.
    """
    rng = random.Random(seed)
    cities = [f"city{i}" for i in range(n_cities)]
    database = Database()
    for flight in range(1, n_flights + 1):
        origin, destination = rng.sample(cities, 2)
        departure = rng.randrange(5 * 60, 22 * 60)
        arrival = departure + rng.randrange(min_leg, max_leg)
        database.add_fact("from", flight, origin)
        database.add_fact("to", flight, destination)
        database.add_fact("departure", flight, departure)
        database.add_fact("arrival", flight, arrival)
    for city in cities:
        if rng.random() < 0.25:
            database.add_fact("capital", city)
    return database
