"""Task-scheduling databases (Figure 11 / Example 4.1).

Schema: ``affects(T1, T2)`` (T1 must finish before T2 can start),
``duration(T, D)`` and ``scheduled-start(T, S)``, durations and starts in
days since day 0.  Schedules are generated consistent: each task's
scheduled start is at least the latest finish implied by its predecessors.
"""

from __future__ import annotations

import random

from repro.datalog.database import Database


def figure11_database():
    """A small project with parallel branches and a join, like Figure 11."""
    database = Database()
    affects = [
        ("design", "build-ui"),
        ("design", "build-core"),
        ("build-ui", "integrate"),
        ("build-core", "integrate"),
        ("integrate", "test"),
        ("test", "ship"),
    ]
    durations = {
        "design": 5,
        "build-ui": 8,
        "build-core": 12,
        "integrate": 4,
        "test": 6,
        "ship": 1,
    }
    database.add_facts("affects", affects)
    for task, duration in durations.items():
        database.add_fact("duration", task, duration)
    starts = _consistent_starts(affects, durations)
    for task, start in starts.items():
        database.add_fact("scheduled-start", task, start)
    return database


def _consistent_starts(affects, durations):
    """Earliest-start schedule: start(T) = max over predecessors of
    (start(P) + duration(P)), 0 for sources."""
    from repro.graphs.algorithms import topological_sort

    adjacency = {}
    for a, b in affects:
        adjacency.setdefault(a, set()).add(b)
    for task in durations:
        adjacency.setdefault(task, set())
    order = topological_sort(adjacency)
    starts = {task: 0 for task in durations}
    for task in order:
        finish = starts[task] + durations[task]
        for successor in adjacency.get(task, ()):
            starts[successor] = max(starts[successor], finish)
    return starts


def random_project(seed, n_tasks=30, layers=6, density=0.3, max_duration=10):
    """A random layered project DAG with consistent scheduled starts."""
    rng = random.Random(seed)
    tasks = [f"t{i}" for i in range(n_tasks)]
    layer_of = {task: rng.randrange(layers) for task in tasks}
    affects = []
    for a in tasks:
        for b in tasks:
            if layer_of[a] < layer_of[b] and rng.random() < density / max(
                1, layer_of[b] - layer_of[a]
            ):
                affects.append((a, b))
    durations = {task: rng.randrange(1, max_duration + 1) for task in tasks}
    database = Database()
    database.add_facts("affects", affects)
    for task in tasks:
        database.add_fact("duration", task, durations[task])
    for task, start in _consistent_starts(affects, durations).items():
        database.add_fact("scheduled-start", task, start)
    return database
