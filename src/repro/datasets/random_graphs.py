"""Seeded random graph generators for the benchmark workloads."""

from __future__ import annotations

import random

from repro.datalog.database import Database
from repro.graphs.multigraph import LabeledMultigraph


def random_edge_relation(seed, n_nodes, n_edges, predicate="edge"):
    """A Database with one binary relation of random distinct edges."""
    rng = random.Random(seed)
    database = Database()
    nodes = [f"n{i}" for i in range(n_nodes)]
    seen = set()
    while len(seen) < min(n_edges, n_nodes * (n_nodes - 1)):
        pair = tuple(rng.sample(nodes, 2))
        seen.add(pair)
    database.add_facts(predicate, seen)
    database.add_facts("node", [(n,) for n in nodes])
    return database


def chain_database(length, predicate="edge"):
    """A simple path n0 -> n1 -> ... (worst case depth for TC iteration)."""
    database = Database()
    nodes = [f"n{i}" for i in range(length + 1)]
    database.add_facts(predicate, [(nodes[i], nodes[i + 1]) for i in range(length)])
    database.add_facts("node", [(n,) for n in nodes])
    return database


def cycle_database(length, predicate="edge"):
    """A directed cycle of the given length."""
    database = Database()
    nodes = [f"n{i}" for i in range(length)]
    edges = [(nodes[i], nodes[(i + 1) % length]) for i in range(length)]
    database.add_facts(predicate, edges)
    database.add_facts("node", [(n,) for n in nodes])
    return database


def layered_dag(seed, layers, width, density=0.4, predicate="edge"):
    """A layered DAG: edges only go from layer i to layer i+1."""
    rng = random.Random(seed)
    database = Database()
    grid = [[f"l{i}_{j}" for j in range(width)] for i in range(layers)]
    for i in range(layers - 1):
        for a in grid[i]:
            for b in grid[i + 1]:
                if rng.random() < density:
                    database.add_fact(predicate, a, b)
    database.add_facts("node", [(n,) for layer in grid for n in layer])
    return database


def random_labeled_graph(seed, n_nodes, n_edges, labels=("a", "b", "c")):
    """A LabeledMultigraph with random edges over a small label alphabet."""
    rng = random.Random(seed)
    graph = LabeledMultigraph()
    nodes = [f"n{i}" for i in range(n_nodes)]
    for node in nodes:
        graph.add_node(node)
    for _ in range(n_edges):
        source, target = rng.sample(nodes, 2)
        graph.add_edge(source, target, rng.choice(labels))
    return graph
