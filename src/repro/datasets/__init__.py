"""Workloads: exact paper instances plus seeded scalable generators."""

from repro.datasets.airlines import (
    FIGURE12_ROUTES,
    figure12_database,
    figure12_graph,
    random_airline_graph,
)
from repro.datasets.family import (
    chain_family,
    example25_family,
    figure2_family,
    random_genealogy,
)
from repro.datasets.flights import (
    FIGURE1_CAPITALS,
    FIGURE1_FLIGHTS,
    figure1_database,
    figure1_graph,
    hhmm,
    random_flights,
)
from repro.datasets.hypertext import hypertext_graph, random_hypertext
from repro.datasets.random_graphs import (
    chain_database,
    cycle_database,
    layered_dag,
    random_edge_relation,
    random_labeled_graph,
)
from repro.datasets.software import figure6_database, random_callgraph
from repro.datasets.tasks import figure11_database, random_project

__all__ = [
    "FIGURE1_CAPITALS",
    "FIGURE1_FLIGHTS",
    "FIGURE12_ROUTES",
    "chain_database",
    "chain_family",
    "cycle_database",
    "example25_family",
    "figure11_database",
    "figure12_database",
    "figure12_graph",
    "figure1_database",
    "figure1_graph",
    "figure2_family",
    "figure6_database",
    "hhmm",
    "hypertext_graph",
    "layered_dag",
    "random_airline_graph",
    "random_callgraph",
    "random_edge_relation",
    "random_flights",
    "random_genealogy",
    "random_hypertext",
    "random_labeled_graph",
    "random_project",
]
