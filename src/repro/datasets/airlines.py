"""Airline route multigraphs (Figure 12 / the Section 5 prototype).

Nodes are cities; each edge is a flight labeled by its airline code (one
binary predicate per airline, e.g. the ``AA`` edge from Buenos Aires to Lima
mentioned in Section 5).  ``figure12_graph`` contains a Canadian Pacific
route from Rome to Tokyo so the screendump's *RT-scale* query has answers.
"""

from __future__ import annotations

import random

from repro.graphs.multigraph import LabeledMultigraph

#: (airline, origin, destination) routes in the style of Figure 12.
FIGURE12_ROUTES = (
    # The Canadian Pacific chain from Rome to Tokyo (the RT-scale answer set).
    ("CP", "rome", "geneva"),
    ("CP", "geneva", "montreal"),
    ("CP", "montreal", "toronto"),
    ("CP", "toronto", "vancouver"),
    ("CP", "vancouver", "tokyo"),
    # A shortcut that skips some scales.
    ("CP", "geneva", "toronto"),
    # Aerolineas Argentinas, including the Buenos Aires -> Lima edge of the text.
    ("AA", "buenos-aires", "lima"),
    ("AA", "lima", "los-angeles"),
    ("AA", "los-angeles", "tokyo"),
    ("AA", "rome", "buenos-aires"),
    # Air France distractors.
    ("AF", "rome", "paris"),
    ("AF", "paris", "montreal"),
    ("AF", "paris", "tokyo"),
)


def figure12_graph():
    """The airline multigraph of Figure 12."""
    graph = LabeledMultigraph()
    for airline, origin, destination in FIGURE12_ROUTES:
        graph.add_edge(origin, destination, airline)
    return graph


def figure12_database():
    """Relational form: one binary predicate per airline."""
    from repro.datalog.database import Database

    database = Database()
    for airline, origin, destination in FIGURE12_ROUTES:
        database.add_fact(airline.lower(), origin, destination)
    return database


def random_airline_graph(seed, n_cities=30, airlines=("CP", "AA", "AF", "BA"), flights_per_airline=40):
    """A random airline multigraph (parallel edges across airlines allowed)."""
    rng = random.Random(seed)
    cities = [f"city{i}" for i in range(n_cities)]
    graph = LabeledMultigraph()
    for city in cities:
        graph.add_node(city)
    for airline in airlines:
        for _ in range(flights_per_airline):
            origin, destination = rng.sample(cities, 2)
            graph.add_edge(origin, destination, airline)
    return graph
