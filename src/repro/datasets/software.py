"""Software-development-environment databases (Figure 6 / Example 2.6).

Schema: ``in-module(F, M)``, ``calls-local(F1, F2)``, ``calls-extn(F1, F2)``,
``in-library(F, L)``.  ``figure6_database`` builds an instance in which some
modules use the ``async-io`` library and call themselves back through other
modules — the *self-used* pattern Example 2.6 queries for — while other
modules do not, so the query's answer is a strict subset.
"""

from __future__ import annotations

import random

from repro.datalog.database import Database


def figure6_database():
    """A concrete software graph exercising the Example 2.6 query.

    - module ``netd``: calls through ``buffers`` back into itself and uses
      async-io -> qualifies;
    - module ``logger``: circular through ``format`` but never reaches
      async-io -> does not qualify;
    - module ``shell``: uses async-io but no circular call -> does not
      qualify.
    """
    database = Database()
    in_module = [
        ("netd-recv", "netd"),
        ("netd-send", "netd"),
        ("buf-alloc", "buffers"),
        ("buf-flush", "buffers"),
        ("log-write", "logger"),
        ("fmt-render", "format"),
        ("shell-run", "shell"),
    ]
    database.add_facts("in-module", in_module)
    database.add_facts(
        "calls-local",
        [("netd-recv", "netd-send"), ("buf-alloc", "buf-flush")],
    )
    database.add_facts(
        "calls-extn",
        [
            # netd -> buffers -> netd : the circle
            ("netd-send", "buf-alloc"),
            ("buf-flush", "netd-recv"),
            # netd reaches the async-io library function
            ("netd-recv", "aio-poll"),
            # logger <-> format circle without async-io
            ("log-write", "fmt-render"),
            ("fmt-render", "log-write"),
            # shell uses async-io, no circle
            ("shell-run", "aio-poll"),
        ],
    )
    database.add_facts("in-library", [("aio-poll", "async-io"), ("aio-submit", "async-io")])
    return database


def random_callgraph(
    seed, n_modules=10, functions_per_module=6, n_libraries=3, call_density=0.08
):
    """A random software graph with the Figure 6 schema.

    Functions call others in the same module (``calls-local``) or elsewhere
    (``calls-extn``); library functions exist outside modules and belong to
    libraries, one of which is always ``async-io``.
    """
    rng = random.Random(seed)
    database = Database()
    functions = []
    for m in range(n_modules):
        module = f"mod{m}"
        for f in range(functions_per_module):
            function = f"fn{m}_{f}"
            functions.append((function, module))
            database.add_fact("in-module", function, module)
    libraries = ["async-io"] + [f"lib{i}" for i in range(1, n_libraries)]
    library_functions = []
    for i, library in enumerate(libraries):
        for j in range(3):
            function = f"libfn{i}_{j}"
            library_functions.append(function)
            database.add_fact("in-library", function, library)
    names = [f for f, _m in functions]
    module_of = dict(functions)
    for caller in names:
        for callee in names:
            if caller == callee or rng.random() >= call_density:
                continue
            if module_of[caller] == module_of[callee]:
                database.add_fact("calls-local", caller, callee)
            else:
                database.add_fact("calls-extn", caller, callee)
        if rng.random() < 0.15:
            database.add_fact("calls-extn", caller, rng.choice(library_functions))
    return database
