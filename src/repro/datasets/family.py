"""Genealogy databases (Figures 2/3/5 and the same-generation example).

Provides a small concrete family for the Figure 2 query, plus seeded
generators for arbitrary-size genealogies with ``descendant``, ``parent``,
``father``, ``mother`` (with the hospital attribute of Example 2.5),
``person``, ``friend``, and ``residence`` relations.
"""

from __future__ import annotations

import random

from repro.datalog.database import Database


def figure2_family():
    """A three-generation family for the Figure 2 query.

    ``descendant(X, Y)`` means Y is a (direct) descendant of X, matching the
    reading of Example 2.2 where ``descendant+`` from P1 reaches the
    descendants of P1.
    """
    database = Database()
    descendants = [
        ("adam", "beth"),
        ("adam", "carl"),
        ("beth", "dora"),
        ("beth", "evan"),
        ("carl", "fern"),
        ("gina", "hugo"),
    ]
    database.add_facts("descendant", descendants)
    people = sorted({p for pair in descendants for p in pair})
    database.add_facts("person", [(p,) for p in people])
    return database


def example25_family():
    """The Example 2.5 scenario: father/mother(hospital)/friend/residence."""
    database = Database()
    database.add_facts(
        "father",
        [("frank", "me"), ("george", "frank")],
    )
    database.add_facts(
        "mother",
        [("mary", "me", "general-hospital"), ("nora", "frank", "st-josephs")],
    )
    database.add_facts(
        "friend",
        [
            ("me", "carol"),
            ("frank", "alice"),
            ("mary", "bob"),
            ("george", "dave"),
            ("nora", "erin"),
        ],
    )
    database.add_facts(
        "residence",
        [
            ("carol", "toronto"),
            ("alice", "toronto"),
            ("bob", "ottawa"),
            ("dave", "montreal"),
            ("erin", "toronto"),
            ("me", "toronto"),
        ],
    )
    return database


def random_genealogy(seed, generations=5, people_per_generation=8, cities=None):
    """A layered random genealogy.

    Each person in generation g > 0 gets a father and a mother from
    generation g-1.  Friendships are random; residences are uniform over
    *cities*.  ``parent`` is the union of father/mother; ``descendant`` is
    the parent-child edge set (so ``descendant+`` walks down generations).
    """
    rng = random.Random(seed)
    cities = list(cities) if cities else ["toronto", "ottawa", "montreal", "vancouver"]
    hospitals = ["general-hospital", "st-josephs", "mount-sinai"]
    database = Database()
    layers = []
    counter = 0
    for generation in range(generations):
        layer = []
        for _ in range(people_per_generation):
            layer.append(f"p{counter}")
            counter += 1
        layers.append(layer)
    everyone = [p for layer in layers for p in layer]
    database.add_facts("person", [(p,) for p in everyone])
    for generation in range(1, generations):
        previous = layers[generation - 1]
        for child in layers[generation]:
            father = rng.choice(previous)
            mother = rng.choice(previous)
            database.add_fact("father", father, child)
            database.add_fact("mother", mother, child, rng.choice(hospitals))
            database.add_fact("parent", father, child)
            database.add_fact("parent", mother, child)
            database.add_fact("descendant", father, child)
            if mother != father:
                database.add_fact("descendant", mother, child)
    for person in everyone:
        for _ in range(rng.randrange(0, 3)):
            other = rng.choice(everyone)
            if other != person:
                database.add_fact("friend", person, other)
        database.add_fact("residence", person, rng.choice(cities))
    return database


def chain_family(length):
    """A single descent chain of the given length (worst case for TC)."""
    database = Database()
    people = [f"g{i}" for i in range(length + 1)]
    database.add_facts("person", [(p,) for p in people])
    database.add_facts(
        "descendant", [(people[i], people[i + 1]) for i in range(length)]
    )
    database.add_facts(
        "parent", [(people[i], people[i + 1]) for i in range(length)]
    )
    return database
