"""The replica side of replication: bootstrap, tail, apply, repeat.

A :class:`ReplicaApplier` owns one background thread that keeps a local
:class:`~repro.ham.store.HAMStore` converged with a primary:

1. **bootstrap** — fetch the primary's ``repl_bootstrap`` document and
   install it (:meth:`~repro.ham.store.HAMStore.restore_state` on a fresh
   store, :meth:`~repro.ham.store.HAMStore.replace_state` on a
   re-bootstrap).
2. **tail** — long-poll ``repl_tail`` from the applied version and apply
   each record through :meth:`~repro.ham.store.HAMStore.apply_replicated`,
   which replays the same operations crash recovery replays and notifies
   the same commit subscribers — replica caches and views stay coherent
   exactly the way the primary's do.
3. **diverge → re-bootstrap** — when the primary answers ``reset`` (the
   replica is ahead because the primary lost acknowledged commits in a
   crash, or history was pruned past the replica's position, or a
   different primary now answers at the address) — or when a tail
   response carries an **epoch** other than the one this replica
   bootstrapped under (the primary rewrote history back to an
   equal-or-higher version, which version arithmetic alone cannot see) —
   the applied state is discarded wholesale and re-bootstrapped.  Version
   can *regress* across a re-bootstrap, so registered ``on_rebootstrap``
   callbacks must clear version-stamped caches.

Connection failures back off exponentially with jitter and never kill the
thread; the replica keeps serving (increasingly stale) reads meanwhile,
and ``/healthz`` turns 503 once the lag bound is exceeded.
"""

from __future__ import annotations

import logging
import random
import threading
import time

from repro import obs
from repro.errors import ReproError, StoreError
from repro.io import graph_from_json
from repro.obs import context as trace_context
from repro.obs import logs
from repro.persist.serde import record_from_json

logger = logging.getLogger(__name__)


class ReplicaApplier:
    """Tails one primary and applies its commit stream to a local store."""

    def __init__(
        self,
        store,
        primary_host,
        primary_port,
        wait_ms=2000,
        batch=512,
        reconnect_min=0.1,
        reconnect_max=5.0,
        client_timeout=30.0,
        check_epoch=True,
        traces=None,
        sampler=None,
        node_id=None,
    ):
        self.store = store
        self.primary_host = primary_host
        self.primary_port = int(primary_port)
        self.wait_ms = wait_ms
        self.batch = batch
        self.reconnect_min = reconnect_min
        self.reconnect_max = reconnect_max
        self.client_timeout = client_timeout
        #: Distributed-tracing wiring (all optional): sampled polls and
        #: bootstraps run under a span tree recorded in *traces* (the
        #: owning service's ring), and every tail/bootstrap request is
        #: stamped with a trace context so the primary's serving spans
        #: link back to this replica's apply loop.
        self.traces = traces
        self.sampler = sampler if sampler is not None else obs.RateSampler(0.0)
        self.node_id = node_id
        #: Escape hatch for tests that need the pre-epoch behavior; leave
        #: True in production — disabling it re-opens the equal-version
        #: divergence hole documented in docs/REPLICATION.md.
        self.check_epoch = bool(check_epoch)
        store.set_read_only(True)
        self._client = None
        self._thread = None
        self._stop = threading.Event()
        self._ready = threading.Event()
        self._lock = threading.Lock()
        self._connected = False
        self._primary_version = None
        self._primary_epoch = None
        self._records_applied = 0
        self._bootstraps = 0
        self._epoch_rebootstraps = 0
        self._tail_errors = 0
        self._last_error = None
        self._last_poll_monotonic = None
        self._on_rebootstrap = []

    # ------------------------------------------------------------ lifecycle

    @property
    def primary_address(self):
        return f"{self.primary_host}:{self.primary_port}"

    @property
    def running(self):
        return self._thread is not None

    def on_rebootstrap(self, callback):
        """Register a callback fired after every bootstrap that *replaced*
        existing state (version may have regressed; clear version-stamped
        caches here).  Returns *callback* for decorator use."""
        self._on_rebootstrap.append(callback)
        return callback

    def start(self):
        if self._thread is not None:
            raise StoreError("replica applier already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-replica-applier", daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        client, self._client = self._client, None
        if client is not None:
            # Closing the socket from here unblocks a long-poll in flight.
            try:
                client.close()
            except OSError:  # pragma: no cover - best-effort unblock
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def wait_ready(self, timeout=None):
        """Block until the first bootstrap has been applied (or timeout);
        returns ``True`` when the replica is serving real data."""
        return self._ready.wait(timeout)

    # ------------------------------------------------------------ main loop

    def _run(self):
        failures = 0
        while not self._stop.is_set():
            try:
                client = self._ensure_client()
                if not self._ready.is_set():
                    self._bootstrap(client)
                self._poll(client)
                failures = 0
            except (ReproError, OSError) as exc:
                if self._stop.is_set():
                    break
                failures += 1
                with self._lock:
                    self._connected = False
                    self._tail_errors += 1
                    self._last_error = str(exc)
                self._drop_client()
                delay = min(
                    self.reconnect_max, self.reconnect_min * (2 ** min(failures, 10))
                )
                delay *= 0.5 + random.random()  # full jitter: 0.5x .. 1.5x
                logger.warning(
                    "replica lost primary %s (%s); retrying in %.2fs",
                    self.primary_address,
                    exc,
                    delay,
                )
                self._stop.wait(delay)

    def _ensure_client(self):
        if self._client is None:
            from repro.service.client import ServiceClient

            self._client = ServiceClient(
                host=self.primary_host,
                port=self.primary_port,
                timeout=self.client_timeout,
            )
            with self._lock:
                self._connected = True
        return self._client

    def _drop_client(self):
        client, self._client = self._client, None
        if client is not None:
            try:
                client.close()
            except OSError:  # pragma: no cover - best-effort close
                pass

    # ------------------------------------------------------------- tracing

    def _traced_call(self, name, fn, always_record=False):
        """Run one primary RPC attempt under a fresh trace context.

        Every attempt gets a context (so the primary's serving spans link
        back here even when unsampled requests only adopt the trace *id*);
        sampled attempts additionally collect a local span tree, recorded
        into the owning service's trace ring — but idle long-polls (no
        records, no reset) are not recorded, or the ring would be nothing
        but heartbeats.  *fn* returns truthy when the attempt did real work.
        """
        tc = trace_context.TraceContext(
            logs.new_request_id(), None, self.sampler.sample()
        )
        token = trace_context.set_current(tc)
        try:
            if tc.sampled:
                with obs.tracing(
                    name, context=tc, primary=self.primary_address
                ) as tr:
                    result = fn()
                if self.traces is not None and (result or always_record):
                    self.traces.record(
                        {
                            "trace_id": tc.trace_id,
                            "request_id": tc.trace_id,
                            "node_id": self.node_id,
                            "op": name,
                            "elapsed_ms": round(tr.root.elapsed_ms, 3),
                            "version": self.store.version,
                            "spans": obs.flatten_span_tree(
                                tr.root, node_id=self.node_id
                            ),
                        }
                    )
                return result
            return fn()
        finally:
            trace_context.reset_current(token)

    # ----------------------------------------------------------- bootstrap

    def _bootstrap(self, client):
        return self._traced_call(
            "repl.bootstrap", lambda: self._bootstrap_once(client), always_record=True
        )

    def _bootstrap_once(self, client):
        document = client.call("repl_bootstrap")["result"]
        graph = graph_from_json(document["graph"])
        version = document["version"]
        last_txn_id = document["last_txn_id"]
        epoch = document.get("epoch")
        replaced = self.store.version != 0 or len(self.store.history()) > 0
        if replaced:
            self.store.replace_state(graph, version, last_txn_id, epoch=epoch)
        else:
            self.store.restore_state(
                graph,
                version,
                last_txn_id,
                base_graph=graph,
                base_version=version,
                epoch=epoch,
            )
        with self._lock:
            self._bootstraps += 1
            self._primary_epoch = epoch
            # Absolute, not max(): across a re-bootstrap the old estimate
            # may belong to an abandoned history line.
            self._primary_version = version
        logger.info(
            "replica bootstrapped at version %d epoch %s from %s (%s)",
            version,
            epoch,
            self.primary_address,
            document.get("source", "?"),
        )
        if replaced:
            for callback in list(self._on_rebootstrap):
                try:
                    callback()
                except Exception:  # noqa: BLE001 — one bad hook must not stop the applier
                    logger.exception("re-bootstrap callback %r failed", callback)
        self._ready.set()

    def _rebootstrap(self, reason):
        logger.warning(
            "replica diverged from primary %s (%s); re-bootstrapping",
            self.primary_address,
            reason,
        )
        self._ready.clear()
        self._bootstrap(self._ensure_client())

    # ---------------------------------------------------------------- tail

    def _poll(self, client):
        return self._traced_call("repl.poll", lambda: self._poll_once(client))

    def _poll_once(self, client):
        response = client.call(
            "repl_tail",
            from_version=self.store.version,
            max_records=self.batch,
            wait_ms=self.wait_ms,
        )
        body = response["result"]
        epoch = body.get("epoch")
        with self._lock:
            self._connected = True
            self._primary_version = body["version"]
            self._last_poll_monotonic = time.monotonic()
            known_epoch = self._primary_epoch
        if body.get("reset"):
            self._rebootstrap(body.get("reason", "primary signaled reset"))
            return True
        if (
            self.check_epoch
            and epoch is not None
            and known_epoch is not None
            and epoch != known_epoch
        ):
            # The primary rewrote history (crash truncation, promotion, or a
            # different primary at the address).  Version numbers across
            # epochs are incomparable — even an "in sync" version may hold
            # different data — so the only safe move is a full re-bootstrap.
            with self._lock:
                self._epoch_rebootstraps += 1
            self._rebootstrap(f"primary epoch changed {known_epoch} -> {epoch}")
            return True
        applied = 0
        for payload in body["records"]:
            record = record_from_json(payload)
            self.store.apply_replicated(record)
            applied += 1
        if applied:
            with self._lock:
                self._records_applied += applied
        return applied

    # ---------------------------------------------------------------- stats

    def status(self):
        """A JSON-ready snapshot for ``stats``/``/healthz``/metrics."""
        applied = self.store.version
        with self._lock:
            primary_version = self._primary_version
            lag = None if primary_version is None else max(0, primary_version - applied)
            last_poll = self._last_poll_monotonic
            connected = self._connected
            return {
                "role": "replica",
                "primary": self.primary_address,
                "connected": connected,
                # Explicit alias for health checks: when False, lag_versions
                # is the *last known* lag, not the current one — the primary
                # may have raced ahead (or away) since the last poll.
                "tail_connected": connected,
                "bootstrapped": self._ready.is_set(),
                "applied_version": applied,
                "primary_version": primary_version,
                "primary_epoch": self._primary_epoch,
                "epoch": self.store.epoch,
                "lag_versions": lag,
                "records_applied": self._records_applied,
                "bootstraps": self._bootstraps,
                "epoch_rebootstraps": self._epoch_rebootstraps,
                "tail_errors": self._tail_errors,
                "last_error": self._last_error,
                "seconds_since_poll": (
                    None if last_poll is None else round(time.monotonic() - last_poll, 3)
                ),
            }
