"""The primary side of replication: bootstrap + WAL tail serving.

A :class:`ReplicationSource` wraps one :class:`~repro.ham.store.HAMStore`
(and its optional :class:`~repro.persist.DurabilityManager`) and answers
the two replication wire ops without ever blocking the commit path:

- **bootstrap** ships the newest on-disk checkpoint *verbatim* (the graph
  JSON is passed through without decoding) when durability is attached, and
  a live snapshot otherwise.  Checkpoint pruning guarantees the WAL still
  holds every record after the newest checkpoint, so a bootstrapped replica
  can always tail from there.
- **tail** returns commit records with ``version > from_version`` in
  version order.  The fast path reads the store's retained in-memory log
  (no disk at all); history older than the in-memory base is re-read from
  the WAL segment files through :func:`repro.persist.wal.iter_records`.
  When the replica is caught up the call long-polls on the store's version
  condition (bounded) instead of making the replica busy-wait.

A tail that cannot be served — the requested version predates durable
history, or the replica is *ahead* of this store (it replicated commits a
crash then lost) — answers ``reset: true``, telling the replica to throw
its state away and re-bootstrap.  Signaling beats guessing: serving a gap
would replay a graph that never existed.
"""

from __future__ import annotations

import logging
import threading

from repro.errors import StoreError
from repro.persist import wal
from repro.persist.checkpoint import latest_checkpoint_document
from repro.persist.serde import record_to_json

logger = logging.getLogger(__name__)

#: Hard ceiling on records per tail response (keeps one response line sane).
MAX_TAIL_BATCH = 4096

#: Hard ceiling on one long-poll (the server's request timeout must win).
MAX_TAIL_WAIT_MS = 30_000


class ReplicationSource:
    """Serves bootstrap snapshots and commit-record tails off one store."""

    def __init__(self, store, durability=None, max_batch=512):
        self.store = store
        self.durability = durability
        self.max_batch = min(max_batch, MAX_TAIL_BATCH)
        self._lock = threading.Lock()
        self._bootstraps_served = 0
        self._tail_requests = 0
        self._tail_waits = 0
        self._records_shipped = 0
        self._resets_signaled = 0

    # ------------------------------------------------------------ bootstrap

    def bootstrap(self):
        """The document a fresh replica starts from.

        ``{"version", "last_txn_id", "graph", "source", "epoch"}`` —
        ``graph`` is :func:`repro.io.graph_to_json` output; ``source`` says
        whether it came from a durable checkpoint (pass-through, zero store
        work) or a live snapshot (in-memory primaries, or durable ones that
        have never checkpointed); ``epoch`` names the history line the
        snapshot belongs to (the replica records it and re-bootstraps the
        moment a tail response carries a different one).
        """
        with self._lock:
            self._bootstraps_served += 1
        if self.durability is not None:
            document = latest_checkpoint_document(self.durability.data_dir)
            if document is not None:
                version, last_txn_id, graph_json, _path = document
                return {
                    "version": version,
                    "last_txn_id": last_txn_id,
                    "graph": graph_json,
                    "source": "checkpoint",
                    "epoch": self.store.epoch,
                }
        from repro.io import graph_to_json

        version, graph, last_txn_id = self.store._durable_snapshot()
        return {
            "version": version,
            "last_txn_id": last_txn_id,
            "graph": graph_to_json(graph),
            "source": "snapshot",
            "epoch": self.store.epoch,
        }

    # ----------------------------------------------------------------- tail

    def tail(self, from_version, max_records=None, wait_ms=0):
        """Commit records after *from_version*, long-polling when caught up.

        Returns ``{"records": [payload...], "version": current, "epoch":
        id}`` where each payload is the WAL wire form
        (:func:`record_to_json`).  An empty ``records`` after a bounded wait
        is the heartbeat — which, carrying the epoch, doubles as the
        divergence detector: a replica seeing an epoch other than the one it
        bootstrapped under re-bootstraps even if the version numbers line
        up.  ``reset: true`` is added when this store cannot serve
        *from_version* — replica ahead of the primary, or history pruned
        past it — and the replica must re-bootstrap.
        """
        limit = self.max_batch if max_records is None else min(max_records, self.max_batch)
        wait_s = min(max(wait_ms, 0), MAX_TAIL_WAIT_MS) / 1000.0
        with self._lock:
            self._tail_requests += 1

        current = self.store.version
        if from_version > current:
            return self._reset_response(
                current, f"replica at {from_version} is ahead of primary at {current}"
            )
        if from_version == current and wait_s > 0:
            with self._lock:
                self._tail_waits += 1
            self.store.wait_for_version(from_version + 1, wait_s)

        payloads, reset = self._collect(from_version, limit)
        if reset:
            return self._reset_response(
                self.store.version,
                f"history before version {from_version + 1} is no longer available",
            )
        with self._lock:
            self._records_shipped += len(payloads)
        return {
            "records": payloads,
            "version": self.store.version,
            "epoch": self.store.epoch,
        }

    def _collect(self, from_version, limit):
        """``(payloads, reset)`` — in-memory fast path, WAL fallback."""
        records = self.store.records_since(from_version)
        if records is not None:
            return [record_to_json(r) for r in records[:limit]], False
        if self.durability is None:
            return [], True
        payloads = []
        try:
            for _version, payload in wal.iter_records(
                self.durability.wal_dir, from_version
            ):
                payloads.append(payload)
                if len(payloads) >= limit:
                    break
        except StoreError as exc:
            logger.warning("replication tail from %d unserviceable: %s", from_version, exc)
            return [], True
        if not payloads and self.store.version > from_version:
            # This path only runs when from_version predates the store's
            # in-memory base, so records MUST exist; an empty WAL means
            # checkpointing pruned every segment — unserviceable.
            return [], True
        return payloads, False

    def _reset_response(self, current, reason):
        with self._lock:
            self._resets_signaled += 1
        logger.warning("signaling replica reset: %s", reason)
        return {
            "records": [],
            "version": current,
            "epoch": self.store.epoch,
            "reset": True,
            "reason": reason,
        }

    # ---------------------------------------------------------------- stats

    def stats(self):
        with self._lock:
            return {
                "role": "primary",
                "epoch": self.store.epoch,
                "bootstraps_served": self._bootstraps_served,
                "tail_requests": self._tail_requests,
                "tail_waits": self._tail_waits,
                "records_shipped": self._records_shipped,
                "resets_signaled": self._resets_signaled,
            }
