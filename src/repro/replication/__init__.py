"""Read-scale replication: WAL-shipping replicas behind a read/write router.

Three cooperating pieces (see ``docs/REPLICATION.md`` for the full story):

- :class:`~repro.replication.primary.ReplicationSource` — the primary side.
  Serves the ``repl_bootstrap`` wire op (the newest checkpoint, or a live
  snapshot when none exists) and the ``repl_tail`` op (commit records after
  a given store version, long-polling when caught up).  Records come from
  the store's retained in-memory log when possible and from the durable WAL
  segment files otherwise — the commit path is never blocked.
- :class:`~repro.replication.replica.ReplicaApplier` — the replica side.
  Bootstraps, tails, and applies each record through
  :meth:`~repro.ham.store.HAMStore.apply_replicated`, the same replay the
  crash-recovery path uses, so replica state is bit-identical to a
  recovered primary.  Detects primary divergence by **epoch**, not just
  version regression: every bootstrap/tail response is stamped with the
  primary's epoch id (persisted next to the WAL, rotated whenever history
  is rewritten — crash truncation, promotion, state replacement), and any
  epoch change triggers a full re-bootstrap even when the version numbers
  happen to line up.
- :class:`~repro.replication.router.RoutingClient` /
  :class:`~repro.replication.router.RouterServer` — the client side.  Fans
  reads across replicas round-robin with health ejection, sends writes to
  the primary, and threads a read-your-writes *min-version token*: after a
  write, reads carry the committed version, and a replica that cannot catch
  up within its bounded wait answers ``replica_stale`` so the router
  retries elsewhere (ultimately the primary, which is never stale).  When
  the primary's connection dies mid-write, the router probes the replicas
  for one an operator promoted (``repro promote``) and fails writes over to
  it, resetting the token across the epoch boundary.
"""

from repro.replication.primary import ReplicationSource
from repro.replication.replica import ReplicaApplier
from repro.replication.router import RouterServer, RoutingClient

__all__ = [
    "ReplicationSource",
    "ReplicaApplier",
    "RouterServer",
    "RoutingClient",
]
