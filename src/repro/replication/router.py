"""The read/write router: reads fan across replicas, writes hit the primary.

Two entry points over the same routing core:

- :class:`RoutingClient` — a drop-in :class:`~repro.service.client.
  ServiceClient` replacement for applications.  Reads round-robin across
  healthy replicas (with the primary as the fallback of last resort);
  writes go to the primary and their committed version becomes the
  client's *min-version token*: every later read carries it, so a replica
  serving the read either proves it has caught up (waiting, bounded,
  server-side) or answers ``replica_stale`` and the router moves on —
  read-your-writes without pinning every read to the primary.
- :class:`RouterServer` — ``repro route``: a JSON-lines TCP front speaking
  the same wire protocol as the service, so any existing client gets
  routed reads by pointing at the router instead of a server.  Each
  connection gets its own :class:`RoutingClient`, which makes the
  min-version token per-connection — exactly the session consistency the
  token models.

Health ejection: a backend whose connection fails (or whose client
poisons itself mid-call) is ejected for ``eject_seconds`` and quietly
retried after.  Server-*reported* errors (parse errors, timeouts, budget
overruns) are the query's problem, not the backend's, and propagate
without ejection.
"""

from __future__ import annotations

import itertools
import json
import logging
import socketserver
import threading
import time

from repro.errors import ProtocolError, ReadOnlyError, ReplicaStale, ServiceError
from repro.service import protocol
from repro.service.client import ServiceClient

logger = logging.getLogger(__name__)

#: Ops that mutate state: always primary, and their version updates the token.
WRITE_OPS = frozenset({"update", "checkpoint"})

#: Reads that fan out across replicas.
READ_OPS = frozenset({"graphlog", "datalog", "rpq", "explain", "profile"})


def parse_address(value, default_port=7464):
    """``"host:port"`` (or ``(host, port)``) → ``(host, port)``."""
    if isinstance(value, (tuple, list)):
        host, port = value
        return str(host), int(port)
    text = str(value)
    if ":" in text:
        host, _, port = text.rpartition(":")
        return host or "127.0.0.1", int(port)
    return text, default_port


class _Backend:
    """One routable server: lazy connection + health-ejection state."""

    def __init__(self, address, timeout, retries):
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self.retries = retries
        self.client = None
        self.failures = 0
        self.ejected_until = 0.0

    @property
    def address(self):
        return f"{self.host}:{self.port}"

    def healthy(self, now):
        return now >= self.ejected_until

    def acquire(self):
        if self.client is None or self.client.poisoned:
            self.drop()
            self.client = ServiceClient(
                host=self.host,
                port=self.port,
                timeout=self.timeout,
                retries=self.retries,
            )
        return self.client

    def drop(self):
        client, self.client = self.client, None
        if client is not None:
            try:
                client.close()
            except OSError:  # pragma: no cover - best-effort close
                pass

    def eject(self, eject_seconds, now):
        self.failures += 1
        self.ejected_until = now + eject_seconds
        self.drop()

    def mark_ok(self):
        self.failures = 0
        self.ejected_until = 0.0


class RoutingClient:
    """Routes one logical client's requests across a replicated cluster.

    Not thread-safe (same contract as :class:`ServiceClient`): one routing
    client per thread/connection, which also scopes the read-your-writes
    token correctly.
    """

    def __init__(
        self,
        primary,
        replicas=(),
        timeout=30.0,
        retries=1,
        eject_seconds=2.0,
    ):
        self.primary = _Backend(primary, timeout, retries)
        self.replicas = [_Backend(address, timeout, retries) for address in replicas]
        self.eject_seconds = eject_seconds
        self._rr = itertools.count()
        self._min_version = None
        self.reads_routed = 0
        self.writes_routed = 0
        self.stale_redirects = 0
        self.ejections = 0
        self.primary_fallbacks = 0

    # ------------------------------------------------------------- routing

    @property
    def min_version(self):
        """The current read-your-writes token (None before the first write)."""
        return self._min_version

    def call(self, op, **payload):
        """Route one request; returns the backend's full response dict."""
        payload = {k: v for k, v in payload.items() if v is not None}
        if op in WRITE_OPS:
            return self._call_write(op, payload)
        if op in READ_OPS:
            return self._call_read(op, payload)
        # Everything else (stats, ping, slowlog, repl_*) is served by the
        # primary: those ops describe one concrete server, and the primary
        # is the authoritative one.
        return self._call_backend(self.primary, op, payload)

    def _call_write(self, op, payload):
        response = self._call_backend(self.primary, op, payload)
        self.writes_routed += 1
        version = response.get("version")
        if version is not None:
            self._min_version = max(self._min_version or 0, version)
        return response

    def _call_read(self, op, payload):
        if self._min_version is not None:
            payload.setdefault("min_version", self._min_version)
            payload["min_version"] = max(payload["min_version"], self._min_version)
        self.reads_routed += 1
        now = time.monotonic()
        candidates = self._read_candidates(now)
        last_error = None
        for backend in candidates:
            try:
                response = self._call_backend(backend, op, payload, eject_on_failure=True)
                backend.mark_ok()
                return response
            except ReplicaStale as exc:
                # The replica waited its bounded wait and is still behind:
                # healthy, just lagging — redirect, don't eject.
                self.stale_redirects += 1
                last_error = exc
            except _BackendDown as exc:
                last_error = exc.cause
        # Fall back to the primary, which can never be stale for a token it
        # minted and is the last word on connectivity.
        self.primary_fallbacks += 1
        try:
            return self._call_backend(self.primary, op, payload)
        except ServiceError:
            raise
        except _BackendDown as exc:  # pragma: no cover - re-raise shape guard
            raise exc.cause
        finally:
            if last_error is not None:
                logger.debug("read fell back to primary after: %s", last_error)

    def _read_candidates(self, now):
        healthy = [b for b in self.replicas if b.healthy(now)]
        if not healthy:
            return []
        start = next(self._rr) % len(healthy)
        return healthy[start:] + healthy[:start]

    def _call_backend(self, backend, op, payload, eject_on_failure=False):
        try:
            client = backend.acquire()
            response = client.call(op, **payload)
        except (ReplicaStale, ReadOnlyError):
            raise
        except ServiceError as exc:
            if backend.client is None or backend.client.poisoned:
                # Connection-level failure (connect refused, timeout,
                # desync): the backend is the problem.
                if eject_on_failure:
                    backend.eject(self.eject_seconds, time.monotonic())
                    self.ejections += 1
                    raise _BackendDown(backend, exc) from exc
                backend.drop()
                raise
            # The server answered with an error: the request is the
            # problem, not the backend.
            raise
        return response

    # ------------------------------------------------- ServiceClient facade

    def graphlog(self, query, predicate=None, method=None, **limits):
        response = self.call(
            "graphlog", query=query, predicate=predicate, method=method, **limits
        )
        return _relations(response)

    def datalog(self, program, predicate=None, method=None, **limits):
        response = self.call(
            "datalog", query=program, predicate=predicate, method=method, **limits
        )
        return _relations(response)

    def rpq(self, regex, source=None, **limits):
        response = self.call("rpq", query=regex, source=source, **limits)
        return _relations(response)["answers"]

    def update(self, nodes=None, edges=None):
        return self.call("update", nodes=nodes, edges=edges)["version"]

    def checkpoint(self):
        return self.call("checkpoint")["result"]

    def stats(self):
        return self.call("stats")["result"]

    def ping(self):
        return self.call("ping")["result"]["pong"]

    def router_stats(self):
        """Routing-layer statistics (not a wire op)."""
        now = time.monotonic()
        return {
            "primary": self.primary.address,
            "replicas": [
                {
                    "address": b.address,
                    "healthy": b.healthy(now),
                    "failures": b.failures,
                }
                for b in self.replicas
            ],
            "reads_routed": self.reads_routed,
            "writes_routed": self.writes_routed,
            "stale_redirects": self.stale_redirects,
            "ejections": self.ejections,
            "primary_fallbacks": self.primary_fallbacks,
            "min_version": self._min_version,
        }

    # ------------------------------------------------------------ lifecycle

    def close(self):
        self.primary.drop()
        for backend in self.replicas:
            backend.drop()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()


class _BackendDown(Exception):
    """Internal: a backend failed at the connection level and was ejected."""

    def __init__(self, backend, cause):
        super().__init__(f"{backend.address}: {cause}")
        self.backend = backend
        self.cause = cause


def _relations(response):
    return {
        name: {tuple(row) for row in rows}
        for name, rows in response["result"]["relations"].items()
    }


class RouterServer:
    """A standalone JSON-lines TCP router (``repro route``).

    Accepts ordinary service-protocol connections and forwards each request
    through a per-connection :class:`RoutingClient`.  Response ``id``s are
    rewritten to the requesting client's ids (backends see the router's own
    sequence numbers).
    """

    def __init__(
        self,
        primary,
        replicas=(),
        host="127.0.0.1",
        port=0,
        timeout=30.0,
        retries=1,
        eject_seconds=2.0,
    ):
        self.primary = primary
        self.replicas = list(replicas)
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.eject_seconds = eject_seconds
        self._server = None
        self._thread = None
        self.connections = 0

    def routing_client(self):
        return RoutingClient(
            self.primary,
            self.replicas,
            timeout=self.timeout,
            retries=self.retries,
            eject_seconds=self.eject_seconds,
        )

    # -------------------------------------------------------------- serving

    def start(self):
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                outer.connections += 1
                with outer.routing_client() as routing:
                    while True:
                        try:
                            line = self.rfile.readline(protocol.MAX_REQUEST_BYTES)
                        except OSError:
                            return
                        if not line:
                            return
                        if not line.strip():
                            continue
                        response = outer._route_line(routing, line)
                        try:
                            self.wfile.write(protocol.encode(response))
                        except OSError:
                            return

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((self.host, self.port), Handler)
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-router", daemon=True
        )
        self._thread.start()
        logger.info(
            "router listening on %s:%d (primary %s, %d replica(s))",
            self.host,
            self.port,
            parse_address(self.primary),
            len(self.replicas),
        )
        return self

    def _route_line(self, routing, line):
        request_id = None
        try:
            try:
                message = json.loads(line)
            except ValueError as exc:
                raise ProtocolError(f"request is not valid JSON: {exc}") from exc
            if not isinstance(message, dict):
                raise ProtocolError("request must be a JSON object")
            request_id = message.get("id")
            op = message.get("op")
            if op not in protocol.OPS:
                raise ProtocolError(
                    f"unknown op {op!r}; expected one of {', '.join(protocol.OPS)}"
                )
            payload = {k: v for k, v in message.items() if k not in ("id", "op")}
            response = routing.call(op, **payload)
        except ServiceError as exc:
            return protocol.error_response(request_id, exc)
        except Exception as exc:  # noqa: BLE001 — the router must not die mid-connection
            logger.exception("router failed to route a request")
            return protocol.error_response(request_id, ServiceError(str(exc)))
        routed = dict(response)
        routed["id"] = request_id
        return routed

    def stop(self):
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
