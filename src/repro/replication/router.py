"""The read/write router: reads fan across replicas, writes hit the primary.

Two entry points over the same routing core:

- :class:`RoutingClient` — a drop-in :class:`~repro.service.client.
  ServiceClient` replacement for applications.  Reads round-robin across
  healthy replicas (with the primary as the fallback of last resort);
  writes go to the primary and their committed version becomes the
  client's *min-version token*: every later read carries it, so a replica
  serving the read either proves it has caught up (waiting, bounded,
  server-side) or answers ``replica_stale`` and the router moves on —
  read-your-writes without pinning every read to the primary.
- :class:`RouterServer` — ``repro route``: a JSON-lines TCP front speaking
  the same wire protocol as the service, so any existing client gets
  routed reads by pointing at the router instead of a server.  Each
  connection gets its own :class:`RoutingClient`, which makes the
  min-version token per-connection — exactly the session consistency the
  token models.

Health ejection: a backend whose connection fails (or whose client
poisons itself mid-call) is ejected for ``eject_seconds`` and quietly
retried after.  Connect failures and mid-call poisons go through one
accounting path (``_Backend.record_failure``), stamped with a single
``time.monotonic()`` reading taken once per routed call.  Server-
*reported* errors (parse errors, timeouts, budget overruns) are the
query's problem, not the backend's, and propagate without ejection.

Failover: when a *write* fails at the connection level, the router probes
the replicas for one that accepts writes — i.e. one an operator has
promoted (``repro promote``) under a fresh epoch — and adopts it as the
new primary (the old primary joins the replica list for its eventual
rejoin).  The min-version token is reset at adoption: it was minted on
the old epoch's version line, which the new line may never reach, and
read-your-writes across a failover cannot be honored anyway for commits
the old primary lost.  The retried write is applied on the *new* history
line; if the old primary had committed it just before dying, that commit
lives on the abandoned line — at-most-once per epoch, not globally.
"""

from __future__ import annotations

import itertools
import json
import logging
import socketserver
import threading
import time

from repro.errors import ProtocolError, ReadOnlyError, ReplicaStale, ServiceError
from repro.service import protocol
from repro.service.client import ServiceClient

logger = logging.getLogger(__name__)

#: Ops that mutate state: always primary, and their version updates the token.
WRITE_OPS = frozenset({"update", "checkpoint"})

#: Reads that fan out across replicas.
READ_OPS = frozenset({"graphlog", "datalog", "rpq", "explain", "profile"})


def parse_address(value, default_port=7464):
    """``"host:port"`` (or ``(host, port)``) → ``(host, port)``."""
    if isinstance(value, (tuple, list)):
        host, port = value
        return str(host), int(port)
    text = str(value)
    if ":" in text:
        host, _, port = text.rpartition(":")
        return host or "127.0.0.1", int(port)
    return text, default_port


class _Backend:
    """One routable server: lazy connection + health-ejection state."""

    def __init__(self, address, timeout, retries):
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self.retries = retries
        self.client = None
        self.failures = 0
        self.ejected_until = 0.0

    @property
    def address(self):
        return f"{self.host}:{self.port}"

    def healthy(self, now):
        return now >= self.ejected_until

    def acquire(self):
        if self.client is None or self.client.poisoned:
            self.drop()
            self.client = ServiceClient(
                host=self.host,
                port=self.port,
                timeout=self.timeout,
                retries=self.retries,
            )
        return self.client

    def drop(self):
        client, self.client = self.client, None
        if client is not None:
            try:
                client.close()
            except OSError:  # pragma: no cover - best-effort close
                pass

    def record_failure(self, eject_seconds, now):
        """One accounting path for every connection-level failure — connect
        refused in :meth:`acquire` and mid-call poison alike: count it,
        eject until ``now + eject_seconds``, drop the dead client."""
        self.failures += 1
        self.ejected_until = now + eject_seconds
        self.drop()

    def mark_ok(self):
        self.failures = 0
        self.ejected_until = 0.0


class RoutingClient:
    """Routes one logical client's requests across a replicated cluster.

    Not thread-safe (same contract as :class:`ServiceClient`): one routing
    client per thread/connection, which also scopes the read-your-writes
    token correctly.
    """

    def __init__(
        self,
        primary,
        replicas=(),
        timeout=30.0,
        retries=1,
        eject_seconds=2.0,
        on_failover=None,
    ):
        self.primary = _Backend(primary, timeout, retries)
        self.replicas = [_Backend(address, timeout, retries) for address in replicas]
        self.eject_seconds = eject_seconds
        #: Called as ``on_failover(primary_address, replica_addresses)``
        #: after a write failover adopts a promoted replica; RouterServer
        #: uses it to share the discovered topology across connections.
        self.on_failover = on_failover
        self._rr = itertools.count()
        self._min_version = None
        self.reads_routed = 0
        self.writes_routed = 0
        self.stale_redirects = 0
        self.ejections = 0
        self.primary_fallbacks = 0
        self.failovers = 0
        self.token_resets = 0

    # ------------------------------------------------------------- routing

    @property
    def min_version(self):
        """The current read-your-writes token (None before the first write)."""
        return self._min_version

    def call(self, op, **payload):
        """Route one request; returns the backend's full response dict."""
        payload = {k: v for k, v in payload.items() if v is not None}
        # One clock reading per routed call: every health judgment and
        # ejection stamp inside this call sees the same instant.
        now = time.monotonic()
        if op in WRITE_OPS:
            return self._call_write(op, payload, now)
        if op in READ_OPS:
            return self._call_read(op, payload, now)
        # Everything else (stats, ping, slowlog, repl_*) is served by the
        # primary: those ops describe one concrete server, and the primary
        # is the authoritative one.
        try:
            return self._call_backend(self.primary, op, payload, now)
        except _BackendDown as exc:
            raise exc.cause

    def _call_write(self, op, payload, now):
        try:
            response = self._call_backend(self.primary, op, payload, now)
        except _BackendDown as exc:
            response = self._failover_write(op, payload, now, exc)
        self.writes_routed += 1
        version = response.get("version")
        if version is not None:
            # Assign, don't max(): on one history line a new commit's
            # version always exceeds the token anyway, and across a
            # failover (new epoch, possibly lower counter) max() would pin
            # every read to a version the new line may never reach.
            if self._min_version is not None and version < self._min_version:
                self.token_resets += 1
            self._min_version = version
        return response

    def _failover_write(self, op, payload, now, down):
        """The primary's connection failed mid-write: look for a promoted
        replica (one that *accepts* the write) and adopt it as the primary.

        A replica that answers ``read_only`` has not been promoted — keep
        probing.  A genuine server-reported error from a writable backend
        propagates: that backend IS the new primary and it answered.  If no
        backend takes the write, the original connection error surfaces
        unchanged.  The retried write lands on the new epoch's history
        line; if the dying primary had already committed it, that commit is
        on the abandoned line — at-most-once per epoch.
        """
        for backend in list(self.replicas):
            try:
                response = self._call_backend(backend, op, payload, now)
            except ReadOnlyError:
                continue
            except _BackendDown:
                continue
            self._adopt_primary(backend)
            return response
        raise down.cause

    def _adopt_primary(self, backend):
        """Swap *backend* in as the primary; the old primary becomes a
        replica candidate so it can rejoin after catch-up."""
        old = self.primary
        self.primary = backend
        if backend in self.replicas:
            self.replicas.remove(backend)
        self.replicas.append(old)
        backend.mark_ok()
        # The token was minted on the old epoch's version line; reset it so
        # read-your-writes cannot deadlock on a counter the promoted line
        # may never reach.  The caller re-arms it from the failover write's
        # own committed version.
        if self._min_version is not None:
            self.token_resets += 1
        self._min_version = None
        self.failovers += 1
        logger.warning(
            "write failover: promoted replica %s is the new primary "
            "(old primary %s demoted to replica candidate)",
            backend.address,
            old.address,
        )
        if self.on_failover is not None:
            self.on_failover(
                self.primary.address, [b.address for b in self.replicas]
            )

    def _call_read(self, op, payload, now, _retried=False):
        base_payload = dict(payload)
        if self._min_version is not None:
            payload = dict(payload)
            payload["min_version"] = max(
                payload.get("min_version", 0), self._min_version
            )
        self.reads_routed += 1
        candidates = self._read_candidates(now)
        last_error = None
        stale = 0
        for backend in candidates:
            try:
                response = self._call_backend(backend, op, payload, now)
                backend.mark_ok()
                return response
            except ReplicaStale as exc:
                # The replica waited its bounded wait and is still behind:
                # healthy, just lagging — redirect, don't eject.
                self.stale_redirects += 1
                stale += 1
                last_error = exc
            except _BackendDown as exc:
                last_error = exc.cause
        # Fall back to the primary, which can never be stale for a token it
        # minted and is the last word on connectivity.
        self.primary_fallbacks += 1
        try:
            return self._call_backend(self.primary, op, payload, now)
        except ServiceError:
            raise
        except _BackendDown as exc:
            if not _retried and stale and self._min_version is not None:
                # The primary that minted the token is unreachable and every
                # replica reports itself behind it — the token likely names
                # a version on an abandoned epoch's line (the primary died
                # and a replica was promoted with a lower counter).  Waiting
                # would deadlock read-your-writes forever; the commits the
                # token covered are gone with the old line.  Reset and serve
                # current data.
                self.token_resets += 1
                self._min_version = None
                logger.warning(
                    "read-your-writes token reset: primary unreachable and "
                    "all %d replica(s) stale against it",
                    stale,
                )
                return self._call_read(op, base_payload, now, _retried=True)
            raise exc.cause
        finally:
            if last_error is not None:
                logger.debug("read fell back to primary after: %s", last_error)

    def _read_candidates(self, now):
        healthy = [b for b in self.replicas if b.healthy(now)]
        if not healthy:
            return []
        start = next(self._rr) % len(healthy)
        return healthy[start:] + healthy[:start]

    def _call_backend(self, backend, op, payload, now):
        try:
            client = backend.acquire()
            response = client.call(op, **payload)
        except (ReplicaStale, ReadOnlyError):
            raise
        except ServiceError as exc:
            if backend.client is None or backend.client.poisoned:
                # Connection-level failure (connect refused, timeout,
                # desync): the backend is the problem.  Connect failures in
                # acquire() leave client None and land here too — the same
                # accounting as a mid-call poison.
                backend.record_failure(self.eject_seconds, now)
                self.ejections += 1
                raise _BackendDown(backend, exc) from exc
            # The server answered with an error: the request is the
            # problem, not the backend.
            raise
        return response

    # ------------------------------------------------- ServiceClient facade

    def graphlog(self, query, predicate=None, method=None, **limits):
        response = self.call(
            "graphlog", query=query, predicate=predicate, method=method, **limits
        )
        return _relations(response)

    def datalog(self, program, predicate=None, method=None, **limits):
        response = self.call(
            "datalog", query=program, predicate=predicate, method=method, **limits
        )
        return _relations(response)

    def rpq(self, regex, source=None, **limits):
        response = self.call("rpq", query=regex, source=source, **limits)
        return _relations(response)["answers"]

    def update(self, nodes=None, edges=None):
        return self.call("update", nodes=nodes, edges=edges)["version"]

    def checkpoint(self):
        return self.call("checkpoint")["result"]

    def stats(self):
        return self.call("stats")["result"]

    def ping(self):
        return self.call("ping")["result"]["pong"]

    def router_stats(self):
        """Routing-layer statistics (not a wire op)."""
        now = time.monotonic()
        return {
            "primary": self.primary.address,
            "replicas": [
                {
                    "address": b.address,
                    "healthy": b.healthy(now),
                    "failures": b.failures,
                }
                for b in self.replicas
            ],
            "reads_routed": self.reads_routed,
            "writes_routed": self.writes_routed,
            "stale_redirects": self.stale_redirects,
            "ejections": self.ejections,
            "primary_fallbacks": self.primary_fallbacks,
            "failovers": self.failovers,
            "token_resets": self.token_resets,
            "min_version": self._min_version,
        }

    # ------------------------------------------------------------ lifecycle

    def close(self):
        self.primary.drop()
        for backend in self.replicas:
            backend.drop()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()


class _BackendDown(Exception):
    """Internal: a backend failed at the connection level and was ejected."""

    def __init__(self, backend, cause):
        super().__init__(f"{backend.address}: {cause}")
        self.backend = backend
        self.cause = cause


def _relations(response):
    return {
        name: {tuple(row) for row in rows}
        for name, rows in response["result"]["relations"].items()
    }


class RouterServer:
    """A standalone JSON-lines TCP router (``repro route``).

    Accepts ordinary service-protocol connections and forwards each request
    through a per-connection :class:`RoutingClient`.  Response ``id``s are
    rewritten to the requesting client's ids (backends see the router's own
    sequence numbers).
    """

    def __init__(
        self,
        primary,
        replicas=(),
        host="127.0.0.1",
        port=0,
        timeout=30.0,
        retries=1,
        eject_seconds=2.0,
    ):
        self.primary = primary
        self.replicas = list(replicas)
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.eject_seconds = eject_seconds
        self._server = None
        self._thread = None
        self.connections = 0
        self.failovers = 0
        # Failover discoveries are shared across connections: the first
        # connection to find the promoted primary updates the topology here,
        # and every connection opened afterwards starts on it.
        self._topology_lock = threading.Lock()

    def routing_client(self):
        with self._topology_lock:
            primary, replicas = self.primary, list(self.replicas)
        return RoutingClient(
            primary,
            replicas,
            timeout=self.timeout,
            retries=self.retries,
            eject_seconds=self.eject_seconds,
            on_failover=self._record_failover,
        )

    def _record_failover(self, primary, replicas):
        with self._topology_lock:
            self.primary = primary
            self.replicas = [address for address in replicas if address != primary]
            self.failovers += 1
        logger.warning(
            "router topology updated after failover: primary %s, replicas %s",
            primary,
            ", ".join(self.replicas) or "(none)",
        )

    # -------------------------------------------------------------- serving

    def start(self):
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                outer.connections += 1
                with outer.routing_client() as routing:
                    while True:
                        try:
                            line = self.rfile.readline(protocol.MAX_REQUEST_BYTES)
                        except OSError:
                            return
                        if not line:
                            return
                        if not line.strip():
                            continue
                        response = outer._route_line(routing, line)
                        try:
                            self.wfile.write(protocol.encode(response))
                        except OSError:
                            return

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((self.host, self.port), Handler)
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-router", daemon=True
        )
        self._thread.start()
        logger.info(
            "router listening on %s:%d (primary %s, %d replica(s))",
            self.host,
            self.port,
            parse_address(self.primary),
            len(self.replicas),
        )
        return self

    def _route_line(self, routing, line):
        request_id = None
        try:
            try:
                message = json.loads(line)
            except ValueError as exc:
                raise ProtocolError(f"request is not valid JSON: {exc}") from exc
            if not isinstance(message, dict):
                raise ProtocolError("request must be a JSON object")
            request_id = message.get("id")
            op = message.get("op")
            if op not in protocol.OPS:
                raise ProtocolError(
                    f"unknown op {op!r}; expected one of {', '.join(protocol.OPS)}"
                )
            payload = {k: v for k, v in message.items() if k not in ("id", "op")}
            response = routing.call(op, **payload)
        except ServiceError as exc:
            return protocol.error_response(request_id, exc)
        except Exception as exc:  # noqa: BLE001 — the router must not die mid-connection
            logger.exception("router failed to route a request")
            return protocol.error_response(request_id, ServiceError(str(exc)))
        routed = dict(response)
        routed["id"] = request_id
        return routed

    def stop(self):
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
