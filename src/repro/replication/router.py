"""The read/write router: reads fan across replicas, writes hit the primary.

Two entry points over the same routing core:

- :class:`RoutingClient` — a drop-in :class:`~repro.service.client.
  ServiceClient` replacement for applications.  Reads round-robin across
  healthy replicas (with the primary as the fallback of last resort);
  writes go to the primary and their committed version becomes the
  client's *min-version token*: every later read carries it, so a replica
  serving the read either proves it has caught up (waiting, bounded,
  server-side) or answers ``replica_stale`` and the router moves on —
  read-your-writes without pinning every read to the primary.
- :class:`RouterServer` — ``repro route``: a JSON-lines TCP front speaking
  the same wire protocol as the service, so any existing client gets
  routed reads by pointing at the router instead of a server.  Each
  connection gets its own :class:`RoutingClient`, which makes the
  min-version token per-connection — exactly the session consistency the
  token models.

Health ejection: a backend whose connection fails (or whose client
poisons itself mid-call) is ejected for ``eject_seconds`` and quietly
retried after.  Connect failures and mid-call poisons go through one
accounting path (``_Backend.record_failure``), stamped with a single
``time.monotonic()`` reading taken once per routed call.  Server-
*reported* errors (parse errors, timeouts, budget overruns) are the
query's problem, not the backend's, and propagate without ejection.

Failover: when a *write* fails at the connection level, the router probes
the replicas for one that accepts writes — i.e. one an operator has
promoted (``repro promote``) under a fresh epoch — and adopts it as the
new primary (the old primary joins the replica list for its eventual
rejoin).  The min-version token is reset at adoption: it was minted on
the old epoch's version line, which the new line may never reach, and
read-your-writes across a failover cannot be honored anyway for commits
the old primary lost.  The retried write is applied on the *new* history
line; if the old primary had committed it just before dying, that commit
lives on the abandoned line — at-most-once per epoch, not globally.
"""

from __future__ import annotations

import itertools
import json
import logging
import socketserver
import threading
import time

from repro import obs
from repro.errors import ProtocolError, ReadOnlyError, ReplicaStale, ReproError, ServiceError
from repro.obs import context as trace_context
from repro.obs import logs
from repro.obs.metrics import (
    HistogramData,
    HistogramMergeError,
    MetricFamily,
    Registry,
)
from repro.service import protocol
from repro.service.client import ServiceClient

logger = logging.getLogger(__name__)

#: Ops that mutate state: always primary, and their version updates the token.
WRITE_OPS = frozenset({"update", "checkpoint"})

#: Reads that fan out across replicas.
READ_OPS = frozenset({"graphlog", "datalog", "rpq", "explain", "profile"})

#: RoutingClient counters folded into RouterServer totals per connection.
ROUTING_COUNTERS = (
    "reads_routed",
    "writes_routed",
    "stale_redirects",
    "ejections",
    "primary_fallbacks",
    "failovers",
    "token_resets",
)


def parse_address(value, default_port=7464):
    """``"host:port"`` (or ``(host, port)``) → ``(host, port)``."""
    if isinstance(value, (tuple, list)):
        host, port = value
        return str(host), int(port)
    text = str(value)
    if ":" in text:
        host, _, port = text.rpartition(":")
        return host or "127.0.0.1", int(port)
    return text, default_port


class _Backend:
    """One routable server: lazy connection + health-ejection state."""

    def __init__(self, address, timeout, retries):
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self.retries = retries
        self.client = None
        self.failures = 0
        self.ejected_until = 0.0

    @property
    def address(self):
        return f"{self.host}:{self.port}"

    def healthy(self, now):
        return now >= self.ejected_until

    def acquire(self):
        if self.client is None or self.client.poisoned:
            self.drop()
            self.client = ServiceClient(
                host=self.host,
                port=self.port,
                timeout=self.timeout,
                retries=self.retries,
            )
        return self.client

    def drop(self):
        client, self.client = self.client, None
        if client is not None:
            try:
                client.close()
            except OSError:  # pragma: no cover - best-effort close
                pass

    def record_failure(self, eject_seconds, now):
        """One accounting path for every connection-level failure — connect
        refused in :meth:`acquire` and mid-call poison alike: count it,
        eject until ``now + eject_seconds``, drop the dead client."""
        self.failures += 1
        self.ejected_until = now + eject_seconds
        self.drop()

    def mark_ok(self):
        self.failures = 0
        self.ejected_until = 0.0


class RoutingClient:
    """Routes one logical client's requests across a replicated cluster.

    Not thread-safe (same contract as :class:`ServiceClient`): one routing
    client per thread/connection, which also scopes the read-your-writes
    token correctly.
    """

    def __init__(
        self,
        primary,
        replicas=(),
        timeout=30.0,
        retries=1,
        eject_seconds=2.0,
        on_failover=None,
        sampler=None,
        traces=None,
        node_id=None,
    ):
        self.primary = _Backend(primary, timeout, retries)
        self.replicas = [_Backend(address, timeout, retries) for address in replicas]
        self.eject_seconds = eject_seconds
        #: Distributed-tracing wiring (all optional): when a *sampler* is
        #: configured, every routed call runs under a trace context — the
        #: incoming request's own when it carried one, a freshly minted one
        #: otherwise — and every forward attempt (including failover probes
        #: and stale redirects) is stamped so backend spans hang off this
        #: hop in the assembled trace.  Sampled hops record their span tree
        #: into *traces* (the owning RouterServer's ring).
        self.sampler = sampler
        self.traces = traces
        self.node_id = node_id
        #: Called as ``on_failover(primary_address, replica_addresses)``
        #: after a write failover adopts a promoted replica; RouterServer
        #: uses it to share the discovered topology across connections.
        self.on_failover = on_failover
        self._rr = itertools.count()
        self._min_version = None
        self.reads_routed = 0
        self.writes_routed = 0
        self.stale_redirects = 0
        self.ejections = 0
        self.primary_fallbacks = 0
        self.failovers = 0
        self.token_resets = 0

    # ------------------------------------------------------------- routing

    @property
    def min_version(self):
        """The current read-your-writes token (None before the first write)."""
        return self._min_version

    def call(self, op, **payload):
        """Route one request; returns the backend's full response dict."""
        payload = {k: v for k, v in payload.items() if v is not None}
        tc = self._trace_for(payload)
        if tc is None:
            return self._route(op, payload)
        token = trace_context.set_current(tc)
        try:
            if tc.sampled:
                with obs.tracing("route", context=tc, op=op) as tr:
                    response = self._route(op, payload)
                self._record_trace(op, tr, tc)
            else:
                response = self._route(op, payload)
        finally:
            trace_context.reset_current(token)
        # The backend usually echoed the id already; setdefault covers ops
        # answered without a context-aware server on the other end.
        response.setdefault("trace_id", tc.trace_id)
        return response

    def _trace_for(self, payload):
        """The trace context this routed call runs under (or ``None``).

        An incoming ``trace`` field wins (the caller already decided the id
        and the sampling verdict); otherwise an ambient context is reused;
        otherwise a configured sampler mints a fresh context per call.  The
        wire field is *popped*: forwarding re-stamps it per backend attempt
        with the forward span as parent.
        """
        doc = payload.pop("trace", None)
        if doc is not None:
            return trace_context.TraceContext.from_wire(doc)
        ambient = trace_context.current()
        if ambient is not None:
            return ambient
        if self.sampler is not None and self.sampler.enabled:
            return trace_context.TraceContext(
                logs.new_request_id(), None, self.sampler.sample()
            )
        return None

    def _record_trace(self, op, tr, tc):
        if self.traces is None:
            return
        self.traces.record(
            {
                "trace_id": tc.trace_id,
                "request_id": tc.trace_id,
                "node_id": self.node_id,
                "op": op,
                "elapsed_ms": round(tr.root.elapsed_ms, 3),
                "spans": obs.flatten_span_tree(tr.root, node_id=self.node_id),
            }
        )

    def counters(self):
        """The routing counters as a dict (RouterServer folds these into
        cross-connection totals when the owning connection closes)."""
        return {name: getattr(self, name) for name in ROUTING_COUNTERS}

    def _route(self, op, payload):
        # One clock reading per routed call: every health judgment and
        # ejection stamp inside this call sees the same instant.
        now = time.monotonic()
        if op in WRITE_OPS:
            return self._call_write(op, payload, now)
        if op in READ_OPS:
            return self._call_read(op, payload, now)
        # Everything else (stats, ping, slowlog, repl_*) is served by the
        # primary: those ops describe one concrete server, and the primary
        # is the authoritative one.
        try:
            return self._call_backend(self.primary, op, payload, now)
        except _BackendDown as exc:
            raise exc.cause

    def _call_write(self, op, payload, now):
        try:
            response = self._call_backend(self.primary, op, payload, now)
        except _BackendDown as exc:
            response = self._failover_write(op, payload, now, exc)
        self.writes_routed += 1
        version = response.get("version")
        if version is not None:
            # Assign, don't max(): on one history line a new commit's
            # version always exceeds the token anyway, and across a
            # failover (new epoch, possibly lower counter) max() would pin
            # every read to a version the new line may never reach.
            if self._min_version is not None and version < self._min_version:
                self.token_resets += 1
            self._min_version = version
        return response

    def _failover_write(self, op, payload, now, down):
        """The primary's connection failed mid-write: look for a promoted
        replica (one that *accepts* the write) and adopt it as the primary.

        A replica that answers ``read_only`` has not been promoted — keep
        probing.  A genuine server-reported error from a writable backend
        propagates: that backend IS the new primary and it answered.  If no
        backend takes the write, the original connection error surfaces
        unchanged.  The retried write lands on the new epoch's history
        line; if the dying primary had already committed it, that commit is
        on the abandoned line — at-most-once per epoch.
        """
        for backend in list(self.replicas):
            try:
                response = self._call_backend(backend, op, payload, now)
            except ReadOnlyError:
                continue
            except _BackendDown:
                continue
            self._adopt_primary(backend)
            return response
        raise down.cause

    def _adopt_primary(self, backend):
        """Swap *backend* in as the primary; the old primary becomes a
        replica candidate so it can rejoin after catch-up."""
        old = self.primary
        self.primary = backend
        if backend in self.replicas:
            self.replicas.remove(backend)
        self.replicas.append(old)
        backend.mark_ok()
        # The token was minted on the old epoch's version line; reset it so
        # read-your-writes cannot deadlock on a counter the promoted line
        # may never reach.  The caller re-arms it from the failover write's
        # own committed version.
        if self._min_version is not None:
            self.token_resets += 1
        self._min_version = None
        self.failovers += 1
        logger.warning(
            "write failover: promoted replica %s is the new primary "
            "(old primary %s demoted to replica candidate)",
            backend.address,
            old.address,
        )
        if self.on_failover is not None:
            self.on_failover(
                self.primary.address, [b.address for b in self.replicas]
            )

    def _call_read(self, op, payload, now, _retried=False):
        base_payload = dict(payload)
        if self._min_version is not None:
            payload = dict(payload)
            payload["min_version"] = max(
                payload.get("min_version", 0), self._min_version
            )
        self.reads_routed += 1
        candidates = self._read_candidates(now)
        last_error = None
        stale = 0
        for backend in candidates:
            try:
                response = self._call_backend(backend, op, payload, now)
                backend.mark_ok()
                return response
            except ReplicaStale as exc:
                # The replica waited its bounded wait and is still behind:
                # healthy, just lagging — redirect, don't eject.
                self.stale_redirects += 1
                stale += 1
                last_error = exc
            except _BackendDown as exc:
                last_error = exc.cause
        # Fall back to the primary, which can never be stale for a token it
        # minted and is the last word on connectivity.
        self.primary_fallbacks += 1
        try:
            return self._call_backend(self.primary, op, payload, now)
        except ServiceError:
            raise
        except _BackendDown as exc:
            if not _retried and stale and self._min_version is not None:
                # The primary that minted the token is unreachable and every
                # replica reports itself behind it — the token likely names
                # a version on an abandoned epoch's line (the primary died
                # and a replica was promoted with a lower counter).  Waiting
                # would deadlock read-your-writes forever; the commits the
                # token covered are gone with the old line.  Reset and serve
                # current data.
                self.token_resets += 1
                self._min_version = None
                logger.warning(
                    "read-your-writes token reset: primary unreachable and "
                    "all %d replica(s) stale against it",
                    stale,
                )
                return self._call_read(op, base_payload, now, _retried=True)
            raise exc.cause
        finally:
            if last_error is not None:
                logger.debug("read fell back to primary after: %s", last_error)

    def _read_candidates(self, now):
        healthy = [b for b in self.replicas if b.healthy(now)]
        if not healthy:
            return []
        start = next(self._rr) % len(healthy)
        return healthy[start:] + healthy[:start]

    def _call_backend(self, backend, op, payload, now):
        tc = trace_context.current()
        if tc is not None:
            # Stamp every forward attempt — first choice, stale redirect, or
            # failover probe alike — with a child context parented at this
            # attempt's span, so the backend's serving spans attach to the
            # hop that actually reached it.  Unsampled contexts have no
            # active tracer; the id still propagates for log correlation.
            with obs.span("route.forward", op=op, backend=backend.address) as fwd:
                stamped = dict(payload)
                stamped["trace"] = tc.child(
                    getattr(fwd, "span_id", None) or tc.parent_span_id
                ).to_wire()
                return self._send(backend, op, stamped, now)
        return self._send(backend, op, payload, now)

    def _send(self, backend, op, payload, now):
        try:
            client = backend.acquire()
            response = client.call(op, **payload)
        except (ReplicaStale, ReadOnlyError):
            raise
        except ServiceError as exc:
            if backend.client is None or backend.client.poisoned:
                # Connection-level failure (connect refused, timeout,
                # desync): the backend is the problem.  Connect failures in
                # acquire() leave client None and land here too — the same
                # accounting as a mid-call poison.
                backend.record_failure(self.eject_seconds, now)
                self.ejections += 1
                raise _BackendDown(backend, exc) from exc
            # The server answered with an error: the request is the
            # problem, not the backend.
            raise
        return response

    # ------------------------------------------------- ServiceClient facade

    def graphlog(self, query, predicate=None, method=None, **limits):
        response = self.call(
            "graphlog", query=query, predicate=predicate, method=method, **limits
        )
        return _relations(response)

    def datalog(self, program, predicate=None, method=None, **limits):
        response = self.call(
            "datalog", query=program, predicate=predicate, method=method, **limits
        )
        return _relations(response)

    def rpq(self, regex, source=None, **limits):
        response = self.call("rpq", query=regex, source=source, **limits)
        return _relations(response)["answers"]

    def update(self, nodes=None, edges=None):
        return self.call("update", nodes=nodes, edges=edges)["version"]

    def checkpoint(self):
        return self.call("checkpoint")["result"]

    def stats(self):
        return self.call("stats")["result"]

    def ping(self):
        return self.call("ping")["result"]["pong"]

    def router_stats(self):
        """Routing-layer statistics (not a wire op)."""
        now = time.monotonic()
        return {
            "primary": self.primary.address,
            "replicas": [
                {
                    "address": b.address,
                    "healthy": b.healthy(now),
                    "failures": b.failures,
                }
                for b in self.replicas
            ],
            "reads_routed": self.reads_routed,
            "writes_routed": self.writes_routed,
            "stale_redirects": self.stale_redirects,
            "ejections": self.ejections,
            "primary_fallbacks": self.primary_fallbacks,
            "failovers": self.failovers,
            "token_resets": self.token_resets,
            "min_version": self._min_version,
        }

    # ------------------------------------------------------------ lifecycle

    def close(self):
        self.primary.drop()
        for backend in self.replicas:
            backend.drop()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()


class _BackendDown(Exception):
    """Internal: a backend failed at the connection level and was ejected."""

    def __init__(self, backend, cause):
        super().__init__(f"{backend.address}: {cause}")
        self.backend = backend
        self.cause = cause


def _relations(response):
    return {
        name: {tuple(row) for row in rows}
        for name, rows in response["result"]["relations"].items()
    }


def _ms(seconds):
    return None if seconds is None else round(seconds * 1000.0, 3)


class RouterServer:
    """A standalone JSON-lines TCP router (``repro route``).

    Accepts ordinary service-protocol connections and forwards each request
    through a per-connection :class:`RoutingClient`.  Response ``id``s are
    rewritten to the requesting client's ids (backends see the router's own
    sequence numbers).
    """

    def __init__(
        self,
        primary,
        replicas=(),
        host="127.0.0.1",
        port=0,
        timeout=30.0,
        retries=1,
        eject_seconds=2.0,
        trace_sample=0.0,
        trace_ring=256,
        metrics_host="127.0.0.1",
        metrics_port=None,
    ):
        self.primary = primary
        self.replicas = list(replicas)
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.eject_seconds = eject_seconds
        self._server = None
        self._thread = None
        self.connections = 0
        self.failovers = 0
        # Failover discoveries are shared across connections: the first
        # connection to find the promoted primary updates the topology here,
        # and every connection opened afterwards starts on it.
        self._topology_lock = threading.Lock()
        #: The router is a node in the trace topology too: it has its own
        #: identity, its own trace ring (queried by ``trace_get`` alongside
        #: the backends'), and a head sampler shared by every connection's
        #: RoutingClient (itertools-counter based, safe across threads).
        self.node_id = obs.new_node_id()
        self.sampler = obs.RateSampler(trace_sample)
        self.traces = obs.TraceRing(capacity=trace_ring)
        #: Stats fan-outs (cluster_stats / trace_get) use short-lived
        #: clients with a bounded timeout so one dead node cannot stall the
        #: whole panel for the full routing timeout.
        self.fanout_timeout = min(timeout, 5.0)
        self._started_monotonic = time.monotonic()
        self._clients_lock = threading.Lock()
        self._live_clients = set()
        self._counter_totals = {name: 0 for name in ROUTING_COUNTERS}
        self.metrics_host = metrics_host
        self.metrics_port = metrics_port
        self._telemetry = None
        self.exposition = Registry()
        self.exposition.collector(self._cluster_families)

    def routing_client(self):
        with self._topology_lock:
            primary, replicas = self.primary, list(self.replicas)
        return RoutingClient(
            primary,
            replicas,
            timeout=self.timeout,
            retries=self.retries,
            eject_seconds=self.eject_seconds,
            on_failover=self._record_failover,
            sampler=self.sampler if self.sampler.enabled else None,
            traces=self.traces,
            node_id=self.node_id,
        )

    def _track(self, routing):
        with self._clients_lock:
            self._live_clients.add(routing)

    def _untrack(self, routing):
        """Fold a closing connection's routing counters into the totals so
        ``cluster_stats`` survives connection churn."""
        with self._clients_lock:
            self._live_clients.discard(routing)
            for name, value in routing.counters().items():
                self._counter_totals[name] += value

    def router_totals(self):
        """Cross-connection routing counters: closed-connection totals plus
        the live connections' current values (reads of plain ints — no
        coordination with the owning connection threads needed)."""
        with self._clients_lock:
            totals = dict(self._counter_totals)
            for routing in self._live_clients:
                for name, value in routing.counters().items():
                    totals[name] += value
        return totals

    def _record_failover(self, primary, replicas):
        with self._topology_lock:
            self.primary = primary
            self.replicas = [address for address in replicas if address != primary]
            self.failovers += 1
        logger.warning(
            "router topology updated after failover: primary %s, replicas %s",
            primary,
            ", ".join(self.replicas) or "(none)",
        )

    # -------------------------------------------------------------- serving

    def start(self):
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                outer.connections += 1
                with outer.routing_client() as routing:
                    outer._track(routing)
                    try:
                        while True:
                            try:
                                line = self.rfile.readline(protocol.MAX_REQUEST_BYTES)
                            except OSError:
                                return
                            if not line:
                                return
                            if not line.strip():
                                continue
                            response = outer._route_line(routing, line)
                            try:
                                self.wfile.write(protocol.encode(response))
                            except OSError:
                                return
                    finally:
                        outer._untrack(routing)

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((self.host, self.port), Handler)
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-router", daemon=True
        )
        self._thread.start()
        if self.metrics_port is not None:
            from repro.obs.export import TelemetryHTTPServer

            self._telemetry = TelemetryHTTPServer(
                render_metrics=self.exposition.render,
                health=self.health,
                host=self.metrics_host,
                port=self.metrics_port,
            ).start()
            # The endpoint resolves port 0 to the bound ephemeral port;
            # reflect it so embedders and the CLI banner can name it.
            self.metrics_port = self._telemetry.port
        logger.info(
            "router listening on %s:%d (primary %s, %d replica(s))",
            self.host,
            self.port,
            parse_address(self.primary),
            len(self.replicas),
        )
        return self

    def _route_line(self, routing, line):
        request_id = None
        try:
            try:
                message = json.loads(line)
            except ValueError as exc:
                raise ProtocolError(f"request is not valid JSON: {exc}") from exc
            if not isinstance(message, dict):
                raise ProtocolError("request must be a JSON object")
            request_id = message.get("id")
            op = message.get("op")
            if op not in protocol.OPS:
                raise ProtocolError(
                    f"unknown op {op!r}; expected one of {', '.join(protocol.OPS)}"
                )
            payload = {k: v for k, v in message.items() if k not in ("id", "op")}
            if op == "trace_get":
                # Cluster-plane ops are answered by the router itself: it
                # owns the topology, so it can fan out and merge instead of
                # forwarding to one node that only knows its own slice.
                started = time.monotonic()
                result = self._trace_get(payload)
                response = protocol.ok_response(
                    None,
                    result,
                    elapsed_ms=(time.monotonic() - started) * 1000.0,
                )
            elif op == "cluster_stats":
                started = time.monotonic()
                result = self.cluster_stats()
                response = protocol.ok_response(
                    None,
                    result,
                    elapsed_ms=(time.monotonic() - started) * 1000.0,
                )
            else:
                response = routing.call(op, **payload)
        except ServiceError as exc:
            return protocol.error_response(request_id, exc)
        except Exception as exc:  # noqa: BLE001 — the router must not die mid-connection
            logger.exception("router failed to route a request")
            return protocol.error_response(request_id, ServiceError(str(exc)))
        routed = dict(response)
        routed["id"] = request_id
        return routed

    # ------------------------------------------------------- cluster plane

    def _topology(self):
        with self._topology_lock:
            return self.primary, list(self.replicas)

    def _each_node(self):
        """``(role, "host:port")`` for every node in the current topology."""
        primary, replicas = self._topology()
        yield "primary", "%s:%d" % parse_address(primary)
        for address in replicas:
            yield "replica", "%s:%d" % parse_address(address)

    def _node_call(self, address, op, **payload):
        """One short-lived, bounded-timeout RPC to a single backend."""
        host, port = parse_address(address)
        client = ServiceClient(host=host, port=port, timeout=self.fanout_timeout)
        try:
            return client.call(op, **payload)
        finally:
            try:
                client.close()
            except OSError:  # pragma: no cover - best-effort close
                pass

    def _trace_get(self, payload):
        """Assemble one distributed trace: the router's own ring plus a
        ``trace_get`` fan-out to every node in the topology, merged into a
        single span list (span dicts carry ``node_id``, so the renderer can
        show which machine each hop ran on)."""
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise ProtocolError("trace_get requires a string trace_id")
        spans = []
        nodes = []
        own = []
        for entry in self.traces.find(trace_id):
            own.extend(entry.get("spans") or [])
        if own:
            spans.extend(own)
            nodes.append(
                {
                    "node_id": self.node_id,
                    "role": "router",
                    "address": f"{self.host}:{self.port}",
                    "source": "ring",
                    "spans": len(own),
                }
            )
        for role, address in self._each_node():
            try:
                result = self._node_call(address, "trace_get", trace_id=trace_id)[
                    "result"
                ]
            except (ReproError, OSError) as exc:
                nodes.append({"address": address, "role": role, "error": str(exc)})
                continue
            found = result.get("spans") or []
            if result.get("found"):
                spans.extend(found)
            nodes.append(
                {
                    "node_id": result.get("node_id"),
                    "role": role,
                    "address": address,
                    "source": result.get("source"),
                    "spans": len(found),
                }
            )
        # A node can be reachable through two addresses (old primary that
        # rejoined as a replica); dedup spans by (node_id, span_id).
        seen = set()
        unique = []
        for span in spans:
            key = (span.get("node_id"), span.get("span_id"))
            if key in seen and key[1] is not None:
                continue
            seen.add(key)
            unique.append(span)
        return {
            "trace_id": trace_id,
            "found": bool(unique),
            "spans": unique,
            "nodes": nodes,
        }

    def cluster_stats(self):
        """The cluster observability panel: per-node role/epoch/version/lag
        plus a cross-node aggregate whose latency quantiles come from
        *merged histograms* (quantiles of per-node quantiles would be
        meaningless — see :meth:`repro.obs.metrics.HistogramData.merge`)."""
        doc, _merged = self._collect_cluster()
        return doc

    def _collect_cluster(self):
        nodes = []
        merged = {}
        merge_skipped = 0
        for role, address in self._each_node():
            entry = {"address": address, "role": role, "ok": False}
            try:
                stats = self._node_call(
                    address, "stats", include_histograms=True
                )["result"]
            except (ReproError, OSError) as exc:
                entry["error"] = str(exc)
                nodes.append(entry)
                continue
            entry["ok"] = True
            entry["node_id"] = stats.get("node_id")
            entry["engine"] = stats.get("engine")
            store = stats.get("store") or {}
            entry["version"] = store.get("version")
            repl = stats.get("replication") or {}
            # The node's own view of its role wins over the router's
            # topology guess (a promoted replica reports "primary" before
            # any write has forced a failover adoption).
            entry["role"] = repl.get("role", role)
            entry["epoch"] = repl.get("epoch", store.get("epoch"))
            entry["lag_versions"] = repl.get("lag_versions")
            metrics_doc = stats.get("metrics") or {}
            counters = metrics_doc.get("counters") or {}
            entry["requests_total"] = sum(
                value
                for name, value in counters.items()
                if name.startswith("requests.")
            )
            entry["in_flight"] = metrics_doc.get("in_flight")
            entry["latency"] = {
                op: {k: v for k, v in lat.items() if k != "histogram"}
                for op, lat in (metrics_doc.get("latency") or {}).items()
            }
            entry["traces"] = stats.get("traces")
            nodes.append(entry)
            for op, lat in (metrics_doc.get("latency") or {}).items():
                wire = lat.get("histogram")
                if wire is None:
                    continue
                try:
                    hist = HistogramData.from_wire(wire)
                    if op in merged:
                        merged[op].merge(hist)
                    else:
                        merged[op] = hist
                except HistogramMergeError as exc:
                    # A node on an incompatible bucket layout degrades the
                    # aggregate, never the whole panel.
                    merge_skipped += 1
                    logger.warning(
                        "cluster_stats: skipping histogram %s from %s: %s",
                        op,
                        address,
                        exc,
                    )
        lags = [
            entry["lag_versions"]
            for entry in nodes
            if entry.get("lag_versions") is not None
        ]
        aggregate = {
            "nodes_total": len(nodes),
            "nodes_ok": sum(1 for entry in nodes if entry["ok"]),
            "requests_total": sum(
                entry.get("requests_total") or 0 for entry in nodes
            ),
            "max_lag_versions": max(lags) if lags else None,
            "latency": {
                op: {
                    "count": hist.count,
                    "p50_ms": _ms(hist.quantile(0.50)),
                    "p95_ms": _ms(hist.quantile(0.95)),
                    "p99_ms": _ms(hist.quantile(0.99)),
                    "max_ms": _ms(hist.max),
                }
                for op, hist in sorted(merged.items())
            },
            "histograms_skipped": merge_skipped,
        }
        primary, replicas = self._topology()
        traces = self.traces.stats()
        traces["sample_rate"] = self.sampler.rate
        router = {
            "node_id": self.node_id,
            "address": f"{self.host}:{self.port}",
            "primary": "%s:%d" % parse_address(primary),
            "replicas": ["%s:%d" % parse_address(a) for a in replicas],
            "connections": self.connections,
            "failovers": self.failovers,
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
            "counters": self.router_totals(),
            "traces": traces,
        }
        return {"router": router, "nodes": nodes, "aggregate": aggregate}, merged

    # ----------------------------------------------------------- telemetry

    def health(self):
        """The router's ``/healthz`` document (the router itself is healthy
        whenever it is serving; backend health lives in ``cluster_stats``)."""
        primary, replicas = self._topology()
        return {
            "status": "ok",
            "role": "router",
            "node_id": self.node_id,
            "primary": "%s:%d" % parse_address(primary),
            "replicas": ["%s:%d" % parse_address(a) for a in replicas],
            "connections": self.connections,
            "failovers": self.failovers,
        }

    def _cluster_families(self):
        """Scrape-time collector: routing counters plus a live
        ``cluster_stats`` fan-out rendered as ``repro_cluster_*`` families
        (per-node up/version/lag/requests and merged latency histograms)."""
        totals = self.router_totals()
        families = []
        routed = MetricFamily(
            "repro_router_requests_total", "counter", "Requests routed, by kind"
        )
        routed.add_sample(totals["reads_routed"], {"kind": "read"})
        routed.add_sample(totals["writes_routed"], {"kind": "write"})
        families.append(routed)
        for name in ROUTING_COUNTERS:
            if name in ("reads_routed", "writes_routed"):
                continue
            families.append(
                MetricFamily(
                    f"repro_router_{name}_total",
                    "counter",
                    f"Routing events: {name.replace('_', ' ')}",
                ).add_sample(totals[name])
            )
        try:
            doc, merged = self._collect_cluster()
        except Exception:  # noqa: BLE001 — a scrape must not take down /metrics
            logger.exception("cluster_stats fan-out failed during scrape")
            return families
        up = MetricFamily(
            "repro_cluster_node_up",
            "gauge",
            "1 when the node answered the stats fan-out",
        )
        version = MetricFamily(
            "repro_cluster_node_version", "gauge", "Committed version per node"
        )
        lag = MetricFamily(
            "repro_cluster_node_lag_versions",
            "gauge",
            "Replica lag behind its primary, in versions",
        )
        requests = MetricFamily(
            "repro_cluster_node_requests_total",
            "counter",
            "Requests served per node (all ops)",
        )
        for entry in doc["nodes"]:
            labels = {"address": entry["address"], "role": entry.get("role", "?")}
            up.add_sample(1 if entry["ok"] else 0, labels)
            if entry.get("version") is not None:
                version.add_sample(entry["version"], labels)
            if entry.get("lag_versions") is not None:
                lag.add_sample(entry["lag_versions"], labels)
            if entry.get("requests_total") is not None:
                requests.add_sample(entry["requests_total"], labels)
        families.extend([up, version, lag, requests])
        families.append(
            MetricFamily(
                "repro_cluster_nodes_ok",
                "gauge",
                "Nodes that answered the stats fan-out",
            ).add_sample(doc["aggregate"]["nodes_ok"])
        )
        if merged:
            fam = MetricFamily(
                "repro_cluster_request_seconds",
                "histogram",
                "Cluster-wide request latency (merged across nodes), by op",
            )
            for op, hist in sorted(merged.items()):
                fam.add_histogram(hist, {"op": op})
            families.append(fam)
        return families

    def stop(self):
        if self._telemetry is not None:
            self._telemetry.stop()
            self._telemetry = None
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
