"""Directed labeled multigraphs (Definition 2.1 of the paper).

A graph is the septuple ``(N, E, L_N, L_E, iota, nu, epsilon)``: finite node
and edge sets, label sets, an incidence function assigning each edge a source
and target node, and node/edge labeling functions.  This module keeps the
definition's shape (explicit edge identities, so parallel edges with the same
label coexist) while also maintaining adjacency indexes for fast traversal.

For *database graphs* (Section 2): nodes are tuples of domain values, and an
edge label is a pair ``(predicate, extra_args)`` so that a tuple
``P(a₁..aᵢ, b₁..bⱼ, c₁..cₖ)`` becomes an edge from node ``(a₁..aᵢ)`` to node
``(b₁..bⱼ)`` labeled ``P(c₁..cₖ)``.  The :mod:`repro.graphs.bridge` module
performs that encoding.
"""

from __future__ import annotations

import itertools
from collections import defaultdict


class Edge:
    """An edge identity with source, target, and label."""

    __slots__ = ("key", "source", "target", "label")

    def __init__(self, key, source, target, label):
        self.key = key
        self.source = source
        self.target = target
        self.label = label

    def __repr__(self):
        return f"Edge({self.source!r} -[{self.label!r}]-> {self.target!r})"

    def __eq__(self, other):
        return isinstance(other, Edge) and self.key == other.key

    def __hash__(self):
        return hash(self.key)

    def as_tuple(self):
        return (self.source, self.target, self.label)


class LabeledMultigraph:
    """A directed labeled multigraph with adjacency indexes.

    Nodes are arbitrary hashable values; each node may carry a label
    (``nu``).  Edges have identities (auto-assigned integer keys), so two
    edges with identical endpoints and label are distinct objects, exactly as
    in Definition 2.1.
    """

    def __init__(self):
        self._node_labels = {}  # node -> label (may be None)
        self._edges = {}  # key -> Edge
        self._out = defaultdict(list)  # node -> [Edge]
        self._in = defaultdict(list)  # node -> [Edge]
        self._by_label = defaultdict(list)  # label -> [Edge]
        self._key_counter = itertools.count()
        #: Bumped on every structural mutation; derived structures (the RPQ
        #: CSR adjacency index) key their caches on this counter.
        self._version = 0

    @property
    def version(self):
        """Monotone mutation counter; equal versions imply equal structure."""
        return self._version

    # -------------------------------------------------------------- nodes

    @property
    def nodes(self):
        return self._node_labels.keys()

    def node_count(self):
        return len(self._node_labels)

    def has_node(self, node):
        return node in self._node_labels

    def add_node(self, node, label=None):
        """Add a node (idempotent); a non-None label overwrites."""
        if node not in self._node_labels or label is not None:
            self._node_labels[node] = label
            self._version += 1
        return node

    def node_label(self, node):
        return self._node_labels[node]

    def set_node_label(self, node, label):
        if node not in self._node_labels:
            raise KeyError(node)
        self._node_labels[node] = label
        self._version += 1

    # -------------------------------------------------------------- edges

    @property
    def edges(self):
        return self._edges.values()

    def edge_count(self):
        return len(self._edges)

    def add_edge(self, source, target, label):
        """Insert a new edge (always a distinct identity); returns it."""
        self.add_node(source)
        self.add_node(target)
        edge = Edge(next(self._key_counter), source, target, label)
        self._edges[edge.key] = edge
        self._out[source].append(edge)
        self._in[target].append(edge)
        self._by_label[label].append(edge)
        self._version += 1
        return edge

    def remove_edge(self, edge):
        if edge.key not in self._edges:
            raise KeyError(edge)
        del self._edges[edge.key]
        self._out[edge.source].remove(edge)
        self._in[edge.target].remove(edge)
        self._by_label[edge.label].remove(edge)
        self._version += 1

    def remove_node(self, node):
        """Remove a node and every incident edge."""
        if node not in self._node_labels:
            raise KeyError(node)
        for edge in list(self._out[node]) + list(self._in[node]):
            if edge.key in self._edges:
                self.remove_edge(edge)
        del self._node_labels[node]
        self._out.pop(node, None)
        self._in.pop(node, None)
        self._version += 1

    def out_edges(self, node):
        return list(self._out.get(node, ()))

    def in_edges(self, node):
        return list(self._in.get(node, ()))

    def successors(self, node):
        return {edge.target for edge in self._out.get(node, ())}

    def predecessors(self, node):
        return {edge.source for edge in self._in.get(node, ())}

    def edges_with_label(self, label):
        return list(self._by_label.get(label, ()))

    def labels(self):
        """Edge labels actually in use."""
        return {label for label, edges in self._by_label.items() if edges}

    def label_counts(self):
        """``{label: edge count}`` for labels actually in use — the store's
        per-predicate fact cardinalities, read off the label index."""
        return {label: len(edges) for label, edges in self._by_label.items() if edges}

    def has_edge(self, source, target, label=None):
        for edge in self._out.get(source, ()):
            if edge.target == target and (label is None or edge.label == label):
                return True
        return False

    def edge_triples(self):
        """The set of ``(source, target, label)`` triples (identities dropped)."""
        return {edge.as_tuple() for edge in self._edges.values()}

    # ------------------------------------------------------------ utility

    def isolated_nodes(self):
        """Nodes with no incident edge (forbidden in query graphs, Def 2.3)."""
        return {
            node
            for node in self._node_labels
            if not self._out.get(node) and not self._in.get(node)
        }

    def subgraph(self, nodes):
        """The induced subgraph on *nodes* (labels preserved)."""
        nodes = set(nodes)
        sub = LabeledMultigraph()
        for node in nodes:
            if node in self._node_labels:
                sub.add_node(node, self._node_labels[node])
        for edge in self._edges.values():
            if edge.source in nodes and edge.target in nodes:
                sub.add_edge(edge.source, edge.target, edge.label)
        return sub

    def copy(self):
        clone = LabeledMultigraph()
        for node, label in self._node_labels.items():
            clone.add_node(node, label)
        for edge in self._edges.values():
            clone.add_edge(edge.source, edge.target, edge.label)
        return clone

    def reverse(self):
        """A new graph with every edge direction flipped."""
        rev = LabeledMultigraph()
        for node, label in self._node_labels.items():
            rev.add_node(node, label)
        for edge in self._edges.values():
            rev.add_edge(edge.target, edge.source, edge.label)
        return rev

    def adjacency(self, label=None):
        """``{node: set of successors}`` restricted to *label* when given."""
        adjacency = {node: set() for node in self._node_labels}
        for edge in self._edges.values():
            if label is None or edge.label == label:
                adjacency[edge.source].add(edge.target)
        return adjacency

    def __eq__(self, other):
        if not isinstance(other, LabeledMultigraph):
            return NotImplemented
        return (
            dict(self._node_labels) == dict(other._node_labels)
            and sorted(map(_edge_sort_key, self.edge_triples()))
            == sorted(map(_edge_sort_key, other.edge_triples()))
        )

    def __repr__(self):
        return f"LabeledMultigraph({self.node_count()} nodes, {self.edge_count()} edges)"


def _edge_sort_key(triple):
    return tuple(str(part) for part in triple)
