"""Graph data model: labeled multigraphs, relational bridge, algorithms."""

from repro.graphs.algorithms import (
    condensation,
    is_acyclic,
    reachable_from,
    shortest_path_lengths,
    strongly_connected_components,
    topological_sort,
)
from repro.graphs.bridge import (
    EdgeLabel,
    GraphSchema,
    PredicateShape,
    database_from_graph,
    graph_from_database,
    node_relation,
)
from repro.graphs.closure import (
    closure_methods,
    reflexive_transitive_closure,
    transitive_closure,
    transitive_closure_naive,
    transitive_closure_seminaive,
    transitive_closure_squaring,
    transitive_closure_warshall,
)
from repro.graphs.multigraph import Edge, LabeledMultigraph

__all__ = [
    "Edge",
    "EdgeLabel",
    "GraphSchema",
    "LabeledMultigraph",
    "PredicateShape",
    "closure_methods",
    "condensation",
    "database_from_graph",
    "graph_from_database",
    "is_acyclic",
    "node_relation",
    "reachable_from",
    "reflexive_transitive_closure",
    "shortest_path_lengths",
    "strongly_connected_components",
    "topological_sort",
    "transitive_closure",
    "transitive_closure_naive",
    "transitive_closure_seminaive",
    "transitive_closure_squaring",
    "transitive_closure_warshall",
]
