"""Relational database <-> graph encoding (Section 2 of the paper).

The paper's mapping: a tuple ``P(a₁..aᵢ, b₁..bⱼ, c₁..cₖ)`` is an edge from
node ``(a₁..aᵢ)`` to node ``(b₁..bⱼ)`` labeled ``P(c₁..cₖ)``.  A
:class:`GraphSchema` records, per predicate, the split ``(i, j, k)``;
the default treats binary predicates as plain ``1/1/0`` edges and unary
predicates as node annotations (as in Figure 1, where ``capital`` marks
city nodes).
"""

from __future__ import annotations

from repro.datalog.database import Database
from repro.graphs.multigraph import LabeledMultigraph


class PredicateShape:
    """How one predicate's columns split into source/target/label parts."""

    __slots__ = ("source_arity", "target_arity", "label_arity")

    def __init__(self, source_arity, target_arity, label_arity=0):
        if source_arity < 0 or target_arity < 0 or label_arity < 0:
            raise ValueError("arities must be non-negative")
        self.source_arity = source_arity
        self.target_arity = target_arity
        self.label_arity = label_arity

    @property
    def total_arity(self):
        return self.source_arity + self.target_arity + self.label_arity

    def split(self, row):
        i, j = self.source_arity, self.target_arity
        source = tuple(row[:i])
        target = tuple(row[i : i + j])
        extra = tuple(row[i + j :])
        return source, target, extra

    def join(self, source, target, extra=()):
        return tuple(source) + tuple(target) + tuple(extra)

    def __repr__(self):
        return f"PredicateShape({self.source_arity}/{self.target_arity}/{self.label_arity})"

    def __eq__(self, other):
        return isinstance(other, PredicateShape) and (
            (self.source_arity, self.target_arity, self.label_arity)
            == (other.source_arity, other.target_arity, other.label_arity)
        )


class GraphSchema:
    """Per-predicate shapes, with paper-faithful defaults.

    Defaults: arity 2 -> ``1/1/0`` edge; arity 1 -> node annotation
    (``1/0/0``); arity n>2 -> ``1/1/(n-2)`` (the first two columns are the
    endpoints, the rest label the edge, as in the ``flight(21:45,23:15)``
    example of Section 2).
    """

    def __init__(self, shapes=None):
        self._shapes = dict(shapes or {})

    def declare(self, predicate, source_arity, target_arity, label_arity=0):
        self._shapes[predicate] = PredicateShape(source_arity, target_arity, label_arity)
        return self

    def shape_for(self, predicate, arity):
        shape = self._shapes.get(predicate)
        if shape is not None:
            if shape.total_arity != arity:
                raise ValueError(
                    f"schema shape for {predicate!r} covers {shape.total_arity} columns, "
                    f"relation has arity {arity}"
                )
            return shape
        if arity == 1:
            return PredicateShape(1, 0, 0)
        if arity == 2:
            return PredicateShape(1, 1, 0)
        return PredicateShape(1, 1, arity - 2)

    def is_node_annotation(self, predicate, arity):
        return self.shape_for(predicate, arity).target_arity == 0

    def __contains__(self, predicate):
        return predicate in self._shapes


class EdgeLabel:
    """A graph edge label: predicate name plus extra label arguments."""

    __slots__ = ("predicate", "extra")

    def __init__(self, predicate, extra=()):
        self.predicate = predicate
        self.extra = tuple(extra)

    def __eq__(self, other):
        return isinstance(other, EdgeLabel) and (
            (self.predicate, self.extra) == (other.predicate, other.extra)
        )

    def __hash__(self):
        return hash((self.predicate, self.extra))

    def __repr__(self):
        return f"EdgeLabel({self})"

    def __str__(self):
        if not self.extra:
            return self.predicate
        args = ",".join(str(value) for value in self.extra)
        return f"{self.predicate}({args})"


def _unwrap_node(node):
    """Single-value nodes are stored unwrapped for readability."""
    return node[0] if len(node) == 1 else node


def _wrap_node(node):
    return node if isinstance(node, tuple) else (node,)


def graph_from_database(database, schema=None, predicates=None):
    """Encode *database* as a labeled multigraph.

    Node-annotation predicates (e.g. unary ``capital``) become node labels:
    the node's label is the frozenset of annotation predicate names that hold
    for it.  Every other predicate contributes edges with
    :class:`EdgeLabel` labels.
    """
    schema = schema or GraphSchema()
    graph = LabeledMultigraph()
    annotations = {}
    chosen = predicates if predicates is not None else sorted(database.predicates)
    for predicate in chosen:
        relation = database.relation(predicate)
        shape = schema.shape_for(predicate, relation.arity)
        for row in relation:
            source, target, extra = shape.split(row)
            if shape.target_arity == 0:
                node = _unwrap_node(source)
                graph.add_node(node)
                annotations.setdefault(node, set()).add(predicate)
            else:
                graph.add_edge(
                    _unwrap_node(source),
                    _unwrap_node(target),
                    EdgeLabel(predicate, extra),
                )
    for node, names in annotations.items():
        graph.set_node_label(node, frozenset(names))
    return graph


def database_from_graph(graph, schema=None):
    """Decode a labeled multigraph back into a relational database.

    Inverse of :func:`graph_from_database` for graphs it produced: edges with
    :class:`EdgeLabel` labels become tuples; node labels become unary facts —
    one per name for set-valued labels, a single fact for scalar labels (a
    string label is one annotation name, not a sequence of characters).
    """
    schema = schema or GraphSchema()
    database = Database()
    for edge in graph.edges:
        label = edge.label
        if not isinstance(label, EdgeLabel):
            label = EdgeLabel(str(label))
        source = _wrap_node(edge.source)
        target = _wrap_node(edge.target)
        row = source + target + label.extra
        database.add_fact(label.predicate, *row)
    for node in graph.nodes:
        label = graph.node_label(node)
        if not label:
            continue
        names = label if isinstance(label, (set, frozenset)) else (label,)
        for name in names:
            database.add_fact(str(name), *_wrap_node(node))
    return database


def node_relation(database, name="node"):
    """Add a unary *name* relation holding every active-domain value.

    GraphLog's Kleene star and optional operators expand to an equality
    alternative (Section 2); translating that safely needs a domain
    predicate, which this helper materializes.
    """
    values = database.active_domain()
    database.add_facts(name, [(value,) for value in values])
    return database
