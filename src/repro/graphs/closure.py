"""Transitive-closure kernels.

The paper argues (Section 6) that GraphLog implementations "can benefit from
the existing work on transitive closure computation"; this module provides
four interchangeable kernels over a set of pairs, used by the engine and
compared in the ``abl2`` ablation benchmark:

- ``naive``: iterate ``T = T ∪ T∘E`` from scratch each round;
- ``seminaive``: delta iteration (only new pairs are re-joined);
- ``warshall``: Floyd–Warshall boolean closure over the node set;
- ``squaring``: logarithmic rounds of ``T = T ∪ T∘T`` ("smart" closure).

All return the transitive (not reflexive) closure as a set of pairs.
"""

from __future__ import annotations

from collections import defaultdict


def _successor_map(pairs):
    successors = defaultdict(set)
    for source, target in pairs:
        successors[source].add(target)
    return successors


def transitive_closure_naive(pairs):
    closure = set(pairs)
    base = _successor_map(pairs)
    changed = True
    while changed:
        changed = False
        additions = set()
        for source, target in closure:
            for nxt in base.get(target, ()):
                candidate = (source, nxt)
                if candidate not in closure:
                    additions.add(candidate)
        if additions:
            closure |= additions
            changed = True
    return closure


def transitive_closure_seminaive(pairs):
    closure = set(pairs)
    base = _successor_map(pairs)
    delta = set(pairs)
    while delta:
        new_delta = set()
        for source, target in delta:
            for nxt in base.get(target, ()):
                candidate = (source, nxt)
                if candidate not in closure:
                    closure.add(candidate)
                    new_delta.add(candidate)
        delta = new_delta
    return closure


def transitive_closure_warshall(pairs):
    nodes = set()
    for source, target in pairs:
        nodes.add(source)
        nodes.add(target)
    successors = {node: set() for node in nodes}
    for source, target in pairs:
        successors[source].add(target)
    for middle in nodes:
        middle_successors = successors[middle]
        if not middle_successors:
            continue
        for node in nodes:
            if middle in successors[node]:
                successors[node] |= middle_successors
    return {(s, t) for s, targets in successors.items() for t in targets}


def transitive_closure_squaring(pairs):
    closure = set(pairs)
    while True:
        successors = _successor_map(closure)
        additions = set()
        for source, target in closure:
            for nxt in successors.get(target, ()):
                candidate = (source, nxt)
                if candidate not in closure:
                    additions.add(candidate)
        if not additions:
            return closure
        closure |= additions


_METHODS = {
    "naive": transitive_closure_naive,
    "seminaive": transitive_closure_seminaive,
    "warshall": transitive_closure_warshall,
    "squaring": transitive_closure_squaring,
}


def transitive_closure(pairs, method="seminaive"):
    """Dispatch to one of the closure kernels by name."""
    try:
        kernel = _METHODS[method]
    except KeyError:
        raise ValueError(f"unknown closure method {method!r}") from None
    return kernel(pairs)


def closure_methods():
    """Names of the available kernels (for benchmarks)."""
    return tuple(_METHODS)


def reflexive_transitive_closure(pairs, nodes=(), method="seminaive"):
    """Kleene-star closure: the transitive closure plus ``(n, n)`` for every
    node in *nodes* and every endpoint of *pairs*."""
    closure = transitive_closure(pairs, method=method)
    all_nodes = set(nodes)
    for source, target in pairs:
        all_nodes.add(source)
        all_nodes.add(target)
    closure |= {(node, node) for node in all_nodes}
    return closure
