"""Classic graph algorithms over adjacency mappings.

All functions operate on plain ``{node: set(successors)}`` adjacency dicts
(as produced by :meth:`LabeledMultigraph.adjacency`) so they are reusable by
the Datalog stratifier, Algorithm 3.1, and the closure kernels without
conversion overhead.
"""

from __future__ import annotations

from collections import deque


def _nodes_of(adjacency):
    nodes = set(adjacency)
    for successors in adjacency.values():
        nodes |= set(successors)
    return nodes


def strongly_connected_components(adjacency):
    """Tarjan's algorithm, iterative.

    Returns a list of frozensets in reverse topological order (a component
    appears before any component that points to it).
    """
    nodes = _nodes_of(adjacency)
    index_of = {}
    lowlink = {}
    on_stack = set()
    stack = []
    components = []
    counter = 0

    for root in sorted(nodes, key=str):
        if root in index_of:
            continue
        work = [(root, iter(sorted(adjacency.get(root, ()), key=str)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(sorted(adjacency.get(successor, ()), key=str)))
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))
    return components


def condensation(adjacency):
    """The DAG of SCCs: returns ``(components, component_adjacency)`` where
    components is the Tarjan list and component_adjacency maps component
    index -> set of component indexes it points to."""
    components = strongly_connected_components(adjacency)
    index_of = {}
    for i, component in enumerate(components):
        for node in component:
            index_of[node] = i
    component_adjacency = {i: set() for i in range(len(components))}
    for source, successors in adjacency.items():
        for target in successors:
            si, ti = index_of[source], index_of[target]
            if si != ti:
                component_adjacency[si].add(ti)
    return components, component_adjacency


def topological_sort(adjacency):
    """Kahn's algorithm; raises ValueError on a cycle."""
    nodes = _nodes_of(adjacency)
    indegree = {node: 0 for node in nodes}
    for successors in adjacency.values():
        for target in successors:
            indegree[target] += 1
    queue = deque(sorted((n for n in nodes if indegree[n] == 0), key=str))
    order = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for target in sorted(adjacency.get(node, ()), key=str):
            indegree[target] -= 1
            if indegree[target] == 0:
                queue.append(target)
    if len(order) != len(nodes):
        raise ValueError("graph has a cycle; no topological order exists")
    return order


def is_acyclic(adjacency):
    try:
        topological_sort(adjacency)
    except ValueError:
        return False
    return True


def reachable_from(adjacency, start):
    """BFS set of nodes reachable from *start* (excluding start unless on a
    cycle back to itself)."""
    seen = set()
    queue = deque(adjacency.get(start, ()))
    while queue:
        node = queue.popleft()
        if node in seen:
            continue
        seen.add(node)
        queue.extend(adjacency.get(node, ()))
    return seen


def shortest_path_lengths(adjacency, start):
    """BFS hop counts from *start*: ``{node: hops}`` (start included at 0)."""
    distances = {start: 0}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for target in adjacency.get(node, ()):
            if target not in distances:
                distances[target] = distances[node] + 1
                queue.append(target)
    return distances
