"""Distributed trace context: the identity a request carries across nodes.

A :class:`TraceContext` is three fields — ``trace_id`` (one id for the
whole cross-node request), ``parent_span_id`` (the sender-side span the
receiver's work nests under), and ``sampled`` (the head-based sampling
decision, made once at the edge and honored everywhere downstream).  It
travels in the optional ``trace`` field of the wire request envelope::

    {"id": 7, "op": "datalog", "query": "...",
     "trace": {"trace_id": "a3f1b2-000017", "parent_span_id": "c91d40-s00003",
               "sampled": true}}

Propagation rules (the matrix lives in docs/OBSERVABILITY.md):

- a server that receives a context **adopts** it — the trace id becomes the
  request's correlation id instead of a freshly minted one, and the local
  span tree links under ``parent_span_id``;
- the router injects a context on every forwarded call (minting one at the
  edge when the client sent none), re-stamping ``parent_span_id`` with its
  own per-attempt forward span so failover probes are visible hops;
- a replica stamps its ``repl_tail``/``repl_bootstrap`` polls, so primary-
  side tail-serving spans link back to the replica's apply loop;
- subscription ``delta`` frames carry the trace id of the commit that
  produced them.

Cost model mirrors :mod:`repro.obs.trace`: ids are a process-random prefix
plus a counter (no ``uuid4`` on the hot path), the ambient context is one
:mod:`contextvars` variable, and an unsampled request pays one contextvar
read plus one counter tick in :meth:`RateSampler.sample`.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import os

from repro.errors import ProtocolError

# Span ids share the request-id discipline: one short random prefix per
# process (so ids minted on different nodes never collide in an assembled
# trace) plus a counter costing one integer increment per span.
_SPAN_PREFIX = os.urandom(3).hex()
_SPAN_COUNTER = itertools.count(1)


def new_span_id():
    """A fresh process-unique span id, e.g. ``"4be2d1-s00017"``."""
    return f"{_SPAN_PREFIX}-s{next(_SPAN_COUNTER):05d}"


def new_trace_id():
    """A fresh trace id for a locally-originated trace.

    Delegates to :func:`repro.obs.logs.new_request_id` so a trace minted at
    this node carries the node's id prefix — one grep finds both the trace
    and the log lines it produced.
    """
    from repro.obs import logs

    return logs.new_request_id()


class TraceContext:
    """The compact wire-portable identity of one distributed request."""

    __slots__ = ("trace_id", "parent_span_id", "sampled")

    def __init__(self, trace_id, parent_span_id=None, sampled=False):
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.sampled = sampled

    def child(self, parent_span_id):
        """The context to hand the next hop: same trace id and sampling
        decision, re-parented under the caller's *parent_span_id*."""
        return TraceContext(self.trace_id, parent_span_id, self.sampled)

    def to_wire(self):
        doc = {"trace_id": self.trace_id, "sampled": self.sampled}
        if self.parent_span_id is not None:
            doc["parent_span_id"] = self.parent_span_id
        return doc

    @classmethod
    def from_wire(cls, doc):
        """Parse a ``trace`` envelope field; raises :class:`ProtocolError`
        on anything malformed (the sender's bug, not ours)."""
        if not isinstance(doc, dict):
            raise ProtocolError(
                f"'trace' must be an object, got {type(doc).__name__}"
            )
        trace_id = doc.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise ProtocolError(
                f"'trace.trace_id' must be a non-empty string, got {trace_id!r}"
            )
        parent = doc.get("parent_span_id")
        if parent is not None and (not isinstance(parent, str) or not parent):
            raise ProtocolError(
                f"'trace.parent_span_id' must be a non-empty string, got {parent!r}"
            )
        sampled = doc.get("sampled", False)
        if not isinstance(sampled, bool):
            raise ProtocolError(
                f"'trace.sampled' must be a boolean, got {sampled!r}"
            )
        return cls(trace_id, parent, sampled)

    def __repr__(self):
        return (
            f"TraceContext({self.trace_id!r}, parent={self.parent_span_id!r}, "
            f"sampled={self.sampled})"
        )


_CURRENT = contextvars.ContextVar("repro.obs.trace_context", default=None)


def current():
    """The ambient trace context, or ``None`` outside any traced request."""
    return _CURRENT.get()


def set_current(ctx):
    """Bind *ctx* as the ambient context; returns a token for reset."""
    return _CURRENT.set(ctx)


def reset_current(token):
    _CURRENT.reset(token)


@contextlib.contextmanager
def start(trace_id=None, parent_span_id=None, sampled=True):
    """Run a block under a (fresh by default) ambient trace context.

    The service client injects the ambient context into every outgoing
    request, so ``with context.start(): client.datalog(...)`` is all a
    caller needs to originate a cross-node trace.
    """
    ctx = TraceContext(
        trace_id if trace_id is not None else new_trace_id(),
        parent_span_id,
        sampled,
    )
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


class RateSampler:
    """Deterministic head-based sampler: every ``1/rate``-th call samples.

    Deterministic (a counter, not an RNG) for two reasons: the unsampled
    path costs one atomic counter tick and one modulo, and tests get exact
    sampled counts instead of binomial noise.  ``rate <= 0`` never samples
    (and short-circuits before the counter); ``rate >= 1`` always does.
    """

    __slots__ = ("rate", "_period", "_counter")

    def __init__(self, rate=0.0):
        rate = float(rate)
        if rate < 0.0 or rate > 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._period = 0 if rate <= 0.0 else max(1, round(1.0 / rate))
        self._counter = itertools.count(1)

    @property
    def enabled(self):
        return self._period > 0

    def sample(self):
        """The head-based decision for one request."""
        period = self._period
        if not period:
            return False
        if period == 1:
            return True
        return next(self._counter) % period == 0

    def __repr__(self):
        return f"RateSampler(rate={self.rate})"
