"""Cross-node trace assembly: flat span lists → one renderable tree.

``repro trace <trace_id>`` collects flattened span lists from every node
that saw the trace (router, primary, replicas — each tagged with its
``node_id``) and this module stitches them back into a single tree using
the ``parent_span_id`` links.  A span whose parent is missing from the
merged set (evicted ring, unsampled hop) becomes a root rather than being
dropped, so partial traces still render.

The ASCII rendering shows per-hop attribution: every line carries the
owning node's id, its duration, and its attrs, with siblings ordered by
wall-clock start time so the tree reads as a timeline.
"""

from __future__ import annotations


def assemble(spans):
    """Build a forest from flat span dicts; returns the list of roots.

    Each returned node is a dict ``{"span": <original span dict>,
    "children": [...]}`` — the input dicts are not mutated.  Roots are
    spans whose ``parent_span_id`` is ``None`` or absent from the merged
    set; children are sorted by ``start_ts`` (unknown starts last),
    roots likewise.
    """
    by_id = {}
    nodes = []
    for span in spans:
        node = {"span": span, "children": []}
        nodes.append(node)
        span_id = span.get("span_id")
        if span_id is not None and span_id not in by_id:
            by_id[span_id] = node

    roots = []
    for node in nodes:
        parent_id = node["span"].get("parent_span_id")
        parent = by_id.get(parent_id) if parent_id is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)

    def start_key(node):
        ts = node["span"].get("start_ts")
        return (ts is None, ts if ts is not None else 0.0)

    def sort_children(node):
        node["children"].sort(key=start_key)
        for child in node["children"]:
            sort_children(child)

    roots.sort(key=start_key)
    for root in roots:
        sort_children(root)
    return roots


def _span_line(span, max_attr_len=100):
    node = span.get("node_id") or "?"
    elapsed = span.get("elapsed_ms")
    elapsed_text = "?" if elapsed is None else f"{elapsed:.3f}ms"
    attrs = span.get("attrs") or {}
    parts = []
    for key, value in attrs.items():
        text = f"{key}={value!r}" if isinstance(value, str) else f"{key}={value}"
        if len(text) > max_attr_len:
            text = text[: max_attr_len - 1] + "…"
        parts.append(text)
    attr_text = (" " + " ".join(parts)) if parts else ""
    return f"[{node}] {span.get('name', '?')} ({elapsed_text}){attr_text}"


def render(roots, max_attr_len=100):
    """The assembled forest as an ASCII tree, one span per line."""
    lines = []

    def walk(node, prefix, branch):
        lines.append(f"{prefix}{branch}{_span_line(node['span'], max_attr_len)}")
        if branch == "":
            child_prefix = prefix
        else:
            child_prefix = prefix + ("    " if branch.startswith("└") else "│   ")
        children = node["children"]
        for i, child in enumerate(children):
            last = i == len(children) - 1
            walk(child, child_prefix, "└── " if last else "├── ")

    for root in roots:
        walk(root, "", "")
    return "\n".join(lines)


def render_trace(trace_id, spans, max_attr_len=100):
    """One-call convenience: header + assembled ASCII tree + hop summary."""
    roots = assemble(spans)
    nodes = sorted({s.get("node_id") for s in spans if s.get("node_id")})
    lines = [
        f"trace {trace_id} — {len(spans)} spans across "
        f"{len(nodes)} node(s): {', '.join(nodes) if nodes else '-'}",
        "",
    ]
    lines.append(render(roots, max_attr_len))
    return "\n".join(lines) + "\n"
