"""Bounded JSONL span export — the durable tail of the tracing pipeline.

Sampled request traces (and always, slow ones) are appended to a JSON-lines
file, one line per *trace* (the flattened span list plus identity fields),
so an external collector can tail the file without parsing nested trees.
Like the slow-query log's file option the writer never throws into the
request path: an export failure increments a counter and drops the line.

Unlike the slowlog the sink is **bounded**: when the file exceeds
``max_bytes`` it is rotated to ``<path>.1`` (one generation, the previous
``.1`` is overwritten), so a high sample rate cannot fill the disk.  The
counters (``exported`` / ``export_errors`` / ``rotations``) surface in
``stats`` and as ``repro_trace_*`` series on ``/metrics``.
"""

from __future__ import annotations

import json
import os
import threading

DEFAULT_MAX_BYTES = 16 * 1024 * 1024


class SpanSink:
    """Thread-safe rotating JSONL writer for exported traces."""

    def __init__(self, path, max_bytes=DEFAULT_MAX_BYTES):
        if max_bytes < 4096:
            raise ValueError(f"span sink max_bytes must be >= 4096, got {max_bytes}")
        self.path = path
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.exported = 0
        self.export_errors = 0
        self.rotations = 0
        # Tracked size avoids a stat() per export; resynced on rotation.
        self._size = self._current_size()

    def _current_size(self):
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def export(self, record):
        """Append one trace *record* (a JSON-ready dict); never raises."""
        try:
            line = json.dumps(record, default=str) + "\n"
        except (TypeError, ValueError):
            with self._lock:
                self.export_errors += 1
            return False
        data = line.encode("utf-8")
        with self._lock:
            try:
                if self._size + len(data) > self.max_bytes and self._size > 0:
                    os.replace(self.path, self.path + ".1")
                    self.rotations += 1
                    self._size = 0
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line)
                self._size += len(data)
                self.exported += 1
                return True
            except OSError:
                self.export_errors += 1
                return False

    def stats(self):
        with self._lock:
            return {
                "path": self.path,
                "max_bytes": self.max_bytes,
                "bytes": self._size,
                "exported": self.exported,
                "export_errors": self.export_errors,
                "rotations": self.rotations,
            }
