"""Telemetry HTTP endpoint: ``/metrics`` (Prometheus) and ``/healthz``.

A tiny stdlib :class:`http.server.ThreadingHTTPServer` running on a daemon
thread beside the query service.  It is read-only and unauthenticated by
design — bind it to localhost or a scrape-only interface.

- ``GET /metrics`` — the registry rendered as text exposition format 0.0.4.
- ``GET /healthz`` — JSON health document; HTTP 200 when ``status`` is
  ``"ok"``, 503 when degraded (durability closed, recovery truncated the
  WAL tail, or the render callback itself raised).
- anything else — 404.
"""

from __future__ import annotations

import http.server
import json
import logging
import threading

from .metrics import CONTENT_TYPE

logger = logging.getLogger(__name__)


class TelemetryHTTPServer:
    """Serve metrics/health on a side thread; ``start()``/``stop()``."""

    def __init__(self, render_metrics, health, host="127.0.0.1", port=0):
        self._render_metrics = render_metrics
        self._health = health
        self.host = host
        self.port = port
        self._httpd = None
        self._thread = None

    def start(self):
        outer = self

        class Handler(http.server.BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    self._serve_metrics()
                elif path == "/healthz":
                    self._serve_health()
                else:
                    self._send(404, "text/plain; charset=utf-8", b"not found\n")

            def _serve_metrics(self):
                try:
                    body = outer._render_metrics().encode("utf-8")
                except Exception:
                    logger.exception("metrics render failed")
                    self._send(500, "text/plain; charset=utf-8", b"render error\n")
                    return
                self._send(200, CONTENT_TYPE, body)

            def _serve_health(self):
                try:
                    doc = outer._health()
                    status = 200 if doc.get("status") == "ok" else 503
                except Exception as exc:
                    logger.exception("health check failed")
                    doc = {"status": "error", "error": str(exc)}
                    status = 503
                body = (json.dumps(doc, default=str) + "\n").encode("utf-8")
                self._send(status, "application/json", body)

            def _send(self, status, content_type, body):
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args):
                logger.debug("telemetry http: " + fmt, *args)

        self._httpd = http.server.ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry-http",
            daemon=True,
        )
        self._thread.start()
        logger.info("telemetry endpoint listening on %s:%d", self.host, self.port)
        return self

    def stop(self):
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
