"""Bounded slow-query log with optional JSONL persistence.

Requests whose wall-clock time exceeds a configurable threshold have their
full span tree (when tracing captured one) recorded into a thread-safe
bounded ring, and optionally appended as one JSON object per line to a
file for offline analysis.  The service surfaces the ring through the
``slowlog`` wire op; the shell has a local ``slowlog`` command.

A threshold of ``None`` (or a negative value) disables recording entirely;
``0.0`` records every request, which is what the tests use.
"""

from __future__ import annotations

import collections
import json
import logging
import threading
import time

logger = logging.getLogger(__name__)


class SlowQueryLog:
    """Thread-safe bounded ring of slow-request records.

    Each record is a plain dict; the service supplies ``request_id``, op,
    elapsed/threshold milliseconds, store version, cache disposition, and
    the captured span tree (``trace`` key, :meth:`TraceSpan.to_dict` shape).
    """

    def __init__(self, threshold_ms=None, capacity=128, path=None):
        if capacity < 1:
            raise ValueError("slowlog capacity must be >= 1")
        self.threshold_ms = threshold_ms
        self.capacity = capacity
        self.path = path
        self._lock = threading.Lock()
        self._ring = collections.deque(maxlen=capacity)
        self._recorded = 0
        self._dropped_writes = 0

    @property
    def enabled(self):
        return self.threshold_ms is not None and self.threshold_ms >= 0

    def should_record(self, elapsed_ms):
        return self.enabled and elapsed_ms >= self.threshold_ms

    def record(self, entry):
        """Append *entry* (a dict) to the ring and the JSONL file, if any."""
        entry = dict(entry)
        entry.setdefault("ts", time.time())
        with self._lock:
            self._ring.append(entry)
            self._recorded += 1
        if self.path is not None:
            try:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps(entry, default=str) + "\n")
            except OSError:
                with self._lock:
                    self._dropped_writes += 1
                logger.warning("slowlog: failed to append to %s", self.path)
        return entry

    def snapshot(self, limit=None):
        """Most-recent-first list of records (up to *limit*)."""
        with self._lock:
            entries = list(self._ring)
        entries.reverse()
        if limit is not None:
            entries = entries[: max(0, int(limit))]
        return entries

    def clear(self):
        with self._lock:
            self._ring.clear()

    def stats(self):
        with self._lock:
            return {
                "enabled": self.enabled,
                "threshold_ms": self.threshold_ms,
                "capacity": self.capacity,
                "size": len(self._ring),
                "recorded": self._recorded,
                "dropped_writes": self._dropped_writes,
                "path": self.path,
            }
