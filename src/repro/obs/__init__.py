"""``repro.obs`` — observability: span tracing and the explain subsystem.

The pipeline (parse → λ-translation → stratify → magic/optimize → engine →
DRed maintenance → service request handling) is instrumented with ambient
spans; :func:`tracing` turns collection on for a ``with`` body and the
disabled path is a module-level no-op (see :mod:`repro.obs.trace`).
"""

from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    TraceRing,
    TraceSpan,
    Tracer,
    span,
    tracer,
    tracing,
)

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "TraceRing",
    "TraceSpan",
    "Tracer",
    "span",
    "tracer",
    "tracing",
]
