"""``repro.obs`` — observability: tracing, metrics, logs, slow-query log.

The pipeline (parse → λ-translation → stratify → magic/optimize → engine →
DRed maintenance → service request handling) is instrumented with ambient
spans; :func:`tracing` turns collection on for a ``with`` body and the
disabled path is a module-level no-op (see :mod:`repro.obs.trace`).

Beyond spans, the package provides:

- :mod:`repro.obs.context` — the distributed trace context (``trace_id``,
  ``parent_span_id``, sampled flag) carried across wire hops, plus the
  head-based :class:`RateSampler`;
- :mod:`repro.obs.assemble` — cross-node trace assembly and rendering;
- :mod:`repro.obs.nodeid` — stable per-node identity for aggregated logs;
- :mod:`repro.obs.spansink` — the bounded rotating JSONL span exporter;
- :mod:`repro.obs.metrics` — typed counter/gauge/histogram registry with
  mergeable fixed-bucket histograms and Prometheus text exposition;
- :mod:`repro.obs.export` — the ``/metrics`` + ``/healthz`` HTTP endpoint;
- :mod:`repro.obs.logs` — structured JSON logging and the per-request
  correlation-ID contextvar;
- :mod:`repro.obs.slowlog` — the bounded slow-query log.
"""

from repro.obs import assemble, context, nodeid
from repro.obs.context import RateSampler, TraceContext, new_span_id, new_trace_id
from repro.obs.logs import (
    JsonLogFormatter,
    RequestIdFilter,
    configure_logging,
    get_node_id,
    get_request_id,
    new_request_id,
    request_context,
    reset_request_id,
    set_node_prefix,
    set_request_id,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    HistogramMergeError,
    MetricFamily,
    Registry,
)
from repro.obs.nodeid import load_or_create_node_id, new_node_id
from repro.obs.slowlog import SlowQueryLog
from repro.obs.spansink import SpanSink
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    TraceRing,
    TraceSpan,
    Tracer,
    flatten_span_tree,
    span,
    tracer,
    tracing,
)

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "HistogramMergeError",
    "JsonLogFormatter",
    "MetricFamily",
    "NullTracer",
    "RateSampler",
    "Registry",
    "RequestIdFilter",
    "SlowQueryLog",
    "SpanSink",
    "TraceContext",
    "TraceRing",
    "TraceSpan",
    "Tracer",
    "assemble",
    "configure_logging",
    "context",
    "flatten_span_tree",
    "get_node_id",
    "get_request_id",
    "load_or_create_node_id",
    "new_node_id",
    "new_request_id",
    "new_span_id",
    "new_trace_id",
    "nodeid",
    "request_context",
    "reset_request_id",
    "set_node_prefix",
    "set_request_id",
    "span",
    "tracer",
    "tracing",
]
