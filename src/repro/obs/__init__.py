"""``repro.obs`` — observability: tracing, metrics, logs, slow-query log.

The pipeline (parse → λ-translation → stratify → magic/optimize → engine →
DRed maintenance → service request handling) is instrumented with ambient
spans; :func:`tracing` turns collection on for a ``with`` body and the
disabled path is a module-level no-op (see :mod:`repro.obs.trace`).

Beyond spans, the package provides:

- :mod:`repro.obs.metrics` — typed counter/gauge/histogram registry with
  mergeable fixed-bucket histograms and Prometheus text exposition;
- :mod:`repro.obs.export` — the ``/metrics`` + ``/healthz`` HTTP endpoint;
- :mod:`repro.obs.logs` — structured JSON logging and the per-request
  correlation-ID contextvar;
- :mod:`repro.obs.slowlog` — the bounded slow-query log.
"""

from repro.obs.logs import (
    JsonLogFormatter,
    RequestIdFilter,
    configure_logging,
    get_request_id,
    new_request_id,
    request_context,
    reset_request_id,
    set_request_id,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricFamily,
    Registry,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    TraceRing,
    TraceSpan,
    Tracer,
    span,
    tracer,
    tracing,
)

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "JsonLogFormatter",
    "MetricFamily",
    "NullTracer",
    "Registry",
    "RequestIdFilter",
    "SlowQueryLog",
    "TraceRing",
    "TraceSpan",
    "Tracer",
    "configure_logging",
    "get_request_id",
    "new_request_id",
    "request_context",
    "reset_request_id",
    "set_request_id",
    "span",
    "tracer",
    "tracing",
]
