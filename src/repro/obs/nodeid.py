"""Stable node identity for aggregated telemetry.

Every service process gets a short ``node_id``.  When the node is durable
the id is persisted as ``node_id.json`` next to ``epoch.json`` (same
atomic temp+fsync+rename discipline), so a node keeps its identity across
restarts and a fleet's logs, traces, and metrics stay attributable over
time; in-memory nodes mint a random id per boot.

The id prefixes the cheap counter-based request ids
(:func:`repro.obs.logs.set_node_prefix`), so ids minted on different nodes
no longer collide when logs from a whole cluster are aggregated — one grep
on the prefix isolates a node, one grep on the full id isolates a request.
It also appears in ``stats``, ``/healthz``, structured log records, and on
every span a node contributes to an assembled distributed trace.
"""

from __future__ import annotations

import json
import logging
import os

logger = logging.getLogger(__name__)

FORMAT = "repro-node-id"

NODE_ID_FILENAME = "node_id.json"


def new_node_id():
    """A fresh random node id: 12 hex chars, log-friendly."""
    return os.urandom(6).hex()


def node_id_path(data_dir):
    return os.path.join(data_dir, NODE_ID_FILENAME)


def load_node_id(data_dir):
    """The persisted node id, or ``None`` when absent or unreadable."""
    path = node_id_path(data_dir)
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        logger.warning("ignoring unreadable node-id file %s: %s", path, exc)
        return None
    if not isinstance(document, dict) or document.get("format") != FORMAT:
        logger.warning("ignoring %s: not a %s document", path, FORMAT)
        return None
    node_id = document.get("node_id")
    if not isinstance(node_id, str) or not node_id:
        logger.warning("ignoring %s: missing node id", path)
        return None
    return node_id


def store_node_id(data_dir, node_id):
    """Atomically persist *node_id* to ``data_dir``; returns the final path."""
    from repro.persist.wal import fsync_directory

    final = node_id_path(data_dir)
    tmp = final + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump({"format": FORMAT, "node_id": str(node_id)}, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    fsync_directory(data_dir)
    return final


def load_or_create_node_id(data_dir=None):
    """The node's stable identity.

    With a *data_dir*, load the persisted id or mint-and-persist one (an
    unwritable directory degrades to a random per-boot id rather than
    failing the boot — identity is telemetry, not correctness).  Without
    one, always mint a random id.
    """
    if data_dir is None:
        return new_node_id()
    existing = load_node_id(data_dir)
    if existing is not None:
        return existing
    node_id = new_node_id()
    try:
        store_node_id(data_dir, node_id)
    except OSError as exc:
        logger.warning(
            "could not persist node id to %s (%s); using ephemeral id", data_dir, exc
        )
    return node_id
