"""Typed telemetry instruments and Prometheus text exposition.

The serving stack used to keep latency in bounded sample windows and compute
sliding-window percentiles on demand (:mod:`repro.service.metrics`).  That
representation has two problems a production scraper cares about:

- **window bias** — a 2048-sample deque forgets everything older than the
  last 2048 requests, so a burst of fast cache hits silently evicts the slow
  tail a dashboard most wants to see, and two windows from two processes
  cannot be combined into a fleet-wide percentile;
- **non-mergeability** — percentiles of percentiles are meaningless, so the
  window representation cannot be aggregated across shards or scrapes.

This module replaces it with *mergeable fixed-bucket histograms* (the
Prometheus model): each observation increments one of a fixed set of bucket
counters, plus an exact running ``sum``/``count``/``min``/``max``.  Two
histograms with the same bounds merge by adding counters, quantiles are
estimated by linear interpolation inside the owning bucket (clamped to the
observed ``[min, max]``, so single-sample histograms report the exact
sample), and the whole thing renders as standard Prometheus text exposition
format (version 0.0.4) for any scraper to pull.

Three instrument types with label support:

- :class:`Counter` — monotonically increasing totals (``_total`` suffix);
- :class:`Gauge` — point-in-time values that go both ways;
- :class:`Histogram` — distributions, rendered as ``_bucket``/``_sum``/
  ``_count`` series.

Instruments register with a :class:`Registry`; ad-hoc producers can instead
register a *collector* callback returning :class:`MetricFamily` rows built
on demand (used by the query service to publish per-predicate store
statistics at scrape time).
"""

from __future__ import annotations

import math
import re
import threading

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Default latency buckets in seconds (the Prometheus client defaults with a
#: couple of extra sub-millisecond bounds — this service answers cache hits
#: in ~10µs, and a histogram whose first bound is 5ms would flatten the
#: entire hot path into one bucket).
DEFAULT_BUCKETS = (
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def sanitize_metric_name(name):
    """A dotted internal name as a legal Prometheus metric name component."""
    return _SANITIZE_RE.sub("_", str(name))


def escape_label_value(value):
    """Escape a label value per the text exposition format."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def escape_help(text):
    """Escape a HELP string per the text exposition format."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def format_value(value):
    """Render a sample value (integers without a trailing ``.0``)."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def format_labels(labels):
    """``{name="value",...}`` (empty string for no labels), keys sorted."""
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


class HistogramMergeError(ValueError):
    """Merging histograms with incompatible bucket layouts.

    A ``ValueError`` subclass so existing callers that catch broadly keep
    working, while cluster-stats aggregation can catch this specifically
    and skip the offending node instead of dropping the whole merge.
    """


class HistogramData:
    """One mergeable fixed-bucket histogram (no lock; owners synchronize).

    ``bounds`` are inclusive upper bucket bounds; an implicit ``+Inf``
    bucket catches the rest.  ``counts[i]`` is the number of observations
    ``<= bounds[i]`` but greater than the previous bound (i.e. *per-bucket*
    counts, not cumulative — exposition cumulates on render).
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds=DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in bounds))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        value = float(value)
        self.counts[self._bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def _bucket_index(self, value):
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def merge(self, other):
        """Fold *other* into this histogram (bounds must match)."""
        if other.bounds != self.bounds:
            raise HistogramMergeError(
                "cannot merge histograms with different bounds: "
                f"{len(self.bounds)} bounds vs {len(other.bounds)}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    def copy(self):
        clone = HistogramData(self.bounds)
        clone.counts = list(self.counts)
        clone.count = self.count
        clone.sum = self.sum
        clone.min = self.min
        clone.max = self.max
        return clone

    def quantile(self, q):
        """Estimate the *q*-quantile by interpolating inside the owning
        bucket, clamped to the observed ``[min, max]`` (so a single-sample
        histogram reports the sample exactly, and no estimate ever exceeds
        the true extremes the way raw bucket bounds would)."""
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if i < len(self.bounds):
                    upper = self.bounds[i]
                    lower = self.bounds[i - 1] if i > 0 else 0.0
                else:
                    # +Inf bucket: interpolate toward the observed max.
                    upper = self.max
                    lower = self.bounds[-1]
                position = (target - cumulative) / bucket_count
                estimate = lower + position * (upper - lower)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - q=1.0 exits in the loop

    def to_wire(self):
        """The histogram as a JSON-ready dict for cross-node shipping."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_wire(cls, doc):
        """Rebuild a histogram shipped by :meth:`to_wire`.

        Raises :class:`HistogramMergeError` on a malformed document — the
        cluster-stats merger treats that exactly like a bucket-layout
        mismatch (skip the node, keep the merge).
        """
        if not isinstance(doc, dict):
            raise HistogramMergeError(
                f"histogram wire form must be an object, got {type(doc).__name__}"
            )
        bounds = doc.get("bounds")
        counts = doc.get("counts")
        if not isinstance(bounds, (list, tuple)) or not bounds:
            raise HistogramMergeError("histogram wire form missing bucket bounds")
        if not isinstance(counts, (list, tuple)) or len(counts) != len(bounds) + 1:
            raise HistogramMergeError(
                "histogram wire form counts must have len(bounds)+1 entries"
            )
        try:
            data = cls(bounds)
            data.counts = [int(c) for c in counts]
            data.count = int(doc.get("count", 0))
            data.sum = float(doc.get("sum", 0.0))
            data.min = None if doc.get("min") is None else float(doc["min"])
            data.max = None if doc.get("max") is None else float(doc["max"])
        except (TypeError, ValueError) as exc:
            raise HistogramMergeError(
                f"malformed histogram wire form: {exc}"
            ) from None
        return data

    def cumulative_buckets(self):
        """``[(le_bound, cumulative_count), ...]`` ending with ``+Inf``."""
        out = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    def __repr__(self):
        return f"HistogramData(count={self.count}, sum={self.sum:.6f})"


class MetricFamily:
    """One exposition family: a name, a type, help text, and samples.

    ``samples`` is a list of ``(suffix, labels, value)`` — suffix is ``""``
    for plain counters/gauges, ``"_bucket"``/``"_sum"``/``"_count"`` for
    histogram series.
    """

    __slots__ = ("name", "kind", "help", "samples")

    KINDS = ("counter", "gauge", "histogram", "untyped")

    def __init__(self, name, kind, help="", samples=()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if kind not in self.KINDS:
            raise ValueError(f"invalid metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.samples = list(samples)

    def add_sample(self, value, labels=None, suffix=""):
        self.samples.append((suffix, dict(labels or {}), value))
        return self

    def add_histogram(self, data, labels=None):
        """Append the ``_bucket``/``_sum``/``_count`` series for one
        :class:`HistogramData` under *labels*."""
        labels = dict(labels or {})
        for bound, cumulative in data.cumulative_buckets():
            le = "+Inf" if math.isinf(bound) else format_value(bound)
            self.samples.append(("_bucket", {**labels, "le": le}, cumulative))
        self.samples.append(("_sum", labels, data.sum))
        self.samples.append(("_count", labels, data.count))
        return self

    def render(self):
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for suffix, labels, value in self.samples:
            lines.append(
                f"{self.name}{suffix}{format_labels(labels)} {format_value(value)}"
            )
        return "\n".join(lines)


class _Instrument:
    """Base class: a named, optionally labeled instrument in a registry."""

    kind = "untyped"

    def __init__(self, name, help="", labelnames=(), registry=None, buckets=None):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = buckets
        self._lock = threading.Lock()
        self._children = {}
        if not self.labelnames:
            self._children[()] = self._new_child()
        if registry is not None:
            registry.register(self)

    def _new_child(self):
        raise NotImplementedError

    def labels(self, *values, **kv):
        """The child instrument bound to one label-value combination."""
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(kv[name] for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"unknown label {exc.args[0]!r}") from None
            if len(kv) != len(self.labelnames):
                unknown = set(kv) - set(self.labelnames)
                raise ValueError(f"unknown labels {sorted(unknown)!r}")
        else:
            values = tuple(values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label values, "
                f"got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    def _default(self):
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled; use .labels(...) first")
        return self._children[()]

    def collect(self):
        family = MetricFamily(self.name, self.kind, self.help)
        with self._lock:
            children = sorted(self._children.items())
        for key, child in children:
            labels = dict(zip(self.labelnames, key))
            self._fill(family, labels, child)
        return family

    def _fill(self, family, labels, child):
        raise NotImplementedError


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount

    def set_total(self, value):
        """Pin the total to an externally-accumulated monotonic value."""
        self.value = value


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def _new_child(self):
        return _CounterChild()

    def inc(self, amount=1):
        self._default().inc(amount)

    def set_total(self, value):
        self._default().set_total(value)

    @property
    def value(self):
        return self._default().value

    def _fill(self, family, labels, child):
        family.add_sample(child.value, labels)


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount


class Gauge(_Instrument):
    """A point-in-time value."""

    kind = "gauge"

    def _new_child(self):
        return _GaugeChild()

    def set(self, value):
        self._default().set(value)

    def inc(self, amount=1):
        self._default().inc(amount)

    def dec(self, amount=1):
        self._default().dec(amount)

    @property
    def value(self):
        return self._default().value

    def _fill(self, family, labels, child):
        family.add_sample(child.value, labels)


class Histogram(_Instrument):
    """A labeled family of fixed-bucket histograms."""

    kind = "histogram"

    def _new_child(self):
        return HistogramData(self._buckets or DEFAULT_BUCKETS)

    def observe(self, value):
        self._default().observe(value)

    def quantile(self, q):
        return self._default().quantile(q)

    @property
    def data(self):
        return self._default()

    def _fill(self, family, labels, child):
        family.add_histogram(child, labels)


class Registry:
    """A set of instruments and collector callbacks, rendered on scrape.

    Instruments register themselves when constructed with ``registry=``;
    producers whose values only exist at scrape time (per-predicate store
    cardinalities, WAL segment counts) register a *collector* — a zero-arg
    callable returning an iterable of :class:`MetricFamily`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments = []
        self._collectors = []

    def register(self, instrument):
        with self._lock:
            if any(existing.name == instrument.name for existing in self._instruments):
                raise ValueError(f"duplicate metric name {instrument.name!r}")
            self._instruments.append(instrument)
        return instrument

    def collector(self, callback):
        """Register (and return) a callback yielding MetricFamily rows."""
        with self._lock:
            self._collectors.append(callback)
        return callback

    def unregister_collector(self, callback):
        with self._lock:
            self._collectors.remove(callback)

    def collect(self):
        """Every family currently known, sorted by name."""
        with self._lock:
            instruments = list(self._instruments)
            collectors = list(self._collectors)
        families = [instrument.collect() for instrument in instruments]
        for callback in collectors:
            families.extend(callback())
        return sorted(families, key=lambda family: family.name)

    def render(self):
        """The full registry as Prometheus text exposition format 0.0.4."""
        chunks = [family.render() for family in self.collect() if family.samples]
        return "\n".join(chunks) + "\n" if chunks else ""


#: Content type of the text exposition format (for HTTP responses).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
