"""Span-based tracing for the evaluation pipeline.

One :class:`Tracer` records one tree of :class:`TraceSpan` nodes — parse,
λ-translation, stratification, per-stratum fixpoint rounds, maintenance,
cache lookups, encoding — each with wall-clock duration and arbitrary
attributes.  The tree renders as JSON (``to_dict``) or as an ASCII tree
(``render``), and powers the service's ``explain``/``profile`` ops.

Cost model: tracing is *ambient* (a :mod:`contextvars` variable) so deep
pipeline code never threads a tracer parameter around, and it is **off by
default**.  The disabled path is a module-level no-op fast path: the active
"tracer" is a shared :data:`NULL_TRACER` whose ``span()`` returns the one
shared :data:`NULL_SPAN`, whose enter/exit/annotate do nothing and which is
*falsy* — hot loops guard per-iteration recording with ``if span:`` so the
disabled cost is one attribute truth-test.  The ``abl7`` benchmark bounds
the end-to-end overhead of the disabled path.

Usage::

    from repro import obs

    with obs.tracing("request", op="graphlog") as tracer:
        run_pipeline()                  # instrumented code calls obs.span()
    print(tracer.root.render())

Instrumented code::

    with obs.span("engine.stratum", stratum=1) as span:
        while not fixpoint:
            ...
            if span:                    # falsy when tracing is disabled
                span.append("iterations", {"delta": sizes})
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque
from contextlib import contextmanager


class TraceSpan:
    """One timed node in a trace tree.

    Spans are context managers: entering starts the clock and attaches the
    span to the active tracer's current span; exiting records
    ``elapsed_ms``.  Attributes are free-form JSON-serializable values.
    """

    __slots__ = ("name", "attrs", "children", "elapsed_ms", "_tracer", "_started")

    def __init__(self, name, attrs, tracer):
        self.name = name
        self.attrs = attrs
        self.children = []
        self.elapsed_ms = None
        self._tracer = tracer
        self._started = None

    # ------------------------------------------------------------ lifecycle

    def __enter__(self):
        self._tracer._push(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb):
        self.elapsed_ms = (time.perf_counter() - self._started) * 1000.0
        if exc_type is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(self)
        return False

    def __bool__(self):
        return True

    # ----------------------------------------------------------- annotation

    def annotate(self, **attrs):
        """Merge *attrs* into the span's attributes."""
        self.attrs.update(attrs)

    def append(self, key, item):
        """Append *item* to the list-valued attribute *key*."""
        self.attrs.setdefault(key, []).append(item)

    def count(self, key, amount=1):
        """Increment the numeric attribute *key* by *amount*."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    # ------------------------------------------------------------ rendering

    def to_dict(self):
        """The span subtree as a JSON-ready dict."""
        return {
            "name": self.name,
            "elapsed_ms": None if self.elapsed_ms is None else round(self.elapsed_ms, 3),
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, max_attr_len=120):
        """The span subtree as an ASCII tree, one span per line."""
        lines = []
        self._render_into(lines, prefix="", branch="", max_attr_len=max_attr_len)
        return "\n".join(lines)

    def _render_into(self, lines, prefix, branch, max_attr_len):
        elapsed = "?" if self.elapsed_ms is None else f"{self.elapsed_ms:.3f}ms"
        attrs = _format_attrs(self.attrs, max_attr_len)
        lines.append(f"{prefix}{branch}{self.name} ({elapsed}){attrs}")
        if branch == "":
            child_prefix = prefix
        else:
            child_prefix = prefix + ("    " if branch.startswith("└") else "│   ")
        for i, child in enumerate(self.children):
            last = i == len(self.children) - 1
            child._render_into(
                lines, child_prefix, "└── " if last else "├── ", max_attr_len
            )

    def find(self, name):
        """Depth-first search for the first descendant span named *name*."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def find_all(self, name):
        """Every descendant span named *name*, depth-first."""
        out = []
        for child in self.children:
            if child.name == name:
                out.append(child)
            out.extend(child.find_all(name))
        return out

    def __repr__(self):
        return f"TraceSpan({self.name!r}, {len(self.children)} children)"


def _format_attrs(attrs, max_attr_len):
    if not attrs:
        return ""
    parts = []
    for key, value in attrs.items():
        text = f"{key}={value!r}" if isinstance(value, str) else f"{key}={value}"
        if len(text) > max_attr_len:
            text = text[: max_attr_len - 1] + "…"
        parts.append(text)
    return " " + " ".join(parts)


class _NullSpan:
    """The shared no-op span: falsy, zero-cost enter/exit/annotate."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        return False

    def __bool__(self):
        return False

    def annotate(self, **_attrs):
        pass

    def append(self, _key, _item):
        pass

    def count(self, _key, _amount=1):
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: ``span()`` always returns :data:`NULL_SPAN`."""

    __slots__ = ()
    enabled = False
    root = None

    def span(self, _name, **_attrs):
        return NULL_SPAN


NULL_TRACER = NullTracer()


class Tracer:
    """An enabled tracer: collects one span tree for one traced operation.

    Not thread-safe: one tracer traces one logical operation on one thread
    (the service activates a fresh tracer inside each traced request's
    worker thread).
    """

    __slots__ = ("root", "_stack")
    enabled = True

    def __init__(self):
        self.root = None
        self._stack = []

    def span(self, name, **attrs):
        return TraceSpan(name, attrs, self)

    def _push(self, span):
        if self._stack:
            self._stack[-1].children.append(span)
        elif self.root is None:
            self.root = span
        else:
            # A second top-level span joins the existing root's children so
            # no timing is ever silently dropped.
            self.root.children.append(span)
        self._stack.append(span)

    def _pop(self, span):
        if self._stack and self._stack[-1] is span:
            self._stack.pop()


_ACTIVE = contextvars.ContextVar("repro.obs.tracer", default=NULL_TRACER)


def tracer():
    """The ambient tracer: a :class:`Tracer` inside :func:`tracing`, else
    the shared no-op :data:`NULL_TRACER`."""
    return _ACTIVE.get()


def span(name, **attrs):
    """Open a span on the ambient tracer (no-op when tracing is disabled)."""
    return _ACTIVE.get().span(name, **attrs)


@contextmanager
def tracing(name="trace", **attrs):
    """Enable tracing for the ``with`` body; yields the :class:`Tracer`.

    The body's pipeline calls (engine, translator, maintenance, caches)
    record spans under a root span *name*; afterwards ``tracer.root`` holds
    the finished tree.
    """
    active = Tracer()
    token = _ACTIVE.set(active)
    try:
        with active.span(name, **attrs):
            yield active
    finally:
        _ACTIVE.reset(token)


class TraceRing:
    """A bounded, thread-safe ring of recent trace records.

    The service records one entry per traced request (``explain`` /
    ``profile`` ops); ``stats`` exposes the ring's counters and clients can
    page through :meth:`snapshot` for post-hoc debugging.
    """

    def __init__(self, capacity=64):
        if capacity < 1:
            raise ValueError("trace ring capacity must be >= 1")
        self.capacity = capacity
        self._entries = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.recorded = 0

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def record(self, entry):
        with self._lock:
            self._entries.append(entry)
            self.recorded += 1

    def snapshot(self, limit=None):
        """The most recent entries, newest last (all when *limit* is None)."""
        with self._lock:
            entries = list(self._entries)
        return entries if limit is None else entries[-limit:]

    def stats(self):
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "recorded": self.recorded,
            }
