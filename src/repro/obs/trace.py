"""Span-based tracing for the evaluation pipeline.

One :class:`Tracer` records one tree of :class:`TraceSpan` nodes — parse,
λ-translation, stratification, per-stratum fixpoint rounds, maintenance,
cache lookups, encoding — each with wall-clock duration and arbitrary
attributes.  The tree renders as JSON (``to_dict``) or as an ASCII tree
(``render``), and powers the service's ``explain``/``profile`` ops.

Cost model: tracing is *ambient* (a :mod:`contextvars` variable) so deep
pipeline code never threads a tracer parameter around, and it is **off by
default**.  The disabled path is a module-level no-op fast path: the active
"tracer" is a shared :data:`NULL_TRACER` whose ``span()`` returns the one
shared :data:`NULL_SPAN`, whose enter/exit/annotate do nothing and which is
*falsy* — hot loops guard per-iteration recording with ``if span:`` so the
disabled cost is one attribute truth-test.  The ``abl7`` benchmark bounds
the end-to-end overhead of the disabled path.

Usage::

    from repro import obs

    with obs.tracing("request", op="graphlog") as tracer:
        run_pipeline()                  # instrumented code calls obs.span()
    print(tracer.root.render())

Instrumented code::

    with obs.span("engine.stratum", stratum=1) as span:
        while not fixpoint:
            ...
            if span:                    # falsy when tracing is disabled
                span.append("iterations", {"delta": sizes})
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque
from contextlib import contextmanager

from repro.obs.context import new_span_id as _new_span_id


class TraceSpan:
    """One timed node in a trace tree.

    Spans are context managers: entering starts the clock and attaches the
    span to the active tracer's current span; exiting records
    ``elapsed_ms``.  Attributes are free-form JSON-serializable values.
    """

    __slots__ = (
        "name",
        "attrs",
        "children",
        "elapsed_ms",
        "span_id",
        "parent_span_id",
        "start_ts",
        "_tracer",
        "_started",
    )

    def __init__(self, name, attrs, tracer):
        self.name = name
        self.attrs = attrs
        self.children = []
        self.elapsed_ms = None
        self.span_id = None
        self.parent_span_id = None
        self.start_ts = None
        self._tracer = tracer
        self._started = None

    # ------------------------------------------------------------ lifecycle

    def __enter__(self):
        self.span_id = _new_span_id()
        self.start_ts = time.time()
        self._tracer._push(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb):
        self.elapsed_ms = (time.perf_counter() - self._started) * 1000.0
        if exc_type is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(self)
        return False

    def __bool__(self):
        return True

    # ----------------------------------------------------------- annotation

    def annotate(self, **attrs):
        """Merge *attrs* into the span's attributes."""
        self.attrs.update(attrs)

    def append(self, key, item):
        """Append *item* to the list-valued attribute *key*."""
        self.attrs.setdefault(key, []).append(item)

    def count(self, key, amount=1):
        """Increment the numeric attribute *key* by *amount*."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    # ------------------------------------------------------------ rendering

    def to_dict(self):
        """The span subtree as a JSON-ready dict."""
        doc = {
            "name": self.name,
            "elapsed_ms": None if self.elapsed_ms is None else round(self.elapsed_ms, 3),
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }
        if self.span_id is not None:
            doc["span_id"] = self.span_id
            doc["parent_span_id"] = self.parent_span_id
            doc["start_ts"] = self.start_ts
        return doc

    def render(self, max_attr_len=120):
        """The span subtree as an ASCII tree, one span per line."""
        lines = []
        self._render_into(lines, prefix="", branch="", max_attr_len=max_attr_len)
        return "\n".join(lines)

    def _render_into(self, lines, prefix, branch, max_attr_len):
        elapsed = "?" if self.elapsed_ms is None else f"{self.elapsed_ms:.3f}ms"
        attrs = _format_attrs(self.attrs, max_attr_len)
        lines.append(f"{prefix}{branch}{self.name} ({elapsed}){attrs}")
        if branch == "":
            child_prefix = prefix
        else:
            child_prefix = prefix + ("    " if branch.startswith("└") else "│   ")
        for i, child in enumerate(self.children):
            last = i == len(self.children) - 1
            child._render_into(
                lines, child_prefix, "└── " if last else "├── ", max_attr_len
            )

    def find(self, name):
        """Depth-first search for the first descendant span named *name*."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def find_all(self, name):
        """Every descendant span named *name*, depth-first."""
        out = []
        for child in self.children:
            if child.name == name:
                out.append(child)
            out.extend(child.find_all(name))
        return out

    def __repr__(self):
        return f"TraceSpan({self.name!r}, {len(self.children)} children)"


def _format_attrs(attrs, max_attr_len):
    if not attrs:
        return ""
    parts = []
    for key, value in attrs.items():
        text = f"{key}={value!r}" if isinstance(value, str) else f"{key}={value}"
        if len(text) > max_attr_len:
            text = text[: max_attr_len - 1] + "…"
        parts.append(text)
    return " " + " ".join(parts)


class _NullSpan:
    """The shared no-op span: falsy, zero-cost enter/exit/annotate."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        return False

    def __bool__(self):
        return False

    def annotate(self, **_attrs):
        pass

    def append(self, _key, _item):
        pass

    def count(self, _key, _amount=1):
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: ``span()`` always returns :data:`NULL_SPAN`."""

    __slots__ = ()
    enabled = False
    root = None

    def span(self, _name, **_attrs):
        return NULL_SPAN


NULL_TRACER = NullTracer()


class Tracer:
    """An enabled tracer: collects one span tree for one traced operation.

    Not thread-safe: one tracer traces one logical operation on one thread
    (the service activates a fresh tracer inside each traced request's
    worker thread).
    """

    __slots__ = ("root", "trace_id", "remote_parent", "_stack")
    enabled = True

    def __init__(self, trace_id=None, remote_parent=None):
        self.root = None
        # The distributed identity: set when tracing a request that carries a
        # trace context (adopted or locally minted); None for a purely local
        # explain/profile tracer.
        self.trace_id = trace_id
        # The sender-side span id this tracer's root nests under when the
        # cross-node tree is assembled.
        self.remote_parent = remote_parent
        self._stack = []

    def span(self, name, **attrs):
        return TraceSpan(name, attrs, self)

    def _push(self, span):
        if self._stack:
            parent = self._stack[-1]
            parent.children.append(span)
            span.parent_span_id = parent.span_id
        elif self.root is None:
            self.root = span
            span.parent_span_id = self.remote_parent
        else:
            # A second top-level span joins the existing root's children so
            # no timing is ever silently dropped.
            self.root.children.append(span)
            span.parent_span_id = self.root.span_id
        self._stack.append(span)

    def _pop(self, span):
        if self._stack and self._stack[-1] is span:
            self._stack.pop()


_ACTIVE = contextvars.ContextVar("repro.obs.tracer", default=NULL_TRACER)


def tracer():
    """The ambient tracer: a :class:`Tracer` inside :func:`tracing`, else
    the shared no-op :data:`NULL_TRACER`."""
    return _ACTIVE.get()


def span(name, **attrs):
    """Open a span on the ambient tracer (no-op when tracing is disabled)."""
    return _ACTIVE.get().span(name, **attrs)


@contextmanager
def tracing(name="trace", context=None, **attrs):
    """Enable tracing for the ``with`` body; yields the :class:`Tracer`.

    The body's pipeline calls (engine, translator, maintenance, caches)
    record spans under a root span *name*; afterwards ``tracer.root`` holds
    the finished tree.  Passing a
    :class:`~repro.obs.context.TraceContext` as *context* binds the tree to
    that distributed trace: the tracer carries its ``trace_id`` and the root
    span links under the sender's ``parent_span_id``.
    """
    if context is not None:
        active = Tracer(
            trace_id=context.trace_id, remote_parent=context.parent_span_id
        )
    else:
        active = Tracer()
    token = _ACTIVE.set(active)
    try:
        with active.span(name, **attrs):
            yield active
    finally:
        _ACTIVE.reset(token)


def flatten_span_tree(root, node_id=None):
    """A span tree (:class:`TraceSpan` or its ``to_dict`` form) as a flat
    list of span dicts, parent links intact, ready for cross-node assembly.

    Each dict carries ``span_id`` / ``parent_span_id`` / ``start_ts`` /
    ``elapsed_ms`` / ``name`` / ``attrs`` plus ``node_id`` when given, and
    drops the nested ``children`` — :mod:`repro.obs.assemble` rebuilds the
    tree from the parent links after merging lists from several nodes.
    """
    flat = []
    stack = [root.to_dict() if isinstance(root, TraceSpan) else root]
    while stack:
        doc = stack.pop()
        span = {
            "span_id": doc.get("span_id"),
            "parent_span_id": doc.get("parent_span_id"),
            "name": doc.get("name"),
            "start_ts": doc.get("start_ts"),
            "elapsed_ms": doc.get("elapsed_ms"),
            "attrs": doc.get("attrs") or {},
        }
        if node_id is not None:
            span["node_id"] = node_id
        flat.append(span)
        children = doc.get("children") or []
        # Reverse so pop() walks children in recorded order.
        stack.extend(reversed(children))
    return flat


class TraceRing:
    """A bounded, thread-safe ring of recent trace records.

    The service records one entry per traced request (``explain`` /
    ``profile`` ops); ``stats`` exposes the ring's counters and clients can
    page through :meth:`snapshot` for post-hoc debugging.
    """

    def __init__(self, capacity=64):
        if capacity < 1:
            raise ValueError("trace ring capacity must be >= 1")
        self.capacity = capacity
        self._entries = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.recorded = 0

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def record(self, entry):
        with self._lock:
            self._entries.append(entry)
            self.recorded += 1

    def snapshot(self, limit=None):
        """The most recent entries, newest last (all when *limit* is None)."""
        with self._lock:
            entries = list(self._entries)
        return entries if limit is None else entries[-limit:]

    def find(self, trace_id):
        """Every held entry recorded under *trace_id*, oldest first.

        A trace can appear more than once on a node (e.g. a router that
        forwarded, failed over, and retried), so this returns a list.
        """
        with self._lock:
            return [e for e in self._entries if e.get("trace_id") == trace_id]

    def stats(self):
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "recorded": self.recorded,
            }
