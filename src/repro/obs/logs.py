"""Structured logging with per-request correlation IDs.

Library modules (``repro.ham``, ``repro.persist``, ``repro.datalog``) log
through plain module loggers — ``logging.getLogger(__name__)`` — and never
install handlers or call ``basicConfig``; the ``repro`` package root carries
a :class:`logging.NullHandler` so an embedding application sees no output it
did not ask for.  Handler/formatter setup happens in exactly one place: the
CLI entry point calls :func:`configure_logging`.

Request correlation: the service assigns every wire request an ID (a short
random run prefix plus a monotonically increasing counter — deliberately
not ``uuid4`` per request, which would cost ~1µs on a ~12µs cache-hit path)
and stores it in a :mod:`contextvars` context variable.  Every log record
emitted while the variable is set — from the server, the engine, DRed
maintenance, or the WAL — is stamped with it by :class:`RequestIdFilter`,
so one ``grep`` over the JSON logs reconstructs a request's full story.

Note that contextvars do **not** automatically propagate into
``loop.run_in_executor`` worker threads; the service sets the variable
explicitly inside the worker closure (see ``service/server.py``).
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import json
import logging
import os
import sys
import time

_REQUEST_ID = contextvars.ContextVar("repro_request_id", default=None)

# One short random prefix per process so IDs from different service runs
# never collide in shared log storage; the counter keeps per-request cost
# to one integer increment.  A service with a stable node identity swaps
# the random prefix for its node id via set_node_prefix(), making request
# ids cluster-unique and attributable.
_RUN_PREFIX = os.urandom(3).hex()
_COUNTER = itertools.count(1)

# The node id once set_node_prefix() has run; stamped onto JSON log records.
_NODE_ID = None


def new_request_id():
    """A fresh process-unique request ID, e.g. ``"a3f1b2-000017"``."""
    return f"{_RUN_PREFIX}-{next(_COUNTER):06d}"


def set_node_prefix(node_id):
    """Prefix all future request ids with *node_id* and stamp JSON logs.

    Process-global on purpose: the id identifies the *process* in a
    cluster.  When several services share one process (tests), the last
    call wins for log stamping — each service object still carries its own
    ``node_id`` attribute for stats and traces.
    """
    global _RUN_PREFIX, _NODE_ID
    _RUN_PREFIX = str(node_id)
    _NODE_ID = str(node_id)


def get_node_id():
    """The process's node id, or ``None`` before :func:`set_node_prefix`."""
    return _NODE_ID


def get_request_id():
    """The ambient request ID, or ``None`` outside any request."""
    return _REQUEST_ID.get()


def set_request_id(request_id):
    """Bind *request_id* in this context; returns a token for reset."""
    return _REQUEST_ID.set(request_id)


def reset_request_id(token):
    _REQUEST_ID.reset(token)


@contextlib.contextmanager
def request_context(request_id=None):
    """Run a block with *request_id* (fresh if ``None``) as the ambient ID."""
    rid = request_id if request_id is not None else new_request_id()
    token = _REQUEST_ID.set(rid)
    try:
        yield rid
    finally:
        _REQUEST_ID.reset(token)


class RequestIdFilter(logging.Filter):
    """Stamp every record with the ambient request ID (``"-"`` outside)."""

    def filter(self, record):
        rid = _REQUEST_ID.get()
        record.request_id = rid if rid is not None else "-"
        return True


#: LogRecord attributes that are plumbing, not user payload — anything else
#: passed via ``logger.info(..., extra={...})`` lands in the JSON output.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"request_id", "message", "asctime", "taskName"}


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, message, request_id,
    any ``extra=`` fields, and a formatted traceback when present."""

    def format(self, record):
        payload = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            ) + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
            "request_id": getattr(record, "request_id", None) or "-",
        }
        if _NODE_ID is not None:
            payload["node"] = _NODE_ID
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, separators=(",", ":"))


class TextLogFormatter(logging.Formatter):
    """Human-oriented single-line format carrying the request ID."""

    def __init__(self):
        super().__init__(
            "%(asctime)s %(levelname)-7s [%(request_id)s] %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        )


_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


def configure_logging(level="warning", json_output=False, stream=None):
    """Install one handler on the ``repro`` logger (CLI entry points only).

    Idempotent: a handler installed by a previous call is replaced, not
    stacked, so repeated ``main()`` invocations (tests, embedding) do not
    duplicate output.  Propagation to the root logger is deliberately left
    on so test harnesses (pytest ``caplog``) keep seeing records.
    """
    if isinstance(level, str):
        try:
            numeric = _LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; choose from {sorted(_LEVELS)}"
            ) from None
    else:
        numeric = int(level)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter() if json_output else TextLogFormatter())
    handler.addFilter(RequestIdFilter())
    handler._repro_cli_handler = True

    package_logger = logging.getLogger("repro")
    for existing in list(package_logger.handlers):
        if getattr(existing, "_repro_cli_handler", False):
            package_logger.removeHandler(existing)
    package_logger.addHandler(handler)
    package_logger.setLevel(numeric)
    return handler
