"""Exception hierarchy for the GraphLog reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library signals with a single ``except`` clause while
still being able to distinguish the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class DatalogError(ReproError):
    """Base class for errors in the Datalog substrate."""


class ParseError(DatalogError):
    """A textual program, query, or expression failed to parse.

    Attributes:
        message: human-readable description.
        line: 1-based line of the offending token (0 when unknown).
        column: 1-based column of the offending token (0 when unknown).
    """

    def __init__(self, message, line=0, column=0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.message = message
        self.line = line
        self.column = column


class SafetyError(DatalogError):
    """A rule is unsafe: some variable is not bound by a positive literal."""


class StratificationError(DatalogError):
    """A program has negation (or aggregation) through recursion."""


class ArityError(DatalogError):
    """A predicate is used with inconsistent arities."""


class EvaluationError(DatalogError):
    """Runtime failure during bottom-up evaluation."""


class GraphLogError(ReproError):
    """Base class for errors in the GraphLog core language."""


class QueryGraphError(GraphLogError):
    """A query graph violates Definition 2.3 (e.g. isolated node, bad arity)."""


class GhostVariableError(GraphLogError):
    """A ghost variable escapes the scope of its alternation (Section 2)."""


class DependenceCycleError(GraphLogError):
    """A graphical query's dependence graph is cyclic (violates Def. 2.7)."""


class TranslationError(ReproError):
    """Algorithm 3.1 (or λ) was applied to an input outside its domain."""


class NotLinearError(TranslationError):
    """A program expected to be linear has a rule with >1 recursive subgoal."""


class RegexError(ReproError):
    """A regular (path) expression is malformed."""


class FormulaError(ReproError):
    """An FO+TC formula is malformed or unsafe to evaluate."""


class AggregationError(ReproError):
    """An aggregate rule or path summarization is invalid."""


class StoreError(ReproError):
    """Base class for HAM storage errors."""


class TransactionError(StoreError):
    """Invalid transaction usage (e.g. commit without begin)."""


class ServiceError(ReproError):
    """Base class for query-service errors.

    Attributes:
        code: stable machine-readable error code carried on the wire.
    """

    code = "service_error"


class ProtocolError(ServiceError):
    """A request is not valid JSON or not a well-formed service request."""

    code = "protocol_error"


class QueryTimeout(ServiceError):
    """A request exceeded its evaluation deadline."""

    code = "timeout"


class ResultTooLarge(ServiceError):
    """A result exceeded the configured row or byte budget."""

    code = "result_too_large"


class ReadOnlyError(ServiceError):
    """A write was sent to a read-only (replica) service.

    Carries the primary's address in :attr:`primary` when the replica knows
    it, so routers can redirect instead of failing.
    """

    code = "read_only"

    def __init__(self, message, primary=None):
        super().__init__(message)
        self.primary = primary


class ReplicaStale(ServiceError):
    """A read carried ``min_version`` and the replica could not catch up to
    it within its bounded wait; the caller should retry against the primary
    (or another replica)."""

    code = "replica_stale"


class NotMaintainable(ServiceError):
    """A subscription targeted a query whose view cannot be incrementally
    maintained (aggregation/summarization, or a plan DRed rejects) and the
    client did not opt into the diff-based fallback.

    Carries the human-readable :attr:`reason` so clients can decide whether
    to retry with ``allow_fallback``.
    """

    code = "not_maintainable"

    def __init__(self, message, reason=None):
        super().__init__(message)
        self.reason = reason


class SubscriptionError(ServiceError):
    """Invalid subscription usage: unknown subscription id, subscribing on a
    retrying client connection, or a subscription the server had to close."""

    code = "subscription_error"
