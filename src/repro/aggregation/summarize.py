"""Path summarization: aggregate a semiring value along all paths.

Implements the Section 4 capability "summarize information along paths"
(e.g. Example 4.1's *earlier-start*: the longest sum of durations over all
paths between two tasks).  Two solvers:

- fixpoint iteration for idempotent, monotone-bounded semirings (works on
  cyclic graphs; Bellman-Ford style);
- topological dynamic programming for the others (requires a DAG; raises
  :class:`AggregationError` on a cycle).
"""

from __future__ import annotations

from collections import defaultdict

from repro.aggregation.semiring import Semiring, semiring_by_name
from repro.errors import AggregationError
from repro.graphs.algorithms import topological_sort


def _normalize_edges(edges):
    """Accepts ``[(u, v, w)]`` triples; returns adjacency with weights."""
    adjacency = defaultdict(list)
    nodes = set()
    for u, v, w in edges:
        adjacency[u].append((v, w))
        nodes.add(u)
        nodes.add(v)
    return adjacency, nodes


def summarize_paths(edges, semiring, include_empty=False):
    """All-pairs path summary: ``{(u, v): value}`` over non-trivial paths.

    Args:
        edges: iterable of ``(source, target, weight)`` triples.
        semiring: a :class:`Semiring` or standard name ("shortest", ...).
        include_empty: also include ``(u, u): one`` for every node (the
            zero-length path), Kleene-star style.

    Only pairs with at least one path appear in the result (the semiring
    ``zero`` is never stored).
    """
    if isinstance(semiring, str):
        semiring = semiring_by_name(semiring)
    adjacency, nodes = _normalize_edges(edges)
    if semiring.idempotent and semiring.monotone_bounded:
        table = _fixpoint_all_pairs(adjacency, nodes, semiring)
    else:
        table = _dag_all_pairs(adjacency, nodes, semiring)
    if include_empty:
        for node in nodes:
            table[(node, node)] = semiring.plus(
                table.get((node, node), semiring.zero), semiring.one
            )
    return dict(table)


def summarize_from(source, edges, semiring, include_empty=False):
    """Single-source path summary: ``{target: value}``."""
    if isinstance(semiring, str):
        semiring = semiring_by_name(semiring)
    adjacency, nodes = _normalize_edges(edges)
    if semiring.idempotent and semiring.monotone_bounded:
        distances = _fixpoint_single_source(source, adjacency, semiring)
    else:
        distances = _dag_single_source(source, adjacency, nodes, semiring)
    if include_empty:
        distances[source] = semiring.plus(
            distances.get(source, semiring.zero), semiring.one
        )
    return distances


# ------------------------------------------------------------------ solvers


def _fixpoint_single_source(source, adjacency, semiring):
    values = {}
    # Seed with one-edge paths, then relax to a fixpoint.
    frontier = set()
    for target, weight in adjacency.get(source, ()):
        candidate = semiring.times(semiring.one, weight)
        _improve(values, target, candidate, semiring, frontier)
    while frontier:
        node = frontier.pop()
        base = values[node]
        for target, weight in adjacency.get(node, ()):
            _improve(values, target, semiring.times(base, weight), semiring, frontier)
    return values


def _improve(values, node, candidate, semiring, frontier):
    current = values.get(node, semiring.zero)
    improved = semiring.plus(current, candidate)
    if improved != current or node not in values:
        values[node] = improved
        frontier.add(node)


def _fixpoint_all_pairs(adjacency, nodes, semiring):
    table = {}
    for node in nodes:
        for target, value in _fixpoint_single_source(node, adjacency, semiring).items():
            table[(node, target)] = value
    return table


def _dag_order(adjacency, nodes):
    plain = {node: {t for t, _w in targets} for node, targets in adjacency.items()}
    for node in nodes:
        plain.setdefault(node, set())
    try:
        return topological_sort(plain)
    except ValueError:
        raise AggregationError(
            "path summarization with a non-idempotent or unbounded semiring "
            "(e.g. longest path, path count) requires an acyclic graph"
        ) from None


def _dag_single_source(source, adjacency, nodes, semiring):
    order = _dag_order(adjacency, nodes)
    values = {}
    for node in order:
        if node == source:
            base = semiring.one
        elif node in values:
            base = values[node]
        else:
            continue
        for target, weight in adjacency.get(node, ()):
            candidate = semiring.times(base, weight)
            values[target] = semiring.plus(values.get(target, semiring.zero), candidate)
    return values


def _dag_all_pairs(adjacency, nodes, semiring):
    table = {}
    for node in nodes:
        for target, value in _dag_single_source(node, adjacency, nodes, semiring).items():
            table[(node, target)] = value
    return table


# --------------------------------------------------------- database facade


def weighted_edges_from_database(database, predicate, weight_position=2):
    """Extract ``(u, v, w)`` triples from a relation ``p(u, v, ..., w, ...)``.

    Default shape: arity-3 relation with the weight in the third column.
    """
    triples = []
    for row in database.facts(predicate):
        if len(row) <= weight_position:
            raise AggregationError(
                f"relation {predicate!r} has arity {len(row)}; no column "
                f"{weight_position} to use as weight"
            )
        triples.append((row[0], row[1], row[weight_position]))
    return triples


def path_summarize(database, predicate, semiring, out_predicate=None, weight_position=2):
    """Summarize a weighted edge relation into a new relation.

    Computes ``{(u, v): value}`` with :func:`summarize_paths` over the
    relation *predicate* and stores it as *out_predicate* (default
    ``<predicate>-summary``) with arity 3.  Returns the modified database
    copy.
    """
    edges = weighted_edges_from_database(database, predicate, weight_position)
    table = summarize_paths(edges, semiring)
    name = out_predicate or f"{predicate}-summary"
    result = database.copy()
    result.add_facts(name, [(u, v, value) for (u, v), value in table.items()])
    return result
