"""Aggregation and path summarization (Section 4 of the paper)."""

from repro.aggregation.aggregates import (
    AGGREGATE_FUNCTIONS,
    AggregateEngine,
    AggregateProgram,
    AggregateRule,
    AggregateTerm,
    PathSummaryRule,
    evaluate_with_aggregates,
)
from repro.aggregation.semiring import (
    BOOLEAN,
    COUNT_PATHS,
    MAX_MIN,
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    STANDARD_SEMIRINGS,
    Semiring,
    semiring_by_name,
)
from repro.aggregation.summarize import (
    path_summarize,
    summarize_from,
    summarize_paths,
    weighted_edges_from_database,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "AggregateEngine",
    "AggregateProgram",
    "AggregateRule",
    "AggregateTerm",
    "BOOLEAN",
    "COUNT_PATHS",
    "MAX_MIN",
    "MAX_PLUS",
    "MAX_TIMES",
    "MIN_PLUS",
    "PathSummaryRule",
    "STANDARD_SEMIRINGS",
    "Semiring",
    "evaluate_with_aggregates",
    "path_summarize",
    "semiring_by_name",
    "summarize_from",
    "summarize_paths",
    "weighted_edges_from_database",
]
