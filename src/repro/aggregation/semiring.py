"""Semiring path algebra for path summarization (Section 4).

A path summarization — "the longest sum of durations along all paths", "the
length of a shortest path" — is a semiring computation: edge weights combine
along a path with ⊗ and across paths with ⊕.  Each :class:`Semiring` bundles
the two operations with their identities and closure properties; the solver
in :mod:`repro.aggregation.summarize` picks an algorithm accordingly.
"""

from __future__ import annotations

import math


class Semiring:
    """A semiring ``(⊕, ⊗, zero, one)`` over edge weights.

    Attributes:
        plus: the across-paths combinator ⊕ (binary callable).
        times: the along-path combinator ⊗ (binary callable).
        zero: identity of ⊕ (the value for "no path").
        one: identity of ⊗ (the value of the empty path).
        idempotent: whether ``a ⊕ a == a`` (enables fixpoint iteration on
            cyclic graphs).
        monotone_bounded: whether repeated ⊗ along a cycle can never improve
            a ⊕-selected value (e.g. min-plus with non-negative weights);
            cyclic graphs are solvable iff idempotent and monotone_bounded.
    """

    def __init__(self, name, plus, times, zero, one, idempotent, monotone_bounded):
        self.name = name
        self.plus = plus
        self.times = times
        self.zero = zero
        self.one = one
        self.idempotent = idempotent
        self.monotone_bounded = monotone_bounded

    def plus_all(self, values):
        out = self.zero
        for value in values:
            out = self.plus(out, value)
        return out

    def __repr__(self):
        return f"Semiring({self.name})"


MIN_PLUS = Semiring(
    "min-plus (shortest path)",
    plus=min,
    times=lambda a, b: a + b,
    zero=math.inf,
    one=0,
    idempotent=True,
    monotone_bounded=True,  # for non-negative weights
)

MAX_PLUS = Semiring(
    "max-plus (longest path)",
    plus=max,
    times=lambda a, b: a + b,
    zero=-math.inf,
    one=0,
    idempotent=True,
    monotone_bounded=False,  # positive cycles diverge: DAG only
)

MAX_MIN = Semiring(
    "max-min (widest / bottleneck path)",
    plus=max,
    times=min,
    zero=-math.inf,
    one=math.inf,
    idempotent=True,
    monotone_bounded=True,
)

COUNT_PATHS = Semiring(
    "count (number of paths)",
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
    zero=0,
    one=1,
    idempotent=False,
    monotone_bounded=False,  # DAG only
)

BOOLEAN = Semiring(
    "boolean (reachability)",
    plus=lambda a, b: a or b,
    times=lambda a, b: a and b,
    zero=False,
    one=True,
    idempotent=True,
    monotone_bounded=True,
)

MAX_TIMES = Semiring(
    "max-times (most reliable path, probabilities in [0,1])",
    plus=max,
    times=lambda a, b: a * b,
    zero=0.0,
    one=1.0,
    idempotent=True,
    monotone_bounded=True,  # weights <= 1 cannot improve around a cycle
)

STANDARD_SEMIRINGS = {
    "shortest": MIN_PLUS,
    "longest": MAX_PLUS,
    "widest": MAX_MIN,
    "count": COUNT_PATHS,
    "reach": BOOLEAN,
    "reliable": MAX_TIMES,
}


def semiring_by_name(name):
    """Look up one of the standard semirings by its short name."""
    try:
        return STANDARD_SEMIRINGS[name]
    except KeyError:
        known = ", ".join(sorted(STANDARD_SEMIRINGS))
        raise KeyError(f"unknown semiring {name!r}; known: {known}") from None
