"""Datalog with stratified aggregate functions (Section 4).

The paper extends Datalog with aggregates while keeping polynomial data
complexity (capturing Klug's first-order queries with aggregates).  We
implement aggregate rules of the form::

    p(G1, ..., Gk, agg<V>) :- body

where the ``Gi`` are group-by terms and ``agg`` is one of count, sum, min,
max, avg (count may omit the variable: ``count<*>``).  Aggregation
stratifies like negation: the head depends *negatively* on every body
predicate, so aggregates through recursion are rejected.
"""

from __future__ import annotations

from collections import defaultdict

from repro.datalog.ast import Atom, BodyLiteral, Literal, Program, Rule
from repro.datalog.engine import Engine
from repro.datalog.safety import check_rule_safety
from repro.datalog.stratify import stratify
from repro.datalog.terms import Constant, Variable, make_term
from repro.errors import AggregationError

AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")


class AggregateTerm:
    """An aggregate head position: ``AggregateTerm('max', 'V')``."""

    __slots__ = ("function", "variable")

    def __init__(self, function, variable=None):
        if function not in AGGREGATE_FUNCTIONS:
            raise AggregationError(f"unknown aggregate function {function!r}")
        if variable is None:
            if function != "count":
                raise AggregationError(f"{function} needs a variable")
            self.variable = None
        else:
            self.variable = (
                variable if isinstance(variable, Variable) else Variable(str(variable))
            )
        self.function = function

    def __repr__(self):
        return f"AggregateTerm({self})"

    def __str__(self):
        inner = self.variable.name if self.variable is not None else "*"
        return f"{self.function}<{inner}>"


class AggregateRule:
    """A rule whose head mixes group-by terms and aggregate terms."""

    def __init__(self, predicate, head_terms, body):
        self.predicate = str(predicate)
        self.head_terms = tuple(
            t if isinstance(t, AggregateTerm) else make_term(t) for t in head_terms
        )
        self.body = tuple(body)
        for element in self.body:
            if not isinstance(element, BodyLiteral):
                raise AggregationError(
                    f"aggregate rule body element must be a body literal: {element!r}"
                )
        self.aggregates = [
            (i, t) for i, t in enumerate(self.head_terms) if isinstance(t, AggregateTerm)
        ]
        if not self.aggregates:
            raise AggregationError("aggregate rule has no aggregate term; use a plain Rule")
        self.group_terms = [
            (i, t)
            for i, t in enumerate(self.head_terms)
            if not isinstance(t, AggregateTerm)
        ]

    @property
    def arity(self):
        return len(self.head_terms)

    def body_predicates(self):
        return {e.predicate for e in self.body if isinstance(e, Literal)}

    def needed_variables(self):
        out = {t for _i, t in self.group_terms if isinstance(t, Variable)}
        for _i, aggregate in self.aggregates:
            if aggregate.variable is not None:
                out.add(aggregate.variable)
        return out

    def __repr__(self):
        return f"AggregateRule({self})"

    def __str__(self):
        head_args = ", ".join(str(t) for t in self.head_terms)
        body = ", ".join(str(e) for e in self.body)
        return f"{self.predicate}({head_args}) :- {body}."


class PathSummaryRule:
    """A Section 4 path summarization as a rule: the output relation
    ``out(U, V, S)`` holds the semiring summary over all paths of the
    weighted edge relation ``weight(U, V, W)``.

    Stratifies like an aggregate: the output depends negatively on the
    weight predicate, so summarizing through recursion is rejected.
    """

    def __init__(self, predicate, weight_predicate, semiring, include_empty=False,
                 weight_position=2):
        from repro.aggregation.semiring import Semiring, semiring_by_name

        self.predicate = str(predicate)
        self.weight_predicate = str(weight_predicate)
        self.semiring = (
            semiring if isinstance(semiring, Semiring) else semiring_by_name(semiring)
        )
        self.include_empty = bool(include_empty)
        self.weight_position = int(weight_position)

    @property
    def arity(self):
        return 3

    def body_predicates(self):
        return {self.weight_predicate}

    def __repr__(self):
        return (
            f"PathSummaryRule({self.predicate} = {self.semiring.name} over "
            f"{self.weight_predicate})"
        )

    def __str__(self):
        return (
            f"{self.predicate}(U, V, S) :- S = {self.semiring.name} "
            f"over paths of {self.weight_predicate}(U, V, W)."
        )


class AggregateProgram:
    """A mixed program of plain rules, aggregate rules, and path summaries."""

    def __init__(self, rules=()):
        self.plain_rules = []
        self.aggregate_rules = []
        self.summary_rules = []
        for rule in rules:
            self.add(rule)

    def add(self, rule):
        if isinstance(rule, AggregateRule):
            self.aggregate_rules.append(rule)
        elif isinstance(rule, PathSummaryRule):
            self.summary_rules.append(rule)
        elif isinstance(rule, Rule):
            self.plain_rules.append(rule)
        else:
            raise TypeError(
                f"expected Rule, AggregateRule, or PathSummaryRule, "
                f"got {type(rule).__name__}"
            )
        return rule

    @property
    def idb_predicates(self):
        out = {rule.head.predicate for rule in self.plain_rules}
        out |= {rule.predicate for rule in self.aggregate_rules}
        out |= {rule.predicate for rule in self.summary_rules}
        return out

    def __iter__(self):
        return iter(self.plain_rules + self.aggregate_rules + self.summary_rules)

    def __len__(self):
        return (
            len(self.plain_rules)
            + len(self.aggregate_rules)
            + len(self.summary_rules)
        )


def _aggregate(function, values):
    if function == "count":
        return len(values)
    if not values:
        return None  # empty groups produce no output tuple
    if function == "sum":
        return sum(values)
    if function == "min":
        return min(values)
    if function == "max":
        return max(values)
    if function == "avg":
        return sum(values) / len(values)
    raise AggregationError(f"unknown aggregate {function!r}")  # pragma: no cover


class AggregateEngine:
    """Stratified evaluation of :class:`AggregateProgram`.

    Aggregation edges count as negative in the dependence graph, so an
    aggregate over a predicate mutually recursive with the aggregate's own
    head raises :class:`~repro.errors.StratificationError`.
    """

    def __init__(self, method="seminaive"):
        self.method = method

    def evaluate(self, program, edb):
        if isinstance(program, (list, tuple)):
            program = AggregateProgram(program)
        shadow, negative_extra = self._shadow_program(program)
        strata = stratify(shadow, negative_extra=negative_extra)
        levels = sorted({strata[p] for p in program.idb_predicates}) if len(program) else []
        database = edb.copy()
        for level in levels:
            # Aggregate/summary heads sit strictly above their inputs, so
            # within a level their bodies are already complete.
            for rule in program.summary_rules:
                if strata.get(rule.predicate) == level:
                    self._apply_summary(rule, database)
            for rule in program.aggregate_rules:
                if strata.get(rule.predicate) == level:
                    self._apply_aggregate(rule, database)
            level_rules = [
                rule
                for rule in program.plain_rules
                if strata.get(rule.head.predicate) == level
            ]
            if level_rules:
                engine = Engine(method=self.method)
                database = engine.evaluate(Program(level_rules), database)
        return database

    # ------------------------------------------------------------ internals

    @staticmethod
    def _shadow_program(program):
        """A plain Program mirroring the aggregate program's dependencies,
        with forced-negative edges for aggregate rules."""
        shadow_rules = list(program.plain_rules)
        negative_extra = defaultdict(set)
        for rule in program.aggregate_rules:
            head_vars = sorted(rule.needed_variables(), key=lambda v: v.name)
            head = Atom(rule.predicate, tuple(head_vars) or (Constant(0),))
            literals = tuple(e for e in rule.body if isinstance(e, Literal))
            shadow_rules.append(Rule(head, literals))
            negative_extra[rule.predicate] |= rule.body_predicates()
        for rule in program.summary_rules:
            # Shadow rule for stratification only (never evaluated): the
            # summary output depends on its weight relation.
            u, v, w = Variable("U"), Variable("V"), Variable("W")
            head = Atom(rule.predicate, (u, v, w))
            body = (Literal(Atom(rule.weight_predicate, (u, v, w))),)
            shadow_rules.append(Rule(head, body))
            negative_extra[rule.predicate] |= rule.body_predicates()
        return Program(shadow_rules), dict(negative_extra)

    def _apply_aggregate(self, rule, database):
        # The probe head carries *every* body variable so that bindings
        # differing only in a non-grouped variable stay distinct rows
        # (count<*> counts bindings, not projected duplicates).
        body_variables = set()
        for element in rule.body:
            body_variables |= {
                v for v in element.variables() if not v.is_anonymous
            }
        needed = sorted(body_variables | rule.needed_variables(), key=lambda v: v.name)
        probe_head = Atom("__agg_probe__", tuple(needed))
        probe_rule = Rule(probe_head, rule.body)
        check_rule_safety(probe_rule)
        engine = Engine(method=self.method)
        result = engine.evaluate(Program([probe_rule]), database)
        rows = result.facts("__agg_probe__")
        position = {variable: i for i, variable in enumerate(needed)}

        groups = defaultdict(list)
        for row in rows:
            key = []
            for _i, term in rule.group_terms:
                if isinstance(term, Variable):
                    key.append(row[position[term]])
                else:
                    key.append(term.value)
            groups[tuple(key)].append(row)

        relation = database.relation(rule.predicate, rule.arity)
        for key, members in groups.items():
            output = []
            key_iter = iter(key)
            ok = True
            for index, term in enumerate(rule.head_terms):
                if isinstance(term, AggregateTerm):
                    if term.variable is None:
                        value = _aggregate(term.function, members)
                    else:
                        values = [m[position[term.variable]] for m in members]
                        value = _aggregate(term.function, values)
                    if value is None:
                        ok = False
                        break
                    output.append(value)
                else:
                    output.append(next(key_iter))
            if ok:
                relation.add(tuple(output))


    def _apply_summary(self, rule, database):
        from repro.aggregation.summarize import (
            summarize_paths,
            weighted_edges_from_database,
        )

        if rule.weight_predicate in database:
            edges = weighted_edges_from_database(
                database, rule.weight_predicate, rule.weight_position
            )
        else:
            edges = []
        table = summarize_paths(edges, rule.semiring, include_empty=rule.include_empty)
        relation = database.relation(rule.predicate, 3)
        for (u, v), value in table.items():
            relation.add((u, v, value))


def evaluate_with_aggregates(program, edb, method="seminaive"):
    """One-shot convenience around :class:`AggregateEngine`."""
    return AggregateEngine(method=method).evaluate(program, edb)
