"""G+ queries: the predecessor language GraphLog evolved from ([CMW88]).

A G+ query is a pair of graphs: a *pattern* graph whose edges are labeled by
regular expressions over the database's edge labels, and a *summary* graph
that says what to construct for each match.  The Section 5 prototype
evaluates the single-edge case ("edge queries"); this module implements the
general pattern/summary form over the RPQ engine:

1. each pattern edge is evaluated as a regular path query, yielding a binary
   relation over node bindings;
2. the per-edge relations are joined on shared variables (constants pin);
3. each complete binding instantiates the summary edges, whose union is a
   new :class:`LabeledMultigraph` — exactly the prototype's "turn the
   answers into a new graph which can then itself be queried".
"""

from __future__ import annotations

from itertools import product

from repro.datalog.terms import Constant, Variable, make_term
from repro.errors import QueryGraphError
from repro.graphs.multigraph import LabeledMultigraph
from repro.rpq.evaluate import RPQEvaluator, default_label_key
from repro.rpq.regex import Regex, parse_regex
from repro.rpq.simple_paths import regular_simple_paths


def _as_regex(value):
    if isinstance(value, Regex):
        return value
    return parse_regex(str(value))


class PatternEdge:
    __slots__ = ("source", "target", "regex")

    def __init__(self, source, target, regex):
        self.source = make_term(source)
        self.target = make_term(target)
        self.regex = _as_regex(regex)

    def __repr__(self):
        return f"PatternEdge({self.source} -[{self.regex}]-> {self.target})"


class SummaryEdge:
    __slots__ = ("source", "target", "label")

    def __init__(self, source, target, label):
        self.source = make_term(source)
        self.target = make_term(target)
        self.label = label

    def __repr__(self):
        return f"SummaryEdge({self.source} -[{self.label}]-> {self.target})"


class GPlusQuery:
    """Builder for G+ queries.

    Example (the RT-scale query of Figure 12)::

        q = GPlusQuery()
        q.pattern("rome", "C", "CP+")
        q.pattern("C", "tokyo", "CP+")
        q.summary("C", "C", "RT-scale")
    """

    def __init__(self, name=None):
        self.name = name
        self.pattern_edges = []
        self.summary_edges = []

    def pattern(self, source, target, regex):
        edge = PatternEdge(source, target, regex)
        self.pattern_edges.append(edge)
        return edge

    def summary(self, source, target, label):
        edge = SummaryEdge(source, target, label)
        self.summary_edges.append(edge)
        return edge

    # ----------------------------------------------------------- analysis

    def variables(self):
        out = []
        for edge in self.pattern_edges + self.summary_edges:
            for term in (edge.source, edge.target):
                if isinstance(term, Variable) and term not in out:
                    out.append(term)
        return out

    def validate(self):
        if not self.pattern_edges:
            raise QueryGraphError("a G+ query needs at least one pattern edge")
        pattern_vars = set()
        for edge in self.pattern_edges:
            pattern_vars.update(
                t for t in (edge.source, edge.target) if isinstance(t, Variable)
            )
        for edge in self.summary_edges:
            loose = {
                t
                for t in (edge.source, edge.target)
                if isinstance(t, Variable) and t not in pattern_vars
            }
            if loose:
                names = ", ".join(sorted(v.name for v in loose))
                raise QueryGraphError(
                    f"summary variable(s) {names} do not occur in the pattern"
                )
        return self


class GPlusEngine:
    """Evaluates G+ queries over a labeled multigraph."""

    def __init__(self, graph, label_key=default_label_key):
        self.graph = graph
        self.evaluator = RPQEvaluator(graph, label_key)

    def bindings(self, query):
        """All variable bindings satisfying the pattern.

        Returns a list of ``{Variable: node}`` dicts (deduplicated).
        """
        query.validate()
        # Evaluate each edge into a set of (source_value, target_value)
        # pairs honouring constants, then join left to right.
        partials = [dict()]
        for edge in query.pattern_edges:
            pairs = self._edge_pairs(edge, partials)
            next_partials = []
            seen = set()
            for binding in partials:
                source_bound = self._value(edge.source, binding)
                target_bound = self._value(edge.target, binding)
                for source_value, target_value in pairs:
                    if source_bound is not None and source_value != source_bound:
                        continue
                    if target_bound is not None and target_value != target_bound:
                        continue
                    extended = dict(binding)
                    if isinstance(edge.source, Variable):
                        extended[edge.source] = source_value
                    if isinstance(edge.target, Variable):
                        # A loop edge (X)-[r]->(X) binds the same variable
                        # on both sides: the values must agree.
                        if extended.get(edge.target, target_value) != target_value:
                            continue
                        extended[edge.target] = target_value
                    key = tuple(sorted((v.name, str(val)) for v, val in extended.items()))
                    if key not in seen:
                        seen.add(key)
                        next_partials.append(extended)
            partials = next_partials
            if not partials:
                return []
        return partials

    def summary_graph(self, query):
        """The union of instantiated summary edges over all bindings."""
        out = LabeledMultigraph()
        emitted = set()
        for binding in self.bindings(query):
            for edge in query.summary_edges:
                source = self._instantiate(edge.source, binding)
                target = self._instantiate(edge.target, binding)
                key = (source, target, edge.label)
                if key not in emitted:
                    emitted.add(key)
                    out.add_edge(source, target, edge.label)
        return out

    def witness_paths(self, query, binding):
        """One witness path per pattern edge for a given binding."""
        paths = []
        for edge in query.pattern_edges:
            source = self._instantiate(edge.source, binding)
            target = self._instantiate(edge.target, binding)
            paths.append(self.evaluator.witness_path(edge.regex, source, target))
        return paths

    def simple_path_answers(self, query, max_paths_per_edge=20):
        """[MW89]-style: bindings witnessed by *simple* paths on every edge.

        Exponential in the worst case; bounded by ``max_paths_per_edge``.
        """
        answers = []
        for binding in self.bindings(query):
            witnessed = True
            for edge in query.pattern_edges:
                source = self._instantiate(edge.source, binding)
                target = self._instantiate(edge.target, binding)
                paths = regular_simple_paths(
                    self.graph,
                    edge.regex,
                    source,
                    target=target,
                    max_paths=max_paths_per_edge,
                )
                if not paths:
                    witnessed = False
                    break
            if witnessed:
                answers.append(binding)
        return answers

    # ------------------------------------------------------------ helpers

    @staticmethod
    def _value(term, binding):
        if isinstance(term, Constant):
            return term.value
        return binding.get(term)

    @staticmethod
    def _instantiate(term, binding):
        if isinstance(term, Constant):
            return term.value
        return binding[term]

    def _edge_pairs(self, edge, partials):
        """Pairs for one edge, seeding the product search from known
        sources when the edge's source side is already pinned."""
        sources = set()
        pinned = True
        if isinstance(edge.source, Constant):
            sources = {edge.source.value}
        else:
            for binding in partials:
                value = binding.get(edge.source)
                if value is None:
                    pinned = False
                    break
                sources.add(value)
            if not partials:
                pinned = False
        if pinned and sources:
            return self.evaluator.pairs(edge.regex, sources=sources)
        return self.evaluator.pairs(edge.regex)


def evaluate_gplus(graph, query):
    """One-shot: bindings plus the summary graph."""
    engine = GPlusEngine(graph)
    bindings = engine.bindings(query)
    return bindings, engine.summary_graph(query)
