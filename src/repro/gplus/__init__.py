"""G+ compatibility layer: the regular-expression pattern/summary queries of
[CMW88], the language GraphLog evolved from (Section 1)."""

from repro.gplus.query import (
    GPlusEngine,
    GPlusQuery,
    PatternEdge,
    SummaryEdge,
    evaluate_gplus,
)

__all__ = [
    "GPlusEngine",
    "GPlusQuery",
    "PatternEdge",
    "SummaryEdge",
    "evaluate_gplus",
]
