"""Command-line interface: ``python -m repro <command> ...``.

Commands:

- ``figure NAME``              print a reproduced paper figure (fig01..fig12)
- ``query QUERY.gl DATA.dl``   run a GraphLog DSL query over a fact file
- ``datalog PROGRAM.dl``       evaluate a Datalog program (facts inline or
                               via ``--data``), print derived relations
- ``translate PROGRAM.dl``     run Algorithm 3.1 and print the TC program
- ``rpq REGEX DATA.dl``        evaluate a regular path query over the graph
                               encoding of a fact file
- ``dot QUERY.gl``             render a GraphLog query as Graphviz DOT
- ``optimize PROGRAM.dl``      dedupe/inline/prune a Datalog program
- ``magic PROGRAM.dl GOAL``    goal-directed (magic sets) evaluation
- ``export DATA.dl OUT.json``  convert a fact file to a JSON graph
- ``serve``                    run the concurrent query service (TCP server);
                               ``--replica-of HOST:PORT`` makes it a read-only
                               replica of a running primary
- ``route``                    read/write router: writes to the primary, reads
                               fanned across replicas (read-your-writes kept);
                               fails writes over to a promoted replica
- ``promote``                  flip a running replica into a writable primary
                               under a fresh epoch (operator failover step)
- ``call OP [ARG]``            send one request to a running server
- ``top``                      live terminal dashboard over a running server
- ``explain QUERY.gl``         trace a query end to end (parse, translate,
                               stratify, per-stratum fixpoint iterations)
                               locally over ``--data`` or against a server
- ``shell``                    interactive session

Fact files are Datalog programs whose rules are all facts
(``parent(ann, bob).``).

Logging: the library itself never installs handlers; this entry point is
the one place handlers are configured (``--log-level``, ``--log-json``).
``serve`` defaults to ``info``, everything else to ``warning``.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_program
from repro.graphs.bridge import graph_from_database
from repro.rpq.evaluate import RPQEvaluator
from repro.translation.sl_to_stc import sl_to_stc
from repro.visual.ascii_art import render_relation
from repro.visual.dot import graphical_query_to_dot


def _load_facts(path):
    with open(path) as handle:
        program = parse_program(handle.read())
    database = Database()
    for rule in program:
        if not rule.is_fact:
            raise SystemExit(f"{path}: expected facts only, found rule {rule}")
        database.add_fact(rule.head.predicate, *(t.value for t in rule.head.args))
    return database


def _load_text(path):
    with open(path) as handle:
        return handle.read()


def cmd_figure(args):
    from repro.figures import ALL_FIGURES

    name = args.name if args.name.startswith("fig") else f"fig{int(args.name):02d}"
    module = ALL_FIGURES.get(name)
    if module is None:
        raise SystemExit(f"unknown figure {args.name!r}; known: {', '.join(sorted(ALL_FIGURES))}")
    print(module.render())
    return 0


def cmd_query(args):
    query = parse_graphical_query(_load_text(args.query))
    database = _load_facts(args.data)
    engine = GraphLogEngine(method=args.method)
    result = engine.run(query, database)
    predicates = sorted(query.idb_predicates)
    for predicate in predicates:
        rows = result.facts(predicate)
        print(render_relation(rows, title=f"{predicate} ({len(rows)} tuples)"))
    return 0


def cmd_datalog(args):
    program = parse_program(_load_text(args.program))
    database = _load_facts(args.data) if args.data else Database()
    result = evaluate(program, database, method=args.method)
    for predicate in sorted(program.idb_predicates):
        rows = result.facts(predicate)
        print(render_relation(rows, title=f"{predicate} ({len(rows)} tuples)"))
    return 0


def cmd_translate(args):
    program = parse_program(_load_text(args.program))
    result = sl_to_stc(program)
    print(result.program.pretty())
    return 0


def cmd_rpq(args):
    database = _load_facts(args.data)
    graph = graph_from_database(database)
    evaluator = RPQEvaluator(graph)
    if args.source:
        targets = evaluator.targets(args.regex, args.source)
        print(render_relation([(t,) for t in targets], title=f"targets of {args.regex!r} from {args.source}"))
    else:
        pairs = evaluator.pairs(args.regex)
        print(render_relation(pairs, title=f"pairs matching {args.regex!r}"))
    return 0


def cmd_optimize(args):
    from repro.datalog.optimize import optimize

    program = parse_program(_load_text(args.program))
    roots = args.roots.split(",") if args.roots else None
    print(optimize(program, roots=roots).pretty())
    return 0


def cmd_magic(args):
    from repro.datalog.magic import magic_query
    from repro.datalog.parser import parse_atom

    program = parse_program(_load_text(args.program))
    database = _load_facts(args.data) if args.data else Database()
    goal = parse_atom(args.goal)
    answers, stats = magic_query(program, database, goal)
    print(render_relation(answers, title=f"{args.goal} ({len(answers)} answers)"))
    print(f"facts derived: {stats.facts_derived}")
    return 0


def cmd_export(args):
    from repro.io import save_graph

    database = _load_facts(args.data)
    graph = graph_from_database(database)
    save_graph(graph, args.out)
    print(f"wrote {graph.node_count()} nodes, {graph.edge_count()} edges to {args.out}")
    return 0


def cmd_serve(args):
    import asyncio

    from repro.graphs.bridge import graph_from_database
    from repro.service.server import ServiceConfig, ServiceServer

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        timeout=args.timeout,
        max_rows=args.max_rows,
        max_bytes=args.max_bytes,
        plan_cache_size=args.plan_cache,
        result_cache_size=args.result_cache,
        data_dir=args.data_dir,
        fsync=args.fsync,
        fsync_interval=args.fsync_interval,
        checkpoint_every=args.checkpoint_every,
        metrics_host=args.metrics_host,
        metrics_port=args.metrics_port,
        slow_ms=args.slow_ms,
        slowlog_capacity=args.slowlog_capacity,
        slowlog_path=args.slowlog_file,
        replica_of=args.replica_of,
        repl_wait_ms=args.repl_wait_ms,
        repl_max_lag=args.max_lag,
        repl_disconnect_grace=args.disconnect_grace,
        version_wait_ms=args.version_wait_ms,
        engine=args.engine,
        sub_queue_max=args.sub_queue_max,
        sub_policy=args.sub_policy,
        trace_sample=args.trace_sample,
        span_path=args.span_file,
    )
    # With --data-dir the service recovers the store from disk; --data then
    # only seeds a store that recovered empty (a fresh data directory).
    server = ServiceServer(config=config)
    store = server.service.store
    if args.data and store.version == 0:
        store.load_graph(graph_from_database(_load_facts(args.data)))

    async def _run():
        await server.start()
        durable = f", data dir {args.data_dir} (fsync={args.fsync})" if args.data_dir else ""
        role = f", replica of {args.replica_of}" if args.replica_of else ""
        print(f"repro service listening on {server.host}:{server.port} "
              f"(store version {store.version}, engine {args.engine}"
              f"{durable}{role})", flush=True)
        if server.metrics_port is not None:
            print(f"telemetry on http://{args.metrics_host}:{server.metrics_port}"
                  f"/metrics (and /healthz)", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.service.close()
    return 0


def cmd_route(args):
    import time as _time

    from repro.replication.router import RouterServer

    router = RouterServer(
        args.primary,
        args.replica,
        host=args.host,
        port=args.port,
        timeout=args.timeout,
        retries=args.retries,
        eject_seconds=args.eject_seconds,
        trace_sample=args.trace_sample,
        metrics_host=args.metrics_host,
        metrics_port=args.metrics_port,
    ).start()
    replicas = ", ".join(args.replica) if args.replica else "(none)"
    print(f"repro router listening on {router.host}:{router.port} "
          f"(primary {args.primary}, replicas {replicas})", flush=True)
    if router.metrics_port is not None:
        print(f"telemetry on http://{args.metrics_host}:{router.metrics_port}"
              f"/metrics (and /healthz)", flush=True)
    try:
        while True:
            _time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        router.stop()
    return 0


def cmd_promote(args):
    import json

    from repro.service.client import ServiceClient

    with ServiceClient(host=args.host, port=args.connect_port) as client:
        result = client.promote()
    print(json.dumps(result, indent=2, sort_keys=True))
    print(f"promoted: {args.host}:{args.connect_port} is now a writable "
          f"primary at version {result['applied_version']} "
          f"(epoch {result['epoch']}, was replicating {result['promoted_from']})")
    return 0


def cmd_call(args):
    import json

    from repro.service.client import ServiceClient

    payload = {}
    if args.op in ("graphlog", "datalog"):
        if not args.arg:
            raise SystemExit(f"call {args.op} needs a query file argument")
        payload["query"] = _load_text(args.arg)
    elif args.op in ("explain", "profile"):
        if not args.arg:
            raise SystemExit(f"call {args.op} needs a query file argument")
        target = args.target or "graphlog"
        payload["target"] = target
        payload["query"] = args.arg if target == "rpq" else _load_text(args.arg)
    elif args.op == "rpq":
        if not args.arg:
            raise SystemExit("call rpq needs a regex argument")
        payload["query"] = args.arg
    elif args.op == "update":
        if not args.edge:
            raise SystemExit("call update needs at least one --edge SOURCE LABEL TARGET")
        payload["edges"] = [[s, l, t] for s, l, t in args.edge]
    elif args.op == "slowlog":
        if args.limit is not None:
            payload["limit"] = args.limit
    elif args.op == "trace_get":
        if not args.arg:
            raise SystemExit("call trace_get needs a trace id argument")
        payload["trace_id"] = args.arg
    for field in ("source", "predicate", "method", "timeout"):
        value = getattr(args, field, None)
        if value is not None:
            payload[field] = value

    with ServiceClient(host=args.host, port=args.connect_port) as client:
        response = client.call(args.op, **payload)
    if args.json or args.op in ("stats", "ping", "update", "profile", "checkpoint",
                                "slowlog", "promote", "trace_get", "cluster_stats"):
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    if args.op == "explain":
        print(response["result"]["text"])
        return 0
    relations = response["result"]["relations"]
    for name in sorted(relations):
        rows = [tuple(row) for row in relations[name]]
        print(render_relation(rows, title=f"{name} ({len(rows)} tuples)"))
    cache = response.get("cache")
    print(f"version={response.get('version')} cache={cache} "
          f"elapsed_ms={response.get('elapsed_ms')}")
    return 0


def cmd_explain(args):
    import json

    if args.connect_host is not None:
        from repro.service.client import ServiceClient

        query = args.query if args.op == "rpq" else _load_text(args.query)
        with ServiceClient(host=args.connect_host, port=args.connect_port) as client:
            result = client.explain(query, target=args.op, method=args.method)
    else:
        from repro.ham.store import HAMStore
        from repro.service.server import QueryService

        store = HAMStore()
        if args.data:
            store.load_graph(graph_from_database(_load_facts(args.data)))
        service = QueryService(store=store)
        query = args.query if args.op == "rpq" else _load_text(args.query)
        message = {"op": "explain", "target": args.op, "query": query}
        if args.method:
            message["method"] = args.method
        result = service.execute(message)["result"]
    if args.json:
        print(json.dumps(result["trace"], indent=2, sort_keys=True))
    else:
        print(result["text"])
        phases = ", ".join(f"{k}={v:.3f}ms" for k, v in result["phases"].items())
        print(f"rows: {result['count']}  phases: {phases}")
    return 0


def cmd_top(args):
    import json

    from repro.service.client import ServiceClient
    from repro.service.top import ClusterDashboard, TopDashboard

    with ServiceClient(host=args.host, port=args.connect_port) as client:
        if args.cluster:
            dashboard = ClusterDashboard(client, interval=args.interval)
        else:
            dashboard = TopDashboard(client, interval=args.interval)
        if args.once or args.json:
            if args.json:
                print(json.dumps(dashboard.snapshot(), indent=2, sort_keys=True))
            else:
                dashboard.tick()  # writes the frame to stdout itself
            return 0
        dashboard.run(iterations=args.iterations)
    return 0


def cmd_trace(args):
    import json

    from repro.obs.assemble import render_trace
    from repro.service.client import ServiceClient

    with ServiceClient(host=args.host, port=args.connect_port) as client:
        result = client.trace_get(args.trace_id)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0 if result.get("found") else 1
    if not result.get("found"):
        print(f"trace {args.trace_id}: no spans found "
              f"(evicted from every ring, or never sampled)")
        return 1
    print(render_trace(args.trace_id, result["spans"]), end="")
    sources = [n for n in result.get("nodes", ()) if n.get("error")]
    for node in sources:
        print(f"  (node {node.get('address', '?')} unreachable: {node['error']})")
    return 0


def cmd_watch(args):
    from repro.service.client import ServiceClient

    query = args.query if args.target == "rpq" else _load_text(args.query)
    client = ServiceClient(host=args.host, port=args.connect_port,
                           timeout=args.timeout)
    try:
        handle = client.subscribe(
            query,
            target=args.target,
            predicate=args.predicate,
            policy=args.policy,
            queue_max=args.queue_max,
            allow_fallback=args.allow_fallback or None,
        )
        mode = handle.mode
        if handle.fallback_reason:
            mode += f" ({handle.fallback_reason})"
        print(f"subscribed #{handle.id} at version {handle.version} "
              f"[{mode}, policy={handle.policy}]", flush=True)
        for name in sorted(handle.rows):
            rows = sorted(handle.rows[name])
            print(f"  {name}: {len(rows)} rows")
            for row in rows:
                print(f"    {tuple(row)}")
        remaining = args.count
        while remaining is None or remaining > 0:
            event = handle.next_event(timeout=None)
            if event["type"] == "closed":
                print(f"subscription closed: {event['reason']}", flush=True)
                return 1 if event["reason"] != "unsubscribed" else 0
            if event["type"] == "snapshot":
                tag = "resync" if event.get("resync") else "snapshot"
                print(f"v{event['version']} {tag}: "
                      f"{sum(len(r) for r in handle.rows.values())} rows",
                      flush=True)
            else:
                for name in sorted(event["inserted"]):
                    for row in sorted(event["inserted"][name]):
                        print(f"v{event['version']} + {name}{tuple(row)}", flush=True)
                for name in sorted(event["deleted"]):
                    for row in sorted(event["deleted"][name]):
                        print(f"v{event['version']} - {name}{tuple(row)}", flush=True)
            if remaining is not None:
                remaining -= 1
        handle.unsubscribe()
    except KeyboardInterrupt:
        print("stopped")
    finally:
        client.close()
    return 0


def cmd_shell(_args):
    from repro.shell import repl

    return repl() or 0


def cmd_dot(args):
    query = parse_graphical_query(_load_text(args.query))
    print(graphical_query_to_dot(query))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphLog (PODS 1990) reproduction toolkit",
    )
    parser.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error", "critical"),
                        help="handler level (default: info for serve, "
                             "warning otherwise)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit logs as JSON lines (one object per record, "
                             "with request_id)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_figure = sub.add_parser("figure", help="print a reproduced paper figure")
    p_figure.add_argument("name", help="fig01..fig12 (or just the number)")
    p_figure.set_defaults(func=cmd_figure)

    p_query = sub.add_parser("query", help="run a GraphLog query over a fact file")
    p_query.add_argument("query", help="GraphLog DSL file")
    p_query.add_argument("data", help="Datalog fact file")
    p_query.add_argument("--method", default="seminaive",
                         choices=("seminaive", "naive", "columnar"))
    p_query.set_defaults(func=cmd_query)

    p_datalog = sub.add_parser("datalog", help="evaluate a Datalog program")
    p_datalog.add_argument("program", help="Datalog program file")
    p_datalog.add_argument("--data", help="Datalog fact file", default=None)
    p_datalog.add_argument("--method", default="seminaive",
                          choices=("seminaive", "naive", "columnar"))
    p_datalog.set_defaults(func=cmd_datalog)

    p_translate = sub.add_parser("translate", help="Algorithm 3.1: SL -> STC")
    p_translate.add_argument("program", help="stratified linear Datalog file")
    p_translate.set_defaults(func=cmd_translate)

    p_rpq = sub.add_parser("rpq", help="regular path query over a fact file")
    p_rpq.add_argument("regex", help="label regular expression, e.g. 'CP+'")
    p_rpq.add_argument("data", help="Datalog fact file")
    p_rpq.add_argument("--source", default=None, help="restrict to one start node")
    p_rpq.set_defaults(func=cmd_rpq)

    p_optimize = sub.add_parser("optimize", help="optimize a Datalog program")
    p_optimize.add_argument("program", help="Datalog program file")
    p_optimize.add_argument("--roots", default=None, help="comma-separated root predicates")
    p_optimize.set_defaults(func=cmd_optimize)

    p_magic = sub.add_parser("magic", help="goal-directed evaluation (magic sets)")
    p_magic.add_argument("program", help="positive Datalog program file")
    p_magic.add_argument("goal", help="goal atom, e.g. 'tc(a, Y)'")
    p_magic.add_argument("--data", default=None, help="Datalog fact file")
    p_magic.set_defaults(func=cmd_magic)

    p_export = sub.add_parser("export", help="fact file -> JSON graph")
    p_export.add_argument("data", help="Datalog fact file")
    p_export.add_argument("out", help="output JSON path")
    p_export.set_defaults(func=cmd_export)

    p_serve = sub.add_parser("serve", help="run the concurrent query service")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7464)
    p_serve.add_argument("--data", default=None, help="Datalog fact file to load")
    p_serve.add_argument("--workers", type=int, default=8, help="evaluation threads")
    p_serve.add_argument("--timeout", type=float, default=30.0,
                         help="default per-request deadline in seconds")
    p_serve.add_argument("--max-rows", type=int, default=100_000,
                         help="default answer row budget")
    p_serve.add_argument("--max-bytes", type=int, default=8 * 1024 * 1024,
                         help="default encoded-answer byte budget")
    p_serve.add_argument("--plan-cache", type=int, default=256,
                         help="prepared-plan cache capacity")
    p_serve.add_argument("--result-cache", type=int, default=1024,
                         help="result cache capacity")
    p_serve.add_argument("--data-dir", default=None,
                         help="durable data directory (WAL + checkpoints); "
                              "the store is recovered from it at startup")
    p_serve.add_argument("--fsync", default="interval",
                         choices=("always", "interval", "off"),
                         help="WAL fsync policy (durability vs throughput)")
    p_serve.add_argument("--fsync-interval", type=float, default=0.05,
                         help="seconds between fsyncs under --fsync interval")
    p_serve.add_argument("--checkpoint-every", type=int, default=0,
                         help="auto-checkpoint after N commits (0 = manual only)")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         help="serve Prometheus /metrics + /healthz on this "
                              "port (0 = ephemeral; omit to disable)")
    p_serve.add_argument("--metrics-host", default="127.0.0.1",
                         help="bind address for the telemetry endpoint")
    p_serve.add_argument("--slow-ms", type=float, default=None,
                         help="record requests slower than this many ms into "
                              "the slow-query log (omit to disable)")
    p_serve.add_argument("--slowlog-capacity", type=int, default=128,
                         help="slow-query ring capacity")
    p_serve.add_argument("--slowlog-file", default=None,
                         help="also append slow-query records to this JSONL file")
    p_serve.add_argument("--replica-of", default=None, metavar="HOST:PORT",
                         help="run as a read-only replica of this primary: "
                              "bootstrap from its newest checkpoint, tail its "
                              "WAL, reject writes (incompatible with --data-dir)")
    p_serve.add_argument("--repl-wait-ms", type=int, default=2000,
                         help="replica: tail long-poll bound asked of the "
                              "primary when caught up")
    p_serve.add_argument("--max-lag", type=int, default=None,
                         help="replica: /healthz turns 503 when more than this "
                              "many versions behind the primary")
    p_serve.add_argument("--disconnect-grace", type=float, default=10.0,
                         help="replica: /healthz turns 503 after this many "
                              "seconds without a successful tail poll (the "
                              "reported lag is stale while disconnected)")
    p_serve.add_argument("--engine", default="columnar",
                         choices=("native", "columnar"),
                         help="default evaluation backend for requests that "
                              "carry no explicit method (see docs/ENGINE.md)")
    p_serve.add_argument("--sub-queue-max", type=int, default=256,
                         help="per-subscription outbound delta queue bound")
    p_serve.add_argument("--sub-policy", default="resync",
                         choices=("resync", "disconnect"),
                         help="default subscription overflow policy")
    p_serve.add_argument("--trace-sample", type=float, default=0.0,
                         help="head-sample this fraction of requests into "
                              "distributed traces (0 disables, 1 traces all)")
    p_serve.add_argument("--span-file", default=None,
                         help="export sampled span trees to this JSONL file "
                              "(rotated once past 16MB)")
    p_serve.add_argument("--version-wait-ms", type=int, default=2000,
                         help="bound on waiting for a read's min_version "
                              "before failing replica_stale")
    p_serve.set_defaults(func=cmd_serve)

    p_route = sub.add_parser(
        "route", help="read/write router over a primary and its replicas"
    )
    p_route.add_argument("--primary", required=True, metavar="HOST:PORT",
                         help="the write target (and read fallback)")
    p_route.add_argument("--replica", action="append", default=[],
                         metavar="HOST:PORT",
                         help="read target (repeatable); reads round-robin "
                              "across healthy replicas")
    p_route.add_argument("--host", default="127.0.0.1")
    p_route.add_argument("--port", type=int, default=7470)
    p_route.add_argument("--timeout", type=float, default=30.0,
                         help="per-backend call timeout in seconds")
    p_route.add_argument("--retries", type=int, default=1,
                         help="backend connect/send retries per request")
    p_route.add_argument("--eject-seconds", type=float, default=2.0,
                         help="how long a failed backend sits out of rotation")
    p_route.add_argument("--trace-sample", type=float, default=0.0,
                         help="head-sample this fraction of routed requests "
                              "into distributed traces")
    p_route.add_argument("--metrics-port", type=int, default=None,
                         help="serve repro_cluster_*/repro_router_* metrics "
                              "and /healthz on this port (0 = ephemeral)")
    p_route.add_argument("--metrics-host", default="127.0.0.1",
                         help="bind address for the router telemetry endpoint")
    p_route.set_defaults(func=cmd_route)

    p_promote = sub.add_parser(
        "promote",
        help="promote a running replica to a writable primary (fresh epoch); "
             "make sure the old primary is actually down first",
    )
    p_promote.add_argument("--host", default="127.0.0.1")
    p_promote.add_argument("--port", dest="connect_port", type=int, default=7464)
    p_promote.set_defaults(func=cmd_promote)

    p_call = sub.add_parser("call", help="send one request to a running server")
    p_call.add_argument("op", choices=("graphlog", "datalog", "rpq", "update",
                                       "stats", "ping", "explain", "profile",
                                       "checkpoint", "slowlog", "promote",
                                       "trace_get", "cluster_stats"))
    p_call.add_argument("arg", nargs="?", default=None,
                        help="query file (graphlog/datalog) or regex (rpq)")
    p_call.add_argument("--host", default="127.0.0.1")
    p_call.add_argument("--port", dest="connect_port", type=int, default=7464)
    p_call.add_argument("--source", default=None, help="rpq start node")
    p_call.add_argument("--target", default=None,
                        choices=("graphlog", "datalog", "rpq"),
                        help="explain/profile: query language of the input")
    p_call.add_argument("--predicate", default=None, help="relation to return")
    p_call.add_argument("--method", default=None,
                        choices=("seminaive", "naive", "columnar", "native"))
    p_call.add_argument("--timeout", type=float, default=None,
                        help="per-request deadline override in seconds")
    p_call.add_argument("--edge", nargs=3, action="append", default=None,
                        metavar=("SOURCE", "LABEL", "TARGET"),
                        help="update: edge to insert (repeatable)")
    p_call.add_argument("--limit", type=int, default=None,
                        help="slowlog: return at most this many entries")
    p_call.add_argument("--json", action="store_true", help="print the raw response")
    p_call.set_defaults(func=cmd_call)

    p_top = sub.add_parser("top", help="live dashboard over a running server")
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", dest="connect_port", type=int, default=7464)
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between polls")
    p_top.add_argument("--iterations", type=int, default=None,
                       help="stop after N redraws (default: run until ^C)")
    p_top.add_argument("--cluster", action="store_true",
                       help="point at a router and render the whole cluster "
                            "(per-node role/epoch/version/lag/QPS plus "
                            "histogram-merged latency)")
    p_top.add_argument("--once", action="store_true",
                       help="render a single snapshot and exit")
    p_top.add_argument("--json", action="store_true",
                       help="print one machine-readable snapshot and exit "
                            "(implies --once)")
    p_top.set_defaults(func=cmd_top)

    p_trace = sub.add_parser(
        "trace",
        help="assemble one distributed trace by id (ask a router to merge "
             "spans from every node; works against a single server too)",
    )
    p_trace.add_argument("trace_id", help="the trace id echoed on responses "
                                          "(trace_id field) and slowlog entries")
    p_trace.add_argument("--host", default="127.0.0.1")
    p_trace.add_argument("--port", dest="connect_port", type=int, default=7470)
    p_trace.add_argument("--json", action="store_true",
                         help="print the merged span set as JSON")
    p_trace.set_defaults(func=cmd_trace)

    p_watch = sub.add_parser(
        "watch",
        help="subscribe to a query on a running server and stream its deltas",
    )
    p_watch.add_argument("query", help="query file (graphlog/datalog) or regex (rpq)")
    p_watch.add_argument("--target", default="graphlog",
                         choices=("graphlog", "datalog", "rpq"),
                         help="query language of the input")
    p_watch.add_argument("--host", default="127.0.0.1")
    p_watch.add_argument("--port", dest="connect_port", type=int, default=7464)
    p_watch.add_argument("--predicate", default=None, help="relation to stream")
    p_watch.add_argument("--policy", default=None,
                         choices=("resync", "disconnect"),
                         help="overflow policy for this subscription")
    p_watch.add_argument("--queue-max", type=int, default=None,
                         help="outbound queue bound for this subscription")
    p_watch.add_argument("--allow-fallback", action="store_true",
                         help="accept diff-based re-evaluation for queries "
                              "the maintenance engine cannot handle")
    p_watch.add_argument("--count", type=int, default=None,
                         help="exit after N events (default: run until ^C)")
    p_watch.add_argument("--timeout", type=float, default=60.0,
                         help="request timeout in seconds (the event wait "
                              "itself never times out)")
    p_watch.set_defaults(func=cmd_watch)

    p_explain = sub.add_parser(
        "explain", help="trace a query end to end (spans, iterations, deltas)"
    )
    p_explain.add_argument("query", help="query file (graphlog/datalog) or regex (rpq)")
    p_explain.add_argument("--op", default="graphlog",
                           choices=("graphlog", "datalog", "rpq"),
                           help="query language of the input")
    p_explain.add_argument("--data", default=None,
                           help="Datalog fact file (local mode)")
    p_explain.add_argument("--host", dest="connect_host", default=None,
                           help="explain against a running server instead")
    p_explain.add_argument("--port", dest="connect_port", type=int, default=7464)
    p_explain.add_argument("--method", default=None,
                           choices=("seminaive", "naive", "columnar", "native"))
    p_explain.add_argument("--json", action="store_true",
                           help="print the span tree as JSON instead of ASCII")
    p_explain.set_defaults(func=cmd_explain)

    p_shell = sub.add_parser("shell", help="interactive GraphLog shell")
    p_shell.set_defaults(func=cmd_shell)

    p_dot = sub.add_parser("dot", help="render a GraphLog query as DOT")
    p_dot.add_argument("query", help="GraphLog DSL file")
    p_dot.set_defaults(func=cmd_dot)

    return parser


def main(argv=None):
    from repro.obs.logs import configure_logging

    parser = build_parser()
    args = parser.parse_args(argv)
    # The CLI is the only place a handler is installed; library modules log
    # through module loggers under a NullHandler-ed "repro" root.
    level = args.log_level or ("info" if args.command == "serve" else "warning")
    configure_logging(level=level, json_output=args.log_json)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
