"""Plain-text rendering of graphs, query graphs, and relations.

The prototype displayed graphs in windows; the terminal equivalent is a
structured text listing — compact, diff-friendly, and used by the figure
modules to print their reproduced artifacts.
"""

from __future__ import annotations

from repro.core.query_graph import GraphicalQuery, QueryGraph


def _sort_key(value):
    return (type(value).__name__, str(value))


def render_graph(graph, title="graph"):
    """A text listing: nodes (with annotations) then edges."""
    lines = [title, "=" * len(title)]
    for node in sorted(graph.nodes, key=_sort_key):
        label = graph.node_label(node)
        if label:
            annotation = (
                ", ".join(sorted(map(str, label)))
                if isinstance(label, frozenset)
                else str(label)
            )
            lines.append(f"  {node}  [{annotation}]")
        else:
            lines.append(f"  {node}")
    lines.append("")
    for edge in sorted(graph.edges, key=lambda e: (_sort_key(e.source), _sort_key(e.target), str(e.label))):
        lines.append(f"  {edge.source} -[{edge.label}]-> {edge.target}")
    return "\n".join(lines) + "\n"


def render_query_graph(graph, title=None):
    """A text rendering following the DSL's concrete syntax."""
    graph.validate()
    distinguished = graph.distinguished_edge
    extra = (
        "(" + ", ".join(str(t) for t in distinguished.extra) + ")"
        if distinguished.extra
        else ""
    )
    source = "(" + ", ".join(str(t) for t in distinguished.source) + ")"
    target = "(" + ", ".join(str(t) for t in distinguished.target) + ")"
    lines = [f"define {source} -[{distinguished.predicate}{extra}]-> {target} {{"]
    for edge in graph.edges:
        edge_source = "(" + ", ".join(str(t) for t in edge.source) + ")"
        edge_target = "(" + ", ".join(str(t) for t in edge.target) + ")"
        lines.append(f"    {edge_source} -[{edge.pre}]-> {edge_target};")
    for summary in graph.summaries:
        s = "(" + ", ".join(str(t) for t in summary.source) + ")"
        t = "(" + ", ".join(str(t) for t in summary.target) + ")"
        semiring = getattr(summary.semiring, "name", summary.semiring)
        semiring = str(semiring).split()[0]
        lines.append(
            f"    {s} -[{summary.weight_predicate} @ {semiring} "
            f"{summary.value_var}]-> {t};"
        )
    for annotation in graph.annotations:
        sign = "" if annotation.positive else "~"
        args = ", ".join(str(t) for t in annotation.node + annotation.extra)
        lines.append(f"    {sign}{annotation.predicate}({args});")
    lines.append("}")
    if title:
        lines.insert(0, f"# {title}")
    return "\n".join(lines) + "\n"


def render_graphical_query(query, title=None):
    if isinstance(query, QueryGraph):
        query = GraphicalQuery([query])
    blocks = [render_query_graph(graph) for graph in query.graphs]
    text = "\n".join(blocks)
    if title:
        text = f"# {title}\n{text}"
    return text


def render_relation(rows, header=None, title=None):
    """A fixed-width table of tuples."""
    rows = sorted(rows, key=lambda r: tuple(_sort_key(v) for v in r))
    if not rows:
        body = "(empty)"
        widths = []
    else:
        n_columns = len(rows[0])
        cells = [[str(v) for v in row] for row in rows]
        widths = [max(len(row[i]) for row in cells) for i in range(n_columns)]
        if header:
            widths = [max(w, len(h)) for w, h in zip(widths, header)]
        body_lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            for row in cells
        ]
        body = "\n".join(body_lines)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if header and widths:
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
    lines.append(body)
    return "\n".join(lines) + "\n"


def render_database(database, title="database"):
    """Every non-empty relation of a Database as tables."""
    sections = [title, "=" * len(title), ""]
    for predicate in sorted(database.predicates):
        rows = database.facts(predicate)
        if not rows:
            continue
        sections.append(render_relation(rows, title=f"{predicate}/{database.arity_of(predicate)}"))
    return "\n".join(sections)
