"""Rendering and answer-highlighting (the prototype's display layer)."""

from repro.visual.ascii_art import (
    render_database,
    render_graph,
    render_graphical_query,
    render_query_graph,
    render_relation,
)
from repro.visual.dot import graph_to_dot, graphical_query_to_dot, query_graph_to_dot
from repro.visual.highlight import (
    answer_union_graph,
    answers_one_by_one,
    highlight_rpq,
    new_edges_graph,
)

__all__ = [
    "answer_union_graph",
    "answers_one_by_one",
    "graph_to_dot",
    "graphical_query_to_dot",
    "highlight_rpq",
    "new_edges_graph",
    "query_graph_to_dot",
    "render_database",
    "render_graph",
    "render_graphical_query",
    "render_query_graph",
    "render_relation",
]
