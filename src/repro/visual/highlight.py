"""Answer highlighting, as in the Section 5 prototype.

The prototype offered three displays for query answers: highlight the
qualifying paths on the database graph, view them one by one, or turn their
union into a new graph that can itself be queried (iterative filtering).
All three are provided here over the RPQ evaluator.
"""

from __future__ import annotations

from repro.graphs.multigraph import LabeledMultigraph
from repro.rpq.evaluate import RPQEvaluator, default_label_key
from repro.rpq.simple_paths import regular_simple_paths
from repro.visual.dot import graph_to_dot


def highlight_rpq(graph, regex, sources=None, label_key=default_label_key):
    """Edges lying on some matching path (the highlight set) plus DOT text
    with those edges drawn bold red (Figure 12's display)."""
    evaluator = RPQEvaluator(graph, label_key)
    edges = evaluator.matching_edges(regex, sources)
    return edges, graph_to_dot(graph, highlighted_edges=edges)


def answers_one_by_one(graph, regex, source, max_paths=10, label_key=default_label_key):
    """Individual qualifying (simple) paths, the 'view one by one' display."""
    return regular_simple_paths(
        graph, regex, source, max_paths=max_paths, label_key=label_key
    )


def answer_union_graph(graph, regex, sources=None, label_key=default_label_key):
    """The union of qualifying paths as a new graph (iterative filtering).

    The result contains exactly the highlighted edges and their endpoints;
    being a LabeledMultigraph it can be queried again.
    """
    evaluator = RPQEvaluator(graph, label_key)
    edges = evaluator.matching_edges(regex, sources)
    union = LabeledMultigraph()
    for edge in edges:
        union.add_edge(edge.source, edge.target, edge.label)
    return union


def highlight_graphlog(query, database, predicate, row, schema=None):
    """Highlight the database edges justifying one GraphLog answer.

    Evaluates *query* with provenance, takes the base facts supporting the
    answer ``predicate(row)``, maps them back to edges of the database graph
    (Section 2 encoding), and returns ``(graph, edges, dot)`` — the Section 5
    display of qualifying paths, for arbitrary GraphLog queries.
    """
    from repro.core.engine import GraphLogEngine
    from repro.datalog.provenance import why
    from repro.graphs.bridge import GraphSchema, graph_from_database

    engine = GraphLogEngine()
    _result, provenance = engine.run_with_provenance(query, database)
    key = (predicate, tuple(row))
    if key not in provenance:
        raise KeyError(f"{predicate}{tuple(row)} is not a derived answer")
    base = why(provenance, predicate, tuple(row))

    schema = schema or GraphSchema()
    graph = graph_from_database(database)
    wanted = set()
    for pred, fact_row in base:
        if pred not in database:
            continue  # auxiliary domain facts like node(x)
        shape = schema.shape_for(pred, len(fact_row))
        if shape.target_arity == 0:
            continue  # node annotations highlight no edge
        source, target, extra = shape.split(fact_row)
        source = source[0] if len(source) == 1 else source
        target = target[0] if len(target) == 1 else target
        wanted.add((source, target, pred, extra))
    edges = {
        edge
        for edge in graph.edges
        if (edge.source, edge.target, getattr(edge.label, "predicate", None),
            getattr(edge.label, "extra", ())) in wanted
    }
    return graph, edges, graph_to_dot(graph, highlighted_edges=edges)


def new_edges_graph(graph, pairs, label):
    """Materialize query answers as new edges on a copy of the graph —
    GraphLog's 'new edges are added whenever the pattern is found'."""
    out = graph.copy()
    for source, target in pairs:
        out.add_edge(source, target, label)
    return out
