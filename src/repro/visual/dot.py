"""Graphviz DOT rendering with the paper's visual conventions.

Query graphs render as in Figure 2: closure-literal edges are *dashed*, the
distinguished edge is *bold*, and negated edge labels are shown crossed
(approximated as a ``¬`` prefix plus a red edge, since DOT has no
cross-over-the-edge glyph).  Database graphs render nodes with their
annotation predicates attached, as in Figure 1.
"""

from __future__ import annotations

from repro.core.pre import Closure, Star, strip_outer_negation
from repro.core.query_graph import GraphicalQuery, QueryGraph


def _quote(text):
    escaped = str(text).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def graph_to_dot(graph, name="database", highlighted_edges=()):
    """Render a :class:`LabeledMultigraph` as DOT text.

    *highlighted_edges* (edge objects) render bold red — the prototype's
    answer-highlighting display (Figure 12).
    """
    highlighted = set(highlighted_edges)
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for node in graph.nodes:
        label = graph.node_label(node)
        if label:
            annotation = ",".join(sorted(map(str, label))) if isinstance(label, frozenset) else str(label)
            lines.append(f"  {_quote(node)} [label={_quote(f'{node} : {annotation}')}];")
        else:
            lines.append(f"  {_quote(node)};")
    for edge in graph.edges:
        attrs = [f"label={_quote(edge.label)}"]
        if edge in highlighted:
            attrs.append("color=red")
            attrs.append("penwidth=2.5")
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.target)} [{', '.join(attrs)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def _node_id(node):
    return "(" + ",".join(str(t) for t in node) + ")"


def _edge_attrs(pre):
    """DOT attributes implementing the Figure 2 conventions."""
    inner, positive = strip_outer_negation(pre)
    attrs = []
    label = str(inner)
    if not positive:
        label = f"¬{label}"
        attrs.append("color=red")
    if isinstance(inner, (Closure, Star)):
        attrs.append("style=dashed")
    attrs.insert(0, f"label={_quote(label)}")
    return attrs


def query_graph_to_dot(graph, name=None, cluster_index=None):
    """Render one query graph; standalone digraph unless clustered."""
    graph.validate()
    title = name or graph.name or "query"
    body = []
    prefix = "  "
    # DOT node names are global across clusters; prefix them per cluster so
    # the same variable name in two query graphs stays two nodes.
    id_prefix = f"g{cluster_index}_" if cluster_index is not None else ""

    def nid(node):
        return id_prefix + _node_id(node)

    for node in graph.nodes:
        annotations = [
            a.predicate if a.positive else f"¬{a.predicate}"
            for a in graph.annotations
            if a.node == node and not a.extra
        ]
        label = _node_id(node)
        if annotations:
            label = f"{label}\\n{', '.join(annotations)}"
        body.append(f"{prefix}{_quote(nid(node))} [label={_quote(label)}];")
    for edge in graph.edges:
        attrs = _edge_attrs(edge.pre)
        body.append(
            f"{prefix}{_quote(nid(edge.source))} -> "
            f"{_quote(nid(edge.target))} [{', '.join(attrs)}];"
        )
    for summary in graph.summaries:
        semiring = getattr(summary.semiring, "name", summary.semiring)
        semiring = str(semiring).split()[0]
        label = f"{summary.weight_predicate} @ {semiring} {summary.value_var}"
        body.append(
            f"{prefix}{_quote(nid(summary.source))} -> "
            f"{_quote(nid(summary.target))} "
            f"[label={_quote(label)}, style=dotted, color=blue];"
        )
    distinguished = graph.distinguished_edge
    label = distinguished.predicate
    if distinguished.extra:
        label += "(" + ",".join(str(t) for t in distinguished.extra) + ")"
    body.append(
        f"{prefix}{_quote(nid(distinguished.source))} -> "
        f"{_quote(nid(distinguished.target))} "
        f"[label={_quote(label)}, style=bold, penwidth=2.5];"
    )
    if cluster_index is None:
        lines = [f"digraph {_quote(title)} {{", "  rankdir=LR;"]
        lines.extend(body)
        lines.append("}")
        return "\n".join(lines) + "\n"
    lines = [f"  subgraph cluster_{cluster_index} {{", f"    label={_quote(title)};"]
    lines.extend("  " + line for line in body)
    lines.append("  }")
    return "\n".join(lines)


def graphical_query_to_dot(query, name="graphical_query"):
    """Render a graphical query: one cluster per query graph, matching the
    paper's 'each query graph in a separate region within the box' style."""
    if isinstance(query, QueryGraph):
        query = GraphicalQuery([query])
    query.validate()
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;", "  compound=true;"]
    for index, graph in enumerate(query.graphs):
        lines.append(query_graph_to_dot(graph, cluster_index=index))
    lines.append("}")
    return "\n".join(lines) + "\n"
