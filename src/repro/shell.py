"""An interactive GraphLog shell: ``python -m repro shell``.

A terminal stand-in for the Section 5 prototype's interactive loop: build a
database, draw (type) query graphs, evaluate, inspect translations, explain
answers.  Commands:

    parent(ann, bob).                  add a fact
    define (X) -[anc]-> (Y) { ... }    add a query graph (may span lines)
    ? anc(ann, X)                      evaluate and match a goal
    run [predicate]                    evaluate; show one or all relations
    program                            show the λ translation
    explain anc(ann, bob)              derivation tree of one answer
    trace                              evaluate under tracing; show spans,
                                       per-stratum iterations, delta sizes
    slowlog [THRESHOLD_MS|off]         show slow evaluations, or set the
                                       threshold (e.g. 'slowlog 5')
    load FILE                          load a Datalog fact file
    rpq REGEX [SOURCE]                 regular path query over the graph
    watch PRED                         print PRED's answer changes (+/-)
                                       after each command; 'watch off'
                                       stops, bare 'watch' shows status
    facts [predicate]                  list stored facts
    queries                            list registered query graphs
    clear                              drop all queries (facts stay)
    reset                              drop everything
    help                               this text
    quit / exit                        leave

The engine state lives in a :class:`ShellSession`; every command is a pure
``execute(line) -> str`` call, so the shell is fully scriptable and
testable.
"""

from __future__ import annotations

import sys
import time

from repro.core.dsl import parse_graphical_query
from repro.core.engine import GraphLogEngine
from repro.core.query_graph import GraphicalQuery
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_rule
from repro.datalog.provenance import explain as explain_derivation
from repro.errors import ReproError
from repro.visual.ascii_art import render_graphical_query, render_relation

HELP_TEXT = __doc__.split("Commands:", 1)[1].rsplit("The engine state", 1)[0]


class ShellSession:
    """State + command interpreter for the interactive shell."""

    def __init__(self):
        from repro.obs.slowlog import SlowQueryLog

        self.database = Database()
        self.graphs = []
        self._buffer = []  # pending multi-line define
        self._watched = {}  # predicate -> last seen answer rows
        # Local slow-query log: off until 'slowlog THRESHOLD_MS' arms it.
        self.slowlog = SlowQueryLog(threshold_ms=None, capacity=32)

    # ---------------------------------------------------------------- state

    @property
    def query(self):
        return GraphicalQuery(list(self.graphs)) if self.graphs else None

    def _engine(self):
        return GraphLogEngine()

    def _evaluate(self):
        query = self.query
        if not self.slowlog.enabled:
            if query is None:
                return self.database.copy()
            return self._engine().run(query, self.database)
        from repro import obs
        from repro.obs import logs

        started = time.perf_counter()
        with logs.request_context() as rid:
            with obs.tracing("shell.run") as tr:
                if query is None:
                    result = self.database.copy()
                else:
                    result = self._engine().run(query, self.database)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            if self.slowlog.should_record(elapsed_ms):
                self.slowlog.record(
                    {
                        "request_id": rid,
                        "op": "run",
                        "elapsed_ms": round(elapsed_ms, 3),
                        "threshold_ms": self.slowlog.threshold_ms,
                        "trace": tr.root.to_dict(),
                        "text": tr.root.render().rstrip(),
                    }
                )
        return result

    # -------------------------------------------------------------- execute

    @property
    def pending(self):
        """True while a multi-line ``define`` is being collected."""
        return bool(self._buffer)

    def execute(self, line):
        """Run one input line; returns the text to display (may be '')."""
        try:
            output = self._execute(line)
        except ReproError as exc:
            self._buffer = []
            return f"error: {exc}"
        except (KeyError, FileNotFoundError) as exc:
            self._buffer = []
            return f"error: {exc}"
        if self._watched and not self.pending:
            diff = self._watch_diffs()
            if diff:
                output = f"{output}\n{diff}" if output else diff
        return output

    def _execute(self, line):
        if self._buffer:
            self._buffer.append(line)
            text = "\n".join(self._buffer)
            if text.count("{") <= text.count("}"):
                self._buffer = []
                return self._add_define(text)
            return ""
        stripped = line.strip()
        if not stripped or stripped.startswith(("%", "#")):
            return ""
        command, _space, rest = stripped.partition(" ")
        rest = rest.strip()
        if command in ("quit", "exit"):
            raise EOFError
        if command == "help":
            return HELP_TEXT.strip()
        if command == "define":
            if stripped.count("{") > stripped.count("}"):
                self._buffer = [stripped]
                return ""
            return self._add_define(stripped)
        if stripped.startswith("?"):
            return self._goal(stripped[1:].strip())
        if command == "run":
            return self._run(rest or None)
        if command == "program":
            return self._program()
        if command == "explain":
            return self._explain(rest)
        if command == "trace":
            return self._trace()
        if command == "slowlog":
            return self._slowlog(rest)
        if command == "load":
            return self._load(rest)
        if command == "rpq":
            return self._rpq(rest)
        if command == "watch":
            return self._watch(rest)
        if command == "facts":
            return self._facts(rest or None)
        if command == "queries":
            return self._queries()
        if command == "clear":
            self.graphs = []
            return "queries cleared"
        if command == "reset":
            self.database = Database()
            self.graphs = []
            self._watched = {}
            return "session reset"
        # Fallback: a Datalog fact (or rule-as-fact error surfaces nicely).
        return self._add_fact(stripped)

    # ------------------------------------------------------------- commands

    def _add_define(self, text):
        query = parse_graphical_query(text)
        candidate = GraphicalQuery(list(self.graphs) + list(query.graphs))
        candidate.validate()
        self.graphs = list(candidate.graphs)
        names = ", ".join(g.head_predicate for g in query.graphs)
        return f"defined {names}"

    def _add_fact(self, text):
        if not text.endswith("."):
            text += "."
        rule = parse_rule(text)
        if not rule.is_fact:
            return "error: only facts can be asserted here; use 'define' for queries"
        self.database.add_fact(rule.head.predicate, *(t.value for t in rule.head.args))
        return f"+ {rule.head}"

    def _goal(self, text):
        goal = parse_atom(text)
        result = self._evaluate()
        from repro.datalog.engine import match_atom

        matches = match_atom(result, goal)
        if not matches:
            return "no"
        if matches == {()}:
            return "yes"
        variables = []
        for term in goal.args:
            name = getattr(term, "name", None)
            if name and not name.startswith("_") and name[0].isupper() and name not in variables:
                variables.append(name)
        return render_relation(matches, header=tuple(variables) or None).rstrip()

    def _run(self, predicate):
        result = self._evaluate()
        if predicate is not None:
            rows = result.facts(predicate)
            return render_relation(rows, title=f"{predicate} ({len(rows)} tuples)").rstrip()
        names = sorted(g.head_predicate for g in self.graphs)
        if not names:
            return "no queries defined; use 'facts' to inspect the database"
        blocks = [
            render_relation(result.facts(name), title=name).rstrip() for name in names
        ]
        return "\n\n".join(blocks)

    def _program(self):
        query = self.query
        if query is None:
            return "no queries defined"
        return self._engine().translate(query).pretty().rstrip()

    def _explain(self, text):
        atom = parse_atom(text)
        if not atom.is_ground():
            return "error: explain needs a ground answer, e.g. explain anc(ann, bob)"
        query = self.query
        if query is None:
            return "no queries defined"
        row = tuple(t.value for t in atom.args)
        _result, provenance = self._engine().run_with_provenance(query, self.database)
        if (atom.predicate, row) not in provenance:
            return f"{atom} is not a derived answer"
        return explain_derivation(provenance, atom.predicate, row).render()

    def _trace(self):
        query = self.query
        if query is None:
            return "no queries defined"
        from repro import obs

        with obs.tracing("trace") as tr:
            self._engine().run(query, self.database)
        return tr.root.render().rstrip()

    def _slowlog(self, rest):
        if rest:
            if rest in ("off", "none"):
                self.slowlog.threshold_ms = None
                return "slowlog disabled"
            try:
                threshold = float(rest)
            except ValueError:
                return "usage: slowlog [THRESHOLD_MS|off]"
            if threshold < 0:
                return "usage: slowlog [THRESHOLD_MS|off]"
            self.slowlog.threshold_ms = threshold
            return f"slowlog armed: evaluations over {threshold:g}ms are recorded"
        if not self.slowlog.enabled:
            return "slowlog is off; 'slowlog 5' records evaluations slower than 5ms"
        entries = self.slowlog.snapshot(10)
        if not entries:
            return f"slowlog empty (threshold {self.slowlog.threshold_ms:g}ms)"
        blocks = []
        for entry in entries:
            blocks.append(
                f"{entry['elapsed_ms']:.1f}ms (threshold {entry['threshold_ms']:g}ms)"
                f"  request {entry['request_id']}\n{entry['text']}"
            )
        return "\n\n".join(blocks)

    def _load(self, path):
        if not path:
            return "usage: load FILE"
        with open(path) as handle:
            from repro.datalog.parser import parse_program

            program = parse_program(handle.read())
        count = 0
        for rule in program:
            if not rule.is_fact:
                return f"error: {path} contains rules; the shell loads fact files"
            self.database.add_fact(
                rule.head.predicate, *(t.value for t in rule.head.args)
            )
            count += 1
        return f"loaded {count} facts from {path}"

    def _rpq(self, rest):
        if not rest:
            return "usage: rpq REGEX [SOURCE]"
        parts = rest.rsplit(" ", 1)
        from repro.graphs.bridge import graph_from_database
        from repro.rpq.evaluate import RPQEvaluator

        graph = graph_from_database(self.database)
        evaluator = RPQEvaluator(graph)
        if len(parts) == 2 and graph.has_node(parts[1]):
            targets = evaluator.targets(parts[0], parts[1])
            return render_relation(
                [(t,) for t in targets], title=f"targets from {parts[1]}"
            ).rstrip()
        pairs = evaluator.pairs(rest)
        return render_relation(pairs, title="matching pairs").rstrip()

    def _watch(self, rest):
        if rest in ("off", "none"):
            count = len(self._watched)
            self._watched = {}
            return f"stopped watching {count} predicate(s)" if count else "nothing watched"
        if not rest:
            if not self._watched:
                return "nothing watched; 'watch PRED' streams PRED's answer changes"
            return "\n".join(
                f"watching {name}: {len(rows)} rows"
                for name, rows in sorted(self._watched.items())
            )
        if " " in rest:
            return "usage: watch [PRED|off]"
        result = self._evaluate()
        rows = set(result.facts(rest))
        self._watched[rest] = rows
        return (
            f"watching {rest} ({len(rows)} rows); "
            "answer changes print after each command"
        )

    def _watch_diffs(self):
        """Diff every watched predicate against the last seen answer —
        the shell's local analogue of a service subscription."""
        try:
            result = self._evaluate()
        except ReproError as exc:
            return f"watch error: {exc}"
        lines = []
        for name in sorted(self._watched):
            now = set(result.facts(name))
            before = self._watched[name]
            for row in sorted(now - before):
                lines.append(f"  + {name}({', '.join(map(str, row))})")
            for row in sorted(before - now):
                lines.append(f"  - {name}({', '.join(map(str, row))})")
            self._watched[name] = now
        return "\n".join(lines)

    def _facts(self, predicate):
        if predicate is not None:
            rows = self.database.facts(predicate)
            return render_relation(rows, title=f"{predicate} ({len(rows)})").rstrip()
        if not self.database.predicates:
            return "(empty database)"
        blocks = []
        for name in sorted(self.database.predicates):
            rows = self.database.facts(name)
            if rows:
                blocks.append(f"{name}/{self.database.arity_of(name)}: {len(rows)} facts")
        return "\n".join(blocks)

    def _queries(self):
        if not self.graphs:
            return "(no queries)"
        return render_graphical_query(GraphicalQuery(list(self.graphs))).rstrip()


def repl(stdin=None, stdout=None):
    """The interactive loop (reads stdin when not a TTY too, for piping)."""
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    session = ShellSession()
    print("GraphLog shell — 'help' for commands, 'quit' to leave.", file=stdout)
    while True:
        prompt = "....> " if session.pending else "glog> "
        if stdin.isatty():
            try:
                line = input(prompt)
            except (EOFError, KeyboardInterrupt):
                print(file=stdout)
                return 0
        else:
            line = stdin.readline()
            if not line:
                return 0
            line = line.rstrip("\n")
        try:
            output = session.execute(line)
        except EOFError:
            return 0
        if output:
            print(output, file=stdout)
