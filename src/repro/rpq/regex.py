"""Regular expressions over edge-label alphabets (G+ edge queries).

The prototype of Section 5 evaluates *edge queries*: two nodes joined by one
edge labeled with an arbitrary regular expression over the database's edge
labels (e.g. ``CP+`` — one or more Canadian Pacific flights, Figure 12).
This module defines the regex AST and parser; automata and evaluation live
in :mod:`repro.rpq.automaton` and :mod:`repro.rpq.evaluate`.

A symbol may be *inverted* (written ``-a``): it matches traversing an
``a``-labeled edge against its direction, mirroring GraphLog's inversion
operator.
"""

from __future__ import annotations

from repro.datalog.lexer import TokenStream, tokenize
from repro.errors import RegexError, ParseError


class Regex:
    """Abstract base class for label regular expressions."""

    __slots__ = ()

    def __or__(self, other):
        return Union(self, _coerce(other))

    def __rshift__(self, other):
        return Concat(self, _coerce(other))

    def plus(self):
        return Plus(self)

    def star(self):
        return Star(self)

    def optional(self):
        return Opt(self)

    def symbols(self):
        """The set of (label, inverted) symbol pairs used."""
        out = set()
        for node in self.walk():
            if isinstance(node, Sym):
                out.add((node.label, node.inverted))
        return out

    def walk(self):
        yield self
        for child in self._children():
            yield from child.walk()

    def _children(self):
        return ()


def _coerce(value):
    if isinstance(value, Regex):
        return value
    if isinstance(value, str):
        return Sym(value)
    raise TypeError(f"cannot interpret {value!r} as a label regex")


class Sym(Regex):
    """One edge traversal: label *label*, backwards when *inverted*."""

    __slots__ = ("label", "inverted")

    def __init__(self, label, inverted=False):
        self.label = label
        self.inverted = bool(inverted)

    def _key(self):
        return ("sym", self.label, self.inverted)

    def __eq__(self, other):
        return isinstance(other, Sym) and self._key() == other._key()

    def __hash__(self):
        return hash(self._key())

    def __repr__(self):
        return f"Sym({self})"

    def __str__(self):
        return f"-{self.label}" if self.inverted else str(self.label)


class Epsilon(Regex):
    """The empty word."""

    __slots__ = ()

    def __eq__(self, other):
        return isinstance(other, Epsilon)

    def __hash__(self):
        return hash("epsilon")

    def __repr__(self):
        return "Epsilon()"

    def __str__(self):
        return "()"


class Concat(Regex):
    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = _coerce(left)
        self.right = _coerce(right)

    def _children(self):
        return (self.left, self.right)

    def __eq__(self, other):
        return isinstance(other, Concat) and (self.left, self.right) == (
            other.left,
            other.right,
        )

    def __hash__(self):
        return hash(("concat", self.left, self.right))

    def __repr__(self):
        return f"Concat({self.left!r}, {self.right!r})"

    def __str__(self):
        return f"{_wrap(self.left)} {_wrap(self.right)}"


class Union(Regex):
    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = _coerce(left)
        self.right = _coerce(right)

    def _children(self):
        return (self.left, self.right)

    def __eq__(self, other):
        return isinstance(other, Union) and (self.left, self.right) == (
            other.left,
            other.right,
        )

    def __hash__(self):
        return hash(("union", self.left, self.right))

    def __repr__(self):
        return f"Union({self.left!r}, {self.right!r})"

    def __str__(self):
        return f"({self.left} | {self.right})"


class Star(Regex):
    __slots__ = ("inner",)

    def __init__(self, inner):
        self.inner = _coerce(inner)

    def _children(self):
        return (self.inner,)

    def __eq__(self, other):
        return isinstance(other, Star) and self.inner == other.inner

    def __hash__(self):
        return hash(("star", self.inner))

    def __repr__(self):
        return f"Star({self.inner!r})"

    def __str__(self):
        return f"{_wrap(self.inner)}*"


class Plus(Regex):
    __slots__ = ("inner",)

    def __init__(self, inner):
        self.inner = _coerce(inner)

    def _children(self):
        return (self.inner,)

    def __eq__(self, other):
        return isinstance(other, Plus) and self.inner == other.inner

    def __hash__(self):
        return hash(("plus", self.inner))

    def __repr__(self):
        return f"Plus({self.inner!r})"

    def __str__(self):
        return f"{_wrap(self.inner)}+"


class Opt(Regex):
    __slots__ = ("inner",)

    def __init__(self, inner):
        self.inner = _coerce(inner)

    def _children(self):
        return (self.inner,)

    def __eq__(self, other):
        return isinstance(other, Opt) and self.inner == other.inner

    def __hash__(self):
        return hash(("opt", self.inner))

    def __repr__(self):
        return f"Opt({self.inner!r})"

    def __str__(self):
        return f"{_wrap(self.inner)}?"


def _wrap(expr):
    if isinstance(expr, (Sym, Epsilon)):
        return str(expr)
    return f"({expr})"


def sym(label, inverted=False):
    return Sym(label, inverted)


def concat(first, *rest):
    expr = _coerce(first)
    for item in rest:
        expr = Concat(expr, _coerce(item))
    return expr


def union(first, *rest):
    expr = _coerce(first)
    for item in rest:
        expr = Union(expr, _coerce(item))
    return expr


def parse_regex(source):
    """Parse a label regex, e.g. ``"CP+"`` or ``"(AA | CP) -UA*"``.

    Uppercase identifiers are plain labels here (unlike GraphLog variables):
    the alphabet of an airline graph is airline codes like ``CP``.
    """
    stream = TokenStream(tokenize(source))
    expr = _parse_union(stream)
    if not stream.exhausted:
        token = stream.peek()
        raise ParseError("trailing input after regex", token.line, token.column)
    return expr


def _parse_union(stream):
    expr = _parse_concat(stream)
    while stream.at_punct("|"):
        stream.next()
        expr = Union(expr, _parse_concat(stream))
    return expr


def _starts_atom(stream):
    token = stream.peek()
    if token.kind in ("ident", "var", "number", "string"):
        return True
    return token.kind == "punct" and token.text in ("(", "-")


def _parse_concat(stream):
    expr = _parse_postfix(stream)
    while True:
        if stream.at_punct("."):
            stream.next()
            expr = Concat(expr, _parse_postfix(stream))
            continue
        if _starts_atom(stream):
            expr = Concat(expr, _parse_postfix(stream))
            continue
        return expr


def _parse_postfix(stream):
    expr = _parse_atom(stream)
    while True:
        if stream.at_punct("+"):
            stream.next()
            expr = Plus(expr)
        elif stream.at_punct("*"):
            stream.next()
            expr = Star(expr)
        elif stream.at_punct("?"):
            stream.next()
            expr = Opt(expr)
        else:
            return expr


def _parse_atom(stream):
    token = stream.peek()
    if stream.at_punct("-"):
        stream.next()
        inner = _parse_atom(stream)
        if not isinstance(inner, Sym) or inner.inverted:
            raise RegexError("inversion applies to a single label symbol")
        return Sym(inner.label, inverted=True)
    if stream.at_punct("("):
        stream.next()
        if stream.at_punct(")"):
            stream.next()
            return Epsilon()
        expr = _parse_union(stream)
        stream.expect("punct", ")")
        return expr
    if token.kind in ("ident", "var"):
        stream.next()
        return Sym(token.text)
    if token.kind in ("number", "string"):
        stream.next()
        return Sym(token.value)
    raise ParseError(
        f"expected a regex atom, found {token.text or token.kind!r}", token.line, token.column
    )
