"""CSR adjacency with bitset frontiers for RPQ product search.

The dict-walk evaluator in :mod:`repro.rpq.evaluate` expands one (node,
state) product pair at a time, re-reading each node's edge list and
re-deriving each edge's label key on every visit.  This module is the
columnar counterpart: all nodes are numbered densely once per graph
version, adjacency is compacted per automaton symbol ``(label_key,
inverted)`` into CSR offset+target ``array('q')`` pairs, and the product
BFS advances whole frontiers at a time as Python-int bitsets (bit *i* set
⇔ node *i* is in the frontier at that DFA state).

Per-node successor *bitmasks* are materialized lazily per symbol on first
traversal, so one frontier step is a handful of big-int ORs instead of a
Python loop over edges — the BFS touches each reachable (node, state) pair
through word-parallel operations.

The index is cached on the graph keyed by its mutation
:attr:`~repro.graphs.multigraph.LabeledMultigraph.version` (and the label
key function), so the "built once per graph version" cost is shared by all
queries until the next structural mutation.
"""

from __future__ import annotations

from array import array
from collections import defaultdict


class CSRIndex:
    """Per-symbol CSR adjacency over densely numbered graph nodes."""

    __slots__ = ("nodes", "node_ids", "_rows", "_csr", "_masks")

    def __init__(self, graph, label_key):
        self.nodes = list(graph.nodes)
        self.node_ids = {node: i for i, node in enumerate(self.nodes)}
        ids = self.node_ids
        rows = defaultdict(lambda: defaultdict(list))
        for edge in graph.edges:
            key = label_key(edge.label)
            source = ids[edge.source]
            target = ids[edge.target]
            rows[(key, False)][source].append(target)
            rows[(key, True)][target].append(source)
        self._rows = {symbol: dict(adj) for symbol, adj in rows.items()}
        self._csr = {}
        self._masks = {}

    def __contains__(self, node):
        return node in self.node_ids

    def csr(self, symbol):
        """``(offsets, targets)`` arrays for *symbol*, or None if unused."""
        built = self._csr.get(symbol)
        if built is not None:
            return built
        adj = self._rows.get(symbol)
        if adj is None:
            return None
        n = len(self.nodes)
        offsets = array("q", bytes(8 * (n + 1)))
        total = 0
        for i in range(n):
            offsets[i] = total
            total += len(adj.get(i, ()))
        offsets[n] = total
        targets = array("q", bytes(8 * total))
        cursor = 0
        for i in range(n):
            for target in adj.get(i, ()):
                targets[cursor] = target
                cursor += 1
        built = (offsets, targets)
        self._csr[symbol] = built
        return built

    def successor_masks(self, symbol):
        """Per-node successor bitmasks for *symbol* (lazily built from CSR)."""
        masks = self._masks.get(symbol)
        if masks is not None:
            return masks
        built = self.csr(symbol)
        if built is None:
            return None
        offsets, targets = built
        masks = [0] * len(self.nodes)
        for i in range(len(self.nodes)):
            mask = 0
            for j in range(offsets[i], offsets[i + 1]):
                mask |= 1 << targets[j]
            masks[i] = mask
        self._masks[symbol] = masks
        return masks

    # ------------------------------------------------------------- search

    def _moves_by_state(self, dfa):
        moves = defaultdict(list)
        for (state, symbol), target in dfa.transitions.items():
            masks = self.successor_masks(symbol)
            if masks is not None:
                moves[state].append((masks, target))
        return moves

    def reach(self, dfa, source_ids):
        """Bitmask of node ids reachable in an accepting DFA state from the
        product states ``{(s, dfa.start) for s in source_ids}``."""
        start_mask = 0
        for source in source_ids:
            start_mask |= 1 << source
        if not start_mask:
            return 0
        moves = self._moves_by_state(dfa)
        accept = dfa.accept
        seen = defaultdict(int)
        seen[dfa.start] = start_mask
        frontier = {dfa.start: start_mask}
        answers = start_mask if dfa.start in accept else 0
        while frontier:
            advance = defaultdict(int)
            for state, mask in frontier.items():
                for masks, next_state in moves.get(state, ()):
                    stepped = 0
                    remaining = mask
                    while remaining:
                        low = remaining & -remaining
                        stepped |= masks[low.bit_length() - 1]
                        remaining ^= low
                    if stepped:
                        advance[next_state] |= stepped
            frontier = {}
            for state, mask in advance.items():
                fresh = mask & ~seen[state]
                if fresh:
                    seen[state] |= fresh
                    frontier[state] = fresh
                    if state in accept:
                        answers |= fresh
        return answers

    def decode(self, mask):
        """The set of node values named by the bits of *mask*."""
        nodes = self.nodes
        out = set()
        while mask:
            low = mask & -mask
            out.add(nodes[low.bit_length() - 1])
            mask ^= low
        return out


def csr_index(graph, label_key):
    """The (cached) :class:`CSRIndex` of *graph* under *label_key*.

    Cached on the graph instance keyed by its mutation version and the
    label-key function, so repeated queries at one graph version share one
    build.
    """
    version = getattr(graph, "version", None)
    cached = getattr(graph, "_csr_cache", None)
    if (
        cached is not None
        and version is not None
        and cached[0] == version
        and cached[1] is label_key
    ):
        return cached[2]
    index = CSRIndex(graph, label_key)
    if version is not None:
        try:
            graph._csr_cache = (version, label_key, index)
        except AttributeError:  # pragma: no cover - graphs carry a __dict__
            pass
    return index
