"""Regular path queries: regexes, automata, product evaluation, simple paths."""

from repro.rpq.automaton import DFA, NFA, compile_regex, determinize, minimize, thompson
from repro.rpq.evaluate import RPQEvaluator, default_label_key, rpq_pairs
from repro.rpq.regex import (
    Concat,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    Union,
    concat,
    parse_regex,
    sym,
    union,
)
from repro.rpq.simple_paths import has_regular_simple_path, regular_simple_paths

__all__ = [
    "Concat",
    "DFA",
    "Epsilon",
    "NFA",
    "Opt",
    "Plus",
    "RPQEvaluator",
    "Regex",
    "Star",
    "Sym",
    "Union",
    "compile_regex",
    "concat",
    "default_label_key",
    "determinize",
    "has_regular_simple_path",
    "minimize",
    "parse_regex",
    "rpq_pairs",
    "sym",
    "thompson",
    "union",
]
