"""Regular *simple* path search ([MW89], the prototype's G+ edge queries).

Finding a simple (no repeated node) path matching a regular expression is
NP-hard in general; [MW89] gives algorithms for tractable subclasses and a
general search.  We implement the general depth-first product search with a
per-path visited set, plus guard rails (depth and result limits) so callers
cannot accidentally run an exponential search unbounded.
"""

from __future__ import annotations

from repro.errors import RegexError
from repro.rpq.automaton import compile_regex
from repro.rpq.evaluate import default_label_key
from repro.rpq.regex import Regex, parse_regex


def regular_simple_paths(
    graph,
    regex,
    source,
    target=None,
    max_paths=None,
    max_length=None,
    label_key=default_label_key,
):
    """All simple paths from *source* matching *regex*.

    Args:
        graph: a :class:`LabeledMultigraph`.
        regex: a :class:`~repro.rpq.regex.Regex` or its textual form.
        source: start node.
        target: restrict to paths ending there (None: any end node).
        max_paths: stop after this many results (None: unbounded).
        max_length: ignore paths longer than this many edges
            (default: number of graph nodes, the simple-path maximum).
        label_key: how edge labels map to regex symbols.

    Returns a list of paths; each path is a list of edges.  The empty path
    appears (as ``[]``) when the regex accepts the empty word and the source
    qualifies (i.e. ``target`` is None or equals ``source``).
    """
    if isinstance(regex, str):
        regex = parse_regex(regex)
    if not isinstance(regex, Regex):
        raise RegexError(f"expected a Regex, got {type(regex).__name__}")
    dfa = compile_regex(regex)
    limit = max_length if max_length is not None else graph.node_count()
    results = []

    def full():
        return max_paths is not None and len(results) >= max_paths

    def moves(node, state):
        for edge in graph.out_edges(node):
            next_state = dfa.step(state, (label_key(edge.label), False))
            if next_state is not None:
                yield edge, edge.target, next_state
        for edge in graph.in_edges(node):
            next_state = dfa.step(state, (label_key(edge.label), True))
            if next_state is not None:
                yield edge, edge.source, next_state

    def search(node, state, visited, path):
        if full():
            return
        if state in dfa.accept and (target is None or node == target):
            results.append(list(path))
            if full():
                return
        if len(path) >= limit:
            return
        for edge, next_node, next_state in moves(node, state):
            if next_node in visited:
                continue
            visited.add(next_node)
            path.append(edge)
            search(next_node, next_state, visited, path)
            path.pop()
            visited.discard(next_node)

    search(source, dfa.start, {source}, [])
    return results


def has_regular_simple_path(graph, regex, source, target, label_key=default_label_key):
    """Decision form: is there a simple path from source to target matching
    the regex?"""
    paths = regular_simple_paths(
        graph, regex, source, target=target, max_paths=1, label_key=label_key
    )
    return bool(paths)
