"""Finite automata for regular path queries.

Thompson construction (regex -> NFA with epsilon moves), subset construction
(NFA -> DFA), and Moore partition-refinement minimization.  Automaton
symbols are ``(label, inverted)`` pairs, so one automaton drives both
forward and backward edge traversals in the product search.
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.rpq.regex import Concat, Epsilon, Opt, Plus, Regex, Star, Sym, Union
from repro.errors import RegexError


class NFA:
    """A nondeterministic finite automaton with epsilon transitions."""

    def __init__(self):
        self.start = 0
        self.accept = set()
        self.transitions = defaultdict(set)  # (state, symbol) -> {states}
        self.epsilon = defaultdict(set)  # state -> {states}
        self._count = 0

    def new_state(self):
        state = self._count
        self._count += 1
        return state

    @property
    def states(self):
        return range(self._count)

    def add_transition(self, source, symbol, target):
        self.transitions[(source, symbol)].add(target)

    def add_epsilon(self, source, target):
        self.epsilon[source].add(target)

    def symbols(self):
        return {symbol for (_state, symbol) in self.transitions}

    def epsilon_closure(self, states):
        closure = set(states)
        queue = deque(states)
        while queue:
            state = queue.popleft()
            for target in self.epsilon.get(state, ()):
                if target not in closure:
                    closure.add(target)
                    queue.append(target)
        return frozenset(closure)

    def step(self, states, symbol):
        out = set()
        for state in states:
            out |= self.transitions.get((state, symbol), set())
        return self.epsilon_closure(out)

    def accepts_empty(self):
        return bool(self.epsilon_closure({self.start}) & self.accept)


def thompson(regex):
    """Build an NFA from a :class:`Regex` by Thompson's construction."""
    if not isinstance(regex, Regex):
        raise RegexError(f"expected a Regex, got {type(regex).__name__}")
    nfa = NFA()

    def build(node):
        """Returns (entry_state, exit_state)."""
        entry = nfa.new_state()
        exit_ = nfa.new_state()
        if isinstance(node, Sym):
            nfa.add_transition(entry, (node.label, node.inverted), exit_)
        elif isinstance(node, Epsilon):
            nfa.add_epsilon(entry, exit_)
        elif isinstance(node, Concat):
            left = build(node.left)
            right = build(node.right)
            nfa.add_epsilon(entry, left[0])
            nfa.add_epsilon(left[1], right[0])
            nfa.add_epsilon(right[1], exit_)
        elif isinstance(node, Union):
            left = build(node.left)
            right = build(node.right)
            nfa.add_epsilon(entry, left[0])
            nfa.add_epsilon(entry, right[0])
            nfa.add_epsilon(left[1], exit_)
            nfa.add_epsilon(right[1], exit_)
        elif isinstance(node, Star):
            inner = build(node.inner)
            nfa.add_epsilon(entry, inner[0])
            nfa.add_epsilon(entry, exit_)
            nfa.add_epsilon(inner[1], inner[0])
            nfa.add_epsilon(inner[1], exit_)
        elif isinstance(node, Plus):
            inner = build(node.inner)
            nfa.add_epsilon(entry, inner[0])
            nfa.add_epsilon(inner[1], inner[0])
            nfa.add_epsilon(inner[1], exit_)
        elif isinstance(node, Opt):
            inner = build(node.inner)
            nfa.add_epsilon(entry, inner[0])
            nfa.add_epsilon(entry, exit_)
            nfa.add_epsilon(inner[1], exit_)
        else:  # pragma: no cover - Regex AST is closed
            raise RegexError(f"unknown regex node {node!r}")
        return entry, exit_

    entry, exit_ = build(regex)
    nfa.start = entry
    nfa.accept = {exit_}
    return nfa


class DFA:
    """A deterministic finite automaton over (label, inverted) symbols."""

    def __init__(self, start, accept, transitions, n_states):
        self.start = start
        self.accept = frozenset(accept)
        self.transitions = dict(transitions)  # (state, symbol) -> state
        self.n_states = n_states

    def step(self, state, symbol):
        return self.transitions.get((state, symbol))

    def symbols(self):
        return {symbol for (_state, symbol) in self.transitions}

    def outgoing(self, state):
        """``[(symbol, target)]`` transitions leaving *state*."""
        return [
            (symbol, target)
            for (source, symbol), target in self.transitions.items()
            if source == state
        ]

    def accepts(self, word):
        state = self.start
        for symbol in word:
            if not isinstance(symbol, tuple):
                symbol = (symbol, False)
            state = self.step(state, symbol)
            if state is None:
                return False
        return state in self.accept

    def __repr__(self):
        return f"DFA({self.n_states} states, {len(self.transitions)} transitions)"


def determinize(nfa):
    """Subset construction (unreachable subsets never generated)."""
    start = nfa.epsilon_closure({nfa.start})
    symbols = nfa.symbols()
    index = {start: 0}
    transitions = {}
    accept = set()
    queue = deque([start])
    if start & nfa.accept:
        accept.add(0)
    while queue:
        subset = queue.popleft()
        source = index[subset]
        for symbol in symbols:
            target_subset = nfa.step(subset, symbol)
            if not target_subset:
                continue
            if target_subset not in index:
                index[target_subset] = len(index)
                queue.append(target_subset)
                if target_subset & nfa.accept:
                    accept.add(index[target_subset])
            transitions[(source, symbol)] = index[target_subset]
    return DFA(0, accept, transitions, len(index))


def minimize(dfa):
    """Moore's partition refinement (with an implicit dead state)."""
    symbols = sorted(dfa.symbols(), key=str)
    states = list(range(dfa.n_states))
    DEAD = -1

    def block_of(partition_index, state):
        return partition_index.get(state, DEAD)

    accepting = frozenset(dfa.accept)
    partition = {}
    for state in states:
        partition[state] = 1 if state in accepting else 0

    while True:
        signature = {}
        for state in states:
            signature[state] = (
                partition[state],
                tuple(
                    block_of(partition, dfa.step(state, symbol)) for symbol in symbols
                ),
            )
        blocks = {}
        new_partition = {}
        for state in states:
            key = signature[state]
            if key not in blocks:
                blocks[key] = len(blocks)
            new_partition[state] = blocks[key]
        if new_partition == partition:
            break
        partition = new_partition

    # Rebuild the DFA over blocks.
    start = partition[dfa.start]
    accept = {partition[s] for s in dfa.accept}
    transitions = {}
    for (source, symbol), target in dfa.transitions.items():
        transitions[(partition[source], symbol)] = partition[target]
    n_states = len(set(partition.values()))
    return DFA(start, accept, transitions, n_states)


def compile_regex(regex, minimized=True):
    """regex -> (minimized) DFA, the evaluator's workhorse."""
    dfa = determinize(thompson(regex))
    return minimize(dfa) if minimized else dfa
