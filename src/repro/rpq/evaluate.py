"""Regular path query evaluation by product-graph search.

Evaluating an edge query (Section 5 / [MW89]) amounts to reachability in
the product of the database graph and the query's DFA: a pair ``(x, y)`` is
an answer iff some accepting product state ``(y, q_f)`` is reachable from
``(x, q_0)``.  This is the NLOGSPACE-style evaluation that Lemma 3.5 relies
on — the searcher only remembers its frontier of (node, state) pairs.

Labels are matched through a *label key*: for
:class:`~repro.graphs.bridge.EdgeLabel` labels the predicate name, otherwise
the label itself.  Inverted symbols traverse edges backwards.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.bridge import EdgeLabel
from repro.rpq.automaton import compile_regex
from repro.rpq.csr import csr_index
from repro.rpq.regex import Regex, parse_regex


def default_label_key(label):
    if isinstance(label, EdgeLabel):
        return label.predicate
    return label


def _as_regex(regex):
    if isinstance(regex, str):
        return parse_regex(regex)
    if isinstance(regex, Regex):
        return regex
    raise TypeError(f"expected a Regex or string, got {type(regex).__name__}")


class RPQEvaluator:
    """Evaluates regular path queries over a :class:`LabeledMultigraph`.

    By default the reachability entry points (:meth:`pairs`,
    :meth:`targets`, :meth:`holds`) run over the CSR adjacency index with
    bitset frontiers (:mod:`repro.rpq.csr`); ``use_csr=False`` falls back
    to the per-pair dict walk.  :meth:`witness_path` and
    :meth:`matching_edges` always walk the dict adjacency — they need edge
    *identities*, which the compacted index deliberately drops.
    """

    def __init__(self, graph, label_key=default_label_key, use_csr=True):
        self.graph = graph
        self.label_key = label_key
        self.use_csr = use_csr

    # ------------------------------------------------------------------ API

    def pairs(self, regex, sources=None):
        """All ``(x, y)`` such that some path from x to y matches *regex*.

        With *sources* given, only pairs starting there are returned (and
        only those rows of the product are explored).
        """
        dfa = compile_regex(_as_regex(regex))
        if self.use_csr:
            index = csr_index(self.graph, self.label_key)
            out = set()
            for source in self._source_nodes(sources):
                for target in self._csr_reach_from(index, source, dfa):
                    out.add((source, target))
            return out
        out = set()
        for source in self._source_nodes(sources):
            for target in self._reach_from(source, dfa):
                out.add((source, target))
        return out

    def targets(self, regex, source):
        """All y reachable from one *source* along a matching path."""
        dfa = compile_regex(_as_regex(regex))
        if self.use_csr:
            return self._csr_reach_from(
                csr_index(self.graph, self.label_key), source, dfa
            )
        return self._reach_from(source, dfa)

    def holds(self, regex, source, target):
        """Does some path from *source* to *target* match *regex*?"""
        return target in self.targets(regex, source)

    def witness_path(self, regex, source, target):
        """One matching path as a list of edges, or None.

        The path is a shortest one in edge count.  Used by the visual layer
        to highlight answers like the prototype of Section 5.
        """
        dfa = compile_regex(_as_regex(regex))
        start = (source, dfa.start)
        parents = {start: None}
        queue = deque([start])
        goal = None
        while queue:
            node, state = queue.popleft()
            if node == target and state in dfa.accept:
                goal = (node, state)
                break
            for edge, next_state, forward in self._product_moves(node, state, dfa):
                nxt = ((edge.target if forward else edge.source), next_state)
                if nxt not in parents:
                    parents[nxt] = ((node, state), edge)
                    queue.append(nxt)
        if goal is None:
            return None
        path = []
        cursor = goal
        while parents[cursor] is not None:
            previous, edge = parents[cursor]
            path.append(edge)
            cursor = previous
        path.reverse()
        return path

    def matching_edges(self, regex, sources=None):
        """Every database edge lying on some matching path (for
        highlighting).  Computed by forward/backward product reachability."""
        dfa = compile_regex(_as_regex(regex))
        forward = self._forward_product(sources, dfa)
        backward = self._backward_product(dfa)
        edges = set()
        for node, state in forward:
            for edge, next_state, is_forward in self._product_moves(node, state, dfa):
                nxt = ((edge.target if is_forward else edge.source), next_state)
                if nxt in backward:
                    edges.add(edge)
        return edges

    # ------------------------------------------------------------ internals

    def _source_nodes(self, sources):
        if sources is None:
            return list(self.graph.nodes)
        return list(sources)

    def _product_moves(self, node, state, dfa):
        """Yield ``(edge, next_state, forward)`` product transitions."""
        for edge in self.graph.out_edges(node):
            next_state = dfa.step(state, (self.label_key(edge.label), False))
            if next_state is not None:
                yield edge, next_state, True
        for edge in self.graph.in_edges(node):
            next_state = dfa.step(state, (self.label_key(edge.label), True))
            if next_state is not None:
                yield edge, next_state, False

    def _csr_reach_from(self, index, source, dfa):
        """CSR/bitset counterpart of :meth:`_reach_from`."""
        if source not in index:
            # Unknown sources have no edges; only the empty path applies.
            return {source} if dfa.start in dfa.accept else set()
        mask = index.reach(dfa, (index.node_ids[source],))
        answers = index.decode(mask)
        if dfa.start in dfa.accept:
            answers.add(source)
        return answers

    def _reach_from(self, source, dfa):
        """Nodes y with an accepting product path from (source, q0)."""
        start = (source, dfa.start)
        seen = {start}
        queue = deque([start])
        answers = set()
        if dfa.start in dfa.accept:
            answers.add(source)
        while queue:
            node, state = queue.popleft()
            for edge, next_state, forward in self._product_moves(node, state, dfa):
                nxt = ((edge.target if forward else edge.source), next_state)
                if nxt in seen:
                    continue
                seen.add(nxt)
                if next_state in dfa.accept:
                    answers.add(nxt[0])
                queue.append(nxt)
        return answers

    def _forward_product(self, sources, dfa):
        seen = set()
        queue = deque()
        for source in self._source_nodes(sources):
            start = (source, dfa.start)
            if start not in seen:
                seen.add(start)
                queue.append(start)
        while queue:
            node, state = queue.popleft()
            for edge, next_state, forward in self._product_moves(node, state, dfa):
                nxt = ((edge.target if forward else edge.source), next_state)
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    def _backward_product(self, dfa):
        """Product states that can reach acceptance (backward BFS)."""
        # Build reverse product moves on demand: a backward step over a
        # forward edge, or a forward step over an inverted edge.
        seen = set()
        queue = deque()
        for node in self.graph.nodes:
            for state in dfa.accept:
                pair = (node, state)
                seen.add(pair)
                queue.append(pair)
        while queue:
            node, state = queue.popleft()
            for edge in self.graph.in_edges(node):
                for prev_state in self._states_stepping_to(
                    dfa, (self.label_key(edge.label), False), state
                ):
                    pair = (edge.source, prev_state)
                    if pair not in seen:
                        seen.add(pair)
                        queue.append(pair)
            for edge in self.graph.out_edges(node):
                for prev_state in self._states_stepping_to(
                    dfa, (self.label_key(edge.label), True), state
                ):
                    pair = (edge.target, prev_state)
                    if pair not in seen:
                        seen.add(pair)
                        queue.append(pair)
        return seen

    @staticmethod
    def _states_stepping_to(dfa, symbol, target_state):
        return [
            source
            for (source, sym), target in dfa.transitions.items()
            if sym == symbol and target == target_state
        ]


def rpq_pairs(graph, regex, sources=None, label_key=default_label_key):
    """One-shot convenience for :meth:`RPQEvaluator.pairs`."""
    return RPQEvaluator(graph, label_key).pairs(regex, sources)
