"""GraphLog reproduction: a visual formalism for real life recursion.

A from-scratch Python implementation of the system described in

    M. P. Consens and A. O. Mendelzon,
    "GraphLog: a Visual Formalism for Real Life Recursion", PODS 1990.

Subpackages:

- :mod:`repro.core` — the GraphLog language: path regular expressions,
  query graphs, graphical queries, the λ translation, the textual DSL, and
  the evaluation engine;
- :mod:`repro.datalog` — the stratified Datalog substrate (AST, parser,
  database, stratification, naive/semi-naive evaluation, program classes);
- :mod:`repro.graphs` — labeled multigraphs, the relational bridge, graph
  algorithms and transitive-closure kernels;
- :mod:`repro.rpq` — regular path queries: automata, product evaluation,
  regular simple paths (G+ edge queries);
- :mod:`repro.translation` — Algorithm 3.1 (SL-DATALOG -> STC-DATALOG);
- :mod:`repro.fo_tc` — first-order logic with transitive closure and the
  STC-DATALOG -> TC translation (Theorem 3.3);
- :mod:`repro.aggregation` — aggregates and path summarization (Section 4);
- :mod:`repro.ham` — the transactional, versioned graph store (Section 5);
- :mod:`repro.service` — the concurrent query service: a JSON-lines TCP
  server over the HAM store with prepared-plan caching and a
  store-coherent result cache, plus its blocking client;
- :mod:`repro.datasets` — paper instances and workload generators;
- :mod:`repro.visual` — DOT/ASCII rendering and answer highlighting;
- :mod:`repro.figures` — one module per paper figure, regenerating it.

Quickstart::

    from repro import GraphLogEngine, parse_graphical_query, Database

    db = Database()
    db.add_facts("descendant", [("ann", "bob"), ("bob", "cal")])
    db.add_facts("person", [("ann",), ("bob",), ("cal",)])

    query = parse_graphical_query('''
        define (P1) -[not-desc-of(P2)]-> (P3) {
            (P1) -[descendant+]-> (P3);
            (P2) -[~descendant+]-> (P3);
            person(P2);
        }
    ''')
    answers = GraphLogEngine().answers(query, db, "not-desc-of")
"""

import logging as _logging

# Library modules log through getLogger(__name__) and never install
# handlers; the NullHandler keeps "No handlers could be found" noise out of
# embedding applications.  CLI entry points call
# repro.obs.logs.configure_logging to attach a real handler.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from repro.core import (
    GraphLogEngine,
    GraphicalQuery,
    QueryGraph,
    answers,
    parse_graphical_query,
    parse_pre,
    parse_query_graph,
    run,
    translate,
)
from repro.datalog import (
    Database,
    Engine,
    Program,
    evaluate,
    parse_atom,
    parse_program,
    parse_rule,
    query,
)
from repro.gplus import GPlusEngine, GPlusQuery
from repro.graphs import LabeledMultigraph, graph_from_database
from repro.rpq import RPQEvaluator, parse_regex
from repro.translation import sl_to_stc
from repro.errors import ReproError

__version__ = "0.1.0"

__all__ = [
    "Database",
    "Engine",
    "GPlusEngine",
    "GPlusQuery",
    "GraphLogEngine",
    "GraphicalQuery",
    "LabeledMultigraph",
    "Program",
    "QueryGraph",
    "RPQEvaluator",
    "ReproError",
    "answers",
    "evaluate",
    "graph_from_database",
    "parse_atom",
    "parse_graphical_query",
    "parse_pre",
    "parse_program",
    "parse_query_graph",
    "parse_regex",
    "parse_rule",
    "query",
    "run",
    "sl_to_stc",
    "translate",
    "__version__",
]
