"""Datalog substrate: AST, parser, database, stratification, evaluation.

This package implements the stratified Datalog engine that GraphLog queries
are translated into (Section 2 of the paper), plus the structural program
classes of Section 3 (linear, TC-shaped).
"""

from repro.datalog.ast import (
    ArithmeticAssign,
    Atom,
    Comparison,
    Literal,
    Program,
    Rule,
    atom,
    fact,
    lit,
    neglit,
    rule,
)
from repro.datalog.classify import (
    classification,
    is_linear,
    is_stratified_linear,
    is_stratified_tc_program,
    is_tc_program,
    recursive_predicates,
)
from repro.datalog.database import Database, Relation
from repro.datalog.engine import Engine, evaluate, match_atom, query
from repro.datalog.magic import magic_answers, magic_query, magic_rewrite
from repro.datalog.parser import parse_atom, parse_program, parse_rule
from repro.datalog.provenance import Derivation, explain, why
from repro.datalog.safety import check_program_safety, check_rule_safety, is_safe
from repro.datalog.stratify import (
    DependenceGraph,
    is_stratified,
    stratify,
    stratum_order,
)
from repro.datalog.terms import (
    Constant,
    FreshVariables,
    Sentinel,
    Term,
    Variable,
    make_constant,
    make_term,
    make_variable,
)

__all__ = [
    "ArithmeticAssign",
    "Atom",
    "Comparison",
    "Constant",
    "Database",
    "DependenceGraph",
    "Engine",
    "FreshVariables",
    "Literal",
    "Program",
    "Relation",
    "Rule",
    "Sentinel",
    "Term",
    "Variable",
    "atom",
    "check_program_safety",
    "check_rule_safety",
    "Derivation",
    "classification",
    "explain",
    "evaluate",
    "fact",
    "is_linear",
    "is_safe",
    "is_stratified",
    "is_stratified_linear",
    "is_stratified_tc_program",
    "is_tc_program",
    "lit",
    "magic_answers",
    "magic_query",
    "magic_rewrite",
    "make_constant",
    "make_term",
    "make_variable",
    "match_atom",
    "neglit",
    "parse_atom",
    "parse_program",
    "parse_rule",
    "query",
    "recursive_predicates",
    "rule",
    "stratify",
    "stratum_order",
    "why",
]
