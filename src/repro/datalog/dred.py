"""Incremental maintenance of stratified Datalog fixpoints.

Given a fully-evaluated database for a program and a fact-level EDB delta
(insertions and deletions), :class:`MaintenancePlan` updates the database
*in place* to the fixpoint over the new EDB — in time proportional to the
change, not the database.  Two complementary techniques, chosen per
evaluation group (SCC within a stratum, the same grouping the semi-naive
engine evaluates in):

- **Support counting** for non-recursive groups: every derived fact carries
  the number of rule instantiations deriving it (plus one "extensional"
  support when the fact is also asserted directly).  A delta adjusts the
  counts through signed telescoping delta-joins — the delta at one body
  position, earlier positions against the new state, later positions
  against the old — and a fact is deleted exactly when its count reaches
  zero.  Exact, no rederivation needed; unsound for recursive groups
  (cyclic support) and for negated literals with projected (anonymous)
  variables, which therefore take the DRed path.

- **Delete-and-rederive (DRed)** for recursive groups: *overdelete* every
  fact with a derivation that touched the delta (an overestimate, computed
  semi-naive style against the old state), then *rederive* overdeleted
  facts still derivable from what remains, then propagate insertions
  semi-naive.  Stratified negation is handled in both directions: a fact
  *appearing* under a negated literal triggers overdeletion, a fact
  *disappearing* triggers insertion.

The net effect of a run is recorded per predicate so downstream strata (and
callers, e.g. materialized views) see only real changes: a fact deleted and
rederived is no change at all.
"""

from __future__ import annotations

from collections import defaultdict

from repro import obs
from repro.datalog.ast import ArithmeticAssign, Atom, Comparison, Literal
from repro.datalog.database import Relation
from repro.datalog.engine import Engine, _match_against
from repro.datalog.safety import schedule_body
from repro.datalog.stratify import stratify
from repro.datalog.terms import Variable

_OLD = "\x00old"
_NEW = "\x00new"


class MaintenanceStats:
    """Counters from one :meth:`MaintenancePlan.maintain` run.

    ``added``/``deleted`` carry the net per-predicate row changes of the
    run (``{predicate: set of rows}``, empty predicates omitted) so callers
    — live subscriptions in particular — can stream the exact view delta
    without diffing before/after snapshots.
    """

    __slots__ = (
        "overdeleted",
        "rederived",
        "count_updates",
        "facts_inserted",
        "facts_deleted",
        "counting_groups",
        "dred_groups",
        "added",
        "deleted",
    )

    def __init__(self):
        self.overdeleted = 0
        self.rederived = 0
        self.count_updates = 0
        self.facts_inserted = 0
        self.facts_deleted = 0
        self.counting_groups = 0
        self.dred_groups = 0
        self.added = {}
        self.deleted = {}

    def __repr__(self):
        return (
            f"MaintenanceStats(+{self.facts_inserted}/-{self.facts_deleted}, "
            f"overdeleted={self.overdeleted}, rederived={self.rederived}, "
            f"count_updates={self.count_updates})"
        )


class _UnionRelation:
    """Read-only union of a live relation and a live extra relation.

    Used as the *old* view of a predicate while its rows are being moved
    from the current relation into the removed set: ``current ∪ removed``
    equals the pre-commit extension exactly as long as nothing has been
    added to the predicate yet.
    """

    __slots__ = ("_base", "_extra", "arity")

    def __init__(self, base, extra):
        self._base = base
        self._extra = extra
        self.arity = base.arity

    def lookup(self, positions, values):
        base = self._base.lookup(positions, values)
        extra = self._extra.lookup(positions, values)
        if not extra:
            return base
        if not base:
            return extra
        return list(base) + list(extra)


class _Facade:
    """A Database stand-in resolving predicate names through a callable."""

    __slots__ = ("_resolve",)

    def __init__(self, resolve):
        self._resolve = resolve

    def relation(self, predicate):
        return self._resolve(predicate)


def _greedy_order(first, pending, append=None):
    """Order *pending* for left-to-right evaluation after *first*.

    Same policy as :func:`repro.datalog.safety.schedule_body`, seeded with
    the bindings *first* provides — used to put the delta literal in front
    so a maintenance join enumerates the (small) delta, not a base relation.
    """
    ordered = [first]
    bound = {v for v in first.variables() if not v.is_anonymous}
    pending = list(pending)

    def ready(element):
        if isinstance(element, Literal):
            if element.positive:
                return True
            return {v for v in element.variables() if not v.is_anonymous} <= bound
        if isinstance(element, Comparison):
            if element.op == "==":
                sides = [element.left, element.right]
                unbound = [
                    s for s in sides if isinstance(s, Variable) and s not in bound
                ]
                return len(unbound) <= 1
            return element.variables() <= bound
        if isinstance(element, ArithmeticAssign):
            return element.input_variables() <= bound
        return False

    def bind(element):
        if isinstance(element, Literal) and element.positive:
            bound.update(v for v in element.variables() if not v.is_anonymous)
        elif isinstance(element, Comparison) and element.op == "==":
            bound.update(element.variables())
        elif isinstance(element, ArithmeticAssign):
            bound.update(element.variables())

    while pending:
        choice = None
        for element in pending:
            if not isinstance(element, Literal) and ready(element):
                choice = element
                break
            if isinstance(element, Literal) and element.negative and ready(element):
                choice = element
                break
        if choice is None:
            best_score = None
            for element in pending:
                if isinstance(element, Literal) and element.positive:
                    score = len(element.variables() & bound)
                    score = score * 100 - len(element.variables() - bound)
                    if best_score is None or score > best_score:
                        best_score = score
                        choice = element
        if choice is None:  # pragma: no cover - original schedule was valid
            break
        pending.remove(choice)
        ordered.append(choice)
        bind(choice)
    ordered.extend(pending)  # no-op normally; keeps stragglers if greedy stalls
    if append is not None:
        ordered.append(append)
    return ordered


def _bind_head(head, row):
    """The binding making *head* equal *row*, or None on mismatch."""
    binding = {}
    for term, value in zip(head.args, row):
        if isinstance(term, Variable):
            seen = binding.get(term)
            if seen is None:
                binding[term] = value
            elif seen != value:
                return None
        elif term.value != value:
            return None
    return binding


class MaintenancePlan:
    """The reusable, per-program half of incremental maintenance.

    Stratification, evaluation grouping, body schedules, and per-group
    technique selection run once here; :meth:`maintain` then costs only the
    joins the delta actually touches.  Raises whatever :func:`stratify`
    raises for non-stratifiable programs — callers fall back to full
    recomputation in that case.
    """

    def __init__(self, program):
        self.program = program
        self.engine = Engine(check_safety=False)
        self.strata = stratify(program)
        self.idb = program.idb_predicates
        self.groups = Engine._evaluation_groups(program, self.strata, self.idb)
        #: Program facts are axioms: maintenance never deletes them.
        self.axioms = {
            (rule.head.predicate, tuple(t.value for t in rule.head.args))
            for rule in program
            if rule.is_fact
        }
        self._group_plans = []
        for group in self.groups:
            rules = [
                (rule, schedule_body(rule))
                for rule in program
                if not rule.is_fact and rule.head.predicate in group
            ]
            body_preds = {
                element.predicate
                for _rule, schedule in rules
                for element in schedule
                if isinstance(element, Literal)
            }
            self._group_plans.append(
                (group, rules, body_preds, self._counting_eligible(group, rules))
            )

    @staticmethod
    def _counting_eligible(group, rules):
        """Counting is exact only without recursion and with fully-bound
        negated literals (a projected negation flips per *instance*, not per
        row, so per-row signed counting would overcount)."""
        for _rule, schedule in rules:
            for element in schedule:
                if not isinstance(element, Literal):
                    continue
                if element.positive and element.predicate in group:
                    return False
                if element.negative and any(
                    isinstance(t, Variable) and t.is_anonymous
                    for t in element.atom.args
                ):
                    return False
        return True

    # ------------------------------------------------------------- evaluate

    def evaluate(self, edb, method="seminaive"):
        """Full evaluation plus initial support counts.

        Returns ``(database, counts)``: the evaluated database (a new copy,
        as :meth:`Engine.evaluate`) and the derivation-count map for every
        counting-eligible group's facts.  Facts present without any rule
        derivation (program facts, or EDB rows under an IDB name) get one
        extensional support so a count of zero always means "gone".
        """
        database = Engine(method=method, check_safety=False).evaluate(
            self.program, edb
        )
        counts = {}
        for group, rules, _body_preds, eligible in self._group_plans:
            if not eligible:
                continue
            for rule, schedule in rules:
                head_pred = rule.head.predicate
                for row, _support in self.engine._fire(rule, schedule, database):
                    key = (head_pred, row)
                    counts[key] = counts.get(key, 0) + 1
            for predicate in group:
                edb_rows = edb.facts(predicate) if hasattr(edb, "facts") else ()
                for row in database.facts(predicate):
                    key = (predicate, row)
                    extensional = (row in edb_rows) + ((predicate, row) in self.axioms)
                    total = counts.get(key, 0) + extensional
                    # Every present row has some support; a derivation-free,
                    # non-extensional row can only come from a caller-seeded
                    # database, so pin it rather than let its count read 0.
                    counts[key] = total if total else 1
        self.warm(database)
        return database, counts

    def warm(self, database):
        """Pre-build every column index the maintenance joins will probe.

        A first delta join against a large relation would otherwise pay a
        full lazy index build — O(database) hiding inside a supposedly
        O(delta) maintain() call.  Amortized here, where evaluation already
        paid a proportional cost.
        """
        for _group, rules, _body_preds, _eligible in self._group_plans:
            for rule, schedule in rules:
                for index, element in enumerate(schedule):
                    if not isinstance(element, Literal):
                        continue
                    first = (
                        element
                        if element.positive
                        else Literal(element.atom, positive=True)
                    )
                    ordered = _greedy_order(
                        first,
                        (e for j, e in enumerate(schedule) if j != index),
                        append=None if element.positive else element,
                    )
                    bound = {v for v in first.variables() if not v.is_anonymous}
                    self._warm_schedule(ordered[1:], bound, database)
                # Rederivation probes run with the head variables bound.
                head_vars = {
                    v for v in rule.head_variables() if not v.is_anonymous
                }
                self._warm_schedule(schedule, head_vars, database)

    @staticmethod
    def _warm_schedule(elements, bound, database):
        bound = set(bound)
        for element in elements:
            if isinstance(element, Literal):
                positions = tuple(
                    i
                    for i, term in enumerate(element.atom.args)
                    if not isinstance(term, Variable)
                    or (not term.is_anonymous and term in bound)
                )
                if element.predicate in database:
                    database.relation(element.predicate).ensure_index(positions)
                if element.positive:
                    bound.update(
                        v for v in element.variables() if not v.is_anonymous
                    )
            elif isinstance(element, Comparison):
                if element.op == "==":
                    bound.update(element.variables())
            elif isinstance(element, ArithmeticAssign):
                bound.update(element.variables())

    # ------------------------------------------------------------- maintain

    def maintain(self, database, delta_plus=None, delta_minus=None, counts=None):
        """Update *database* (in place) under an EDB delta; returns stats.

        ``delta_plus``/``delta_minus`` map predicate names to iterables of
        rows that became true / false.  ``counts`` is the support-count map
        from :meth:`evaluate`, updated in place; without it every group
        takes the DRed path (still correct, counting is the fast path for
        the non-recursive groups).  Deltas naming an IDB predicate are
        treated as assertions/retractions of base facts under that name.
        """
        stats = MaintenanceStats()
        tracer = obs.tracer()
        delta_plus = {
            p: {tuple(r) for r in rows} for p, rows in (delta_plus or {}).items()
        }
        delta_minus = {
            p: {tuple(r) for r in rows} for p, rows in (delta_minus or {}).items()
        }
        with tracer.span(
            "dred.maintain",
            delta_plus={p: len(rows) for p, rows in sorted(delta_plus.items())},
            delta_minus={p: len(rows) for p, rows in sorted(delta_minus.items())},
            # Maintenance joins run the native walker: deltas are small by
            # design, so per-row encoding into the columnar form would cost
            # more than the joins it accelerates (see docs/ENGINE.md).
            backend="native",
        ) as root:
            added = {}
            removed = {}

            def note_add(predicate, row):
                out = removed.get(predicate)
                if out is not None and out.discard(row):
                    return
                into = added.get(predicate)
                if into is None:
                    into = added[predicate] = Relation(predicate, len(row))
                into.add(row)

            def note_remove(predicate, row):
                out = added.get(predicate)
                if out is not None and out.discard(row):
                    return
                into = removed.get(predicate)
                if into is None:
                    into = removed[predicate] = Relation(predicate, len(row))
                into.add(row)

            # Pure-EDB deltas apply immediately; IDB-named deltas are handled
            # by their own group below (they interact with derived support).
            for predicate in set(delta_plus) | set(delta_minus):
                if predicate in self.idb:
                    continue
                for row in delta_minus.get(predicate, ()):
                    if predicate in database and database.relation(predicate).discard(row):
                        note_remove(predicate, row)
                for row in delta_plus.get(predicate, ()):
                    if database.relation(predicate, len(row)).add(row):
                        note_add(predicate, row)

            for group, rules, body_preds, eligible in self._group_plans:
                group_plus = {p: delta_plus[p] for p in group if p in delta_plus}
                group_minus = {p: delta_minus[p] for p in group if p in delta_minus}
                touched = group_plus or group_minus or any(
                    added.get(p) or removed.get(p) for p in body_preds
                )
                if not touched:
                    continue
                for rule, _schedule in rules:
                    self.engine._declare_relations([rule], database)
                if eligible and counts is not None:
                    stats.counting_groups += 1
                    with tracer.span(
                        "dred.group", technique="counting", predicates=sorted(group)
                    ) as span:
                        self._maintain_counting(
                            group, rules, database, added, removed,
                            group_plus, group_minus, counts, note_add, note_remove,
                            stats,
                        )
                        if span:
                            span.annotate(count_updates=stats.count_updates)
                else:
                    stats.dred_groups += 1
                    with tracer.span(
                        "dred.group", technique="dred", predicates=sorted(group)
                    ) as span:
                        self._maintain_dred(
                            group, rules, database, added, removed,
                            group_plus, group_minus, note_add, note_remove, stats,
                            span=span,
                        )

            stats.facts_inserted = sum(len(r) for r in added.values())
            stats.facts_deleted = sum(len(r) for r in removed.values())
            stats.added = {p: set(r) for p, r in added.items() if len(r)}
            stats.deleted = {p: set(r) for p, r in removed.items() if len(r)}
            if root:
                root.annotate(
                    inserted=stats.facts_inserted,
                    deleted=stats.facts_deleted,
                    overdeleted=stats.overdeleted,
                    rederived=stats.rederived,
                    counting_groups=stats.counting_groups,
                    dred_groups=stats.dred_groups,
                )
        return stats

    # ------------------------------------------------------------- internals

    def _old_resolver(self, database, added, removed):
        """Per-phase resolver mapping predicates to their *old* extension.

        While a group's own rows only move from current to removed, the
        union view tracks the old state exactly and costs nothing to build;
        a predicate that also gained rows needs a materialized snapshot.
        """
        cache = {}

        def resolve(predicate):
            view = cache.get(predicate)
            if view is not None:
                return view
            relation = database.relation(predicate)
            add = added.get(predicate)
            rem = removed.get(predicate)
            if not add and not rem:
                view = relation
            elif not add:
                view = _UnionRelation(relation, rem)
            else:
                view = Relation(predicate, relation.arity)
                for row in relation:
                    if row not in add:
                        view.add(row)
                if rem:
                    view.add_many(rem.tuples)
            cache[predicate] = view
            return view

        return _Facade(resolve)

    def _maintain_dred(
        self, group, rules, database, added, removed,
        group_plus, group_minus, note_add, note_remove, stats,
        span=obs.NULL_SPAN,
    ):
        engine = self.engine

        # Phase 0: base-fact deltas aimed directly at this group's predicates.
        for predicate, rows in group_minus.items():
            relation = database.relation(predicate)
            for row in rows:
                if (predicate, row) in self.axioms:
                    continue
                if relation.discard(row):
                    note_remove(predicate, row)
        for predicate, rows in group_plus.items():
            relation = database.relation(predicate, None)
            for row in rows:
                if relation.add(row):
                    note_add(predicate, row)

        # Phase 1: overdelete.  Triggers: net-removed rows under positive
        # literals, net-added rows under negated literals; joins run against
        # the old state (current ∪ removed while nothing is re-added).
        old_state = self._old_resolver(database, added, removed)
        minus_triggers = {
            p: set(removed[p].tuples)
            for p in body_preds_of(rules)
            if removed.get(p)
        }
        plus_triggers = {
            p: set(added[p].tuples)
            for p in body_preds_of(rules)
            if added.get(p)
        }

        def overdelete_round(triggers, negated_triggers):
            produced = defaultdict(set)
            for rule, schedule in rules:
                head_pred = rule.head.predicate
                relation = database.relation(head_pred)
                for index, element in enumerate(schedule):
                    if not isinstance(element, Literal):
                        continue
                    if element.positive:
                        rows = triggers.get(element.predicate)
                        if not rows:
                            continue
                        first, append = element, None
                    else:
                        rows = negated_triggers.get(element.predicate)
                        if not rows:
                            continue
                        # Enumerate the rows that *became* true; the
                        # appended original literal re-checks the negation
                        # against the old state.
                        first, append = Literal(element.atom, positive=True), element
                    delta = Relation(element.predicate, len(next(iter(rows))))
                    delta.add_many(rows)
                    ordered = _greedy_order(
                        first,
                        (e for j, e in enumerate(schedule) if j != index),
                        append=append,
                    )
                    for row, _support in engine._fire(
                        rule, ordered, old_state,
                        delta_position=0, delta_relation=delta,
                    ):
                        if (head_pred, row) in self.axioms:
                            continue
                        if relation.discard(row):
                            note_remove(head_pred, row)
                            produced[head_pred].add(row)
                            stats.overdeleted += 1
            return produced

        frontier = overdelete_round(minus_triggers, plus_triggers)
        if span:
            span.append(
                "overdelete_rounds", sum(len(rows) for rows in frontier.values())
            )
        while frontier:
            frontier = overdelete_round(frontier, {})
            if span:
                span.append(
                    "overdelete_rounds", sum(len(rows) for rows in frontier.values())
                )

        # Phase 2: rederive.  An overdeleted fact still derivable from the
        # remaining state goes back (net: it never changed); iterate, since
        # a rederived fact can support another candidate.
        candidates = {
            p: set(removed[p].tuples) for p in group if removed.get(p)
        }
        progressed = True
        while progressed and any(candidates.values()):
            progressed = False
            round_rederived = 0
            for predicate, rows in candidates.items():
                relation = database.relation(predicate)
                for row in list(rows):
                    if self._derivable(rules, database, predicate, row):
                        relation.add(row)
                        note_add(predicate, row)  # cancels the removal
                        rows.discard(row)
                        stats.rederived += 1
                        round_rederived += 1
                        progressed = True
            if span and round_rederived:
                span.append("rederive_rounds", round_rederived)

        # Phase 3: insert propagation against the new state.  Triggers:
        # net-added rows under positive literals, net-removed rows under
        # negated ones (the appended literal re-checks against new state).
        plus_triggers = {
            p: set(added[p].tuples)
            for p in body_preds_of(rules)
            if added.get(p)
        }
        minus_triggers = {
            p: set(removed[p].tuples)
            for p in body_preds_of(rules)
            if removed.get(p)
        }

        def insert_round(triggers, negated_triggers):
            produced = defaultdict(set)
            for rule, schedule in rules:
                head_pred = rule.head.predicate
                relation = database.relation(head_pred)
                for index, element in enumerate(schedule):
                    if not isinstance(element, Literal):
                        continue
                    if element.positive:
                        rows = triggers.get(element.predicate)
                        if not rows:
                            continue
                        first, append = element, None
                    else:
                        rows = negated_triggers.get(element.predicate)
                        if not rows:
                            continue
                        first, append = Literal(element.atom, positive=True), element
                    delta = Relation(element.predicate, len(next(iter(rows))))
                    delta.add_many(rows)
                    ordered = _greedy_order(
                        first,
                        (e for j, e in enumerate(schedule) if j != index),
                        append=append,
                    )
                    for row, _support in engine._fire(
                        rule, ordered, database,
                        delta_position=0, delta_relation=delta,
                    ):
                        if relation.add(row):
                            note_add(head_pred, row)
                            produced[head_pred].add(row)
            return produced

        frontier = insert_round(plus_triggers, minus_triggers)
        if span:
            span.append("insert_rounds", sum(len(rows) for rows in frontier.values()))
        while frontier:
            frontier = insert_round(frontier, {})
            if span:
                span.append(
                    "insert_rounds", sum(len(rows) for rows in frontier.values())
                )

    def _derivable(self, rules, database, predicate, row):
        for rule, schedule in rules:
            if rule.head.predicate != predicate:
                continue
            binding = _bind_head(rule.head, row)
            if binding is None:
                continue
            if self._satisfiable(schedule, database, binding):
                return True
        return False

    def _satisfiable(self, schedule, state, binding):
        engine = self.engine

        def walk(index, binding):
            if index == len(schedule):
                return True
            element = schedule[index]
            if isinstance(element, Literal):
                if element.positive:
                    relation = state.relation(element.predicate)
                    for extended in _match_against(relation, element.atom, binding):
                        if walk(index + 1, extended):
                            return True
                    return False
                if engine._negative_holds(state, element, binding):
                    return walk(index + 1, binding)
                return False
            if isinstance(element, Comparison):
                extended = engine._apply_comparison(element, binding)
            elif isinstance(element, ArithmeticAssign):
                extended = engine._apply_arithmetic(element, binding)
            else:  # pragma: no cover - AST is closed
                return False
            return extended is not None and walk(index + 1, extended)

        return walk(0, binding)

    def _maintain_counting(
        self, group, rules, database, added, removed,
        group_plus, group_minus, counts, note_add, note_remove, stats,
    ):
        """Exact signed-delta count maintenance for a non-recursive group.

        For the delta at body position *i*, positions before *i* read the
        new state and positions after it the old state (the telescoping
        decomposition of new ⋈ − old ⋈), so each lost or gained rule
        instantiation is counted exactly once.
        """
        engine = self.engine
        old_state = self._old_resolver(database, added, removed)
        new_state = database
        changes = defaultdict(int)

        # Base-fact deltas on this group's own predicates: one extensional
        # support each.
        for predicate, rows in group_minus.items():
            for row in rows:
                if (predicate, row) in self.axioms:
                    continue  # the program still asserts it
                if counts.get((predicate, row), 0) > 0:
                    changes[(predicate, row)] -= 1
        for predicate, rows in group_plus.items():
            for row in rows:
                changes[(predicate, row)] += 1

        def views(predicate, old):
            return (old_state if old else new_state).relation(predicate)

        for rule, schedule in rules:
            head_pred = rule.head.predicate
            literal_positions = [
                i for i, e in enumerate(schedule) if isinstance(e, Literal)
            ]
            for index in literal_positions:
                element = schedule[index]
                if element.positive:
                    signed = (
                        (removed.get(element.predicate), -1),
                        (added.get(element.predicate), +1),
                    )
                else:
                    signed = (
                        (added.get(element.predicate), -1),
                        (removed.get(element.predicate), +1),
                    )
                if not any(rel for rel, _sign in signed):
                    continue
                # Hybrid schedule: alias each other literal to the new or
                # old extension by its position relative to the delta.
                aliased = []
                alias_map = {}
                for j, other in enumerate(schedule):
                    if j == index:
                        aliased.append(Literal(element.atom, positive=True))
                        continue
                    if not isinstance(other, Literal):
                        aliased.append(other)
                        continue
                    old = j > index
                    alias = other.predicate + (_OLD if old else _NEW)
                    alias_map[alias] = views(other.predicate, old)
                    aliased.append(
                        Literal(Atom(alias, other.atom.args), positive=other.positive)
                    )
                facade = _Facade(alias_map.__getitem__)
                for delta_rel, sign in signed:
                    if not delta_rel:
                        continue
                    ordered = _greedy_order(
                        aliased[index],
                        (e for j, e in enumerate(aliased) if j != index),
                    )
                    for row, _support in engine._fire(
                        rule, ordered, facade,
                        delta_position=0, delta_relation=delta_rel,
                    ):
                        changes[(head_pred, row)] += sign

        for (predicate, row), change in changes.items():
            if change == 0:
                continue
            stats.count_updates += 1
            key = (predicate, row)
            before = counts.get(key, 0)
            after = before + change
            if after <= 0:
                counts.pop(key, None)
                if before > 0 and database.relation(predicate).discard(row):
                    note_remove(predicate, row)
            else:
                counts[key] = after
                if before == 0 and database.relation(predicate, len(row)).add(row):
                    note_add(predicate, row)


def body_preds_of(rules):
    """Every predicate referenced in the bodies of *rules*."""
    return {
        element.predicate
        for _rule, schedule in rules
        for element in schedule
        if isinstance(element, Literal)
    }


def evaluate_with_counts(program, edb, method="seminaive"):
    """Convenience: build a plan, evaluate, return (plan, database, counts)."""
    plan = MaintenancePlan(program)
    database, counts = plan.evaluate(edb, method=method)
    return plan, database, counts


def maintain(program, database, delta_plus=None, delta_minus=None, counts=None):
    """One-shot maintenance without a reusable plan (testing convenience)."""
    return MaintenancePlan(program).maintain(
        database, delta_plus=delta_plus, delta_minus=delta_minus, counts=counts
    )
