"""A small hand-written tokenizer shared by the Datalog and GraphLog parsers."""

from __future__ import annotations

from repro.errors import ParseError

# Multi-character punctuation must be listed before its prefixes.
PUNCTUATION = (
    ":-",
    "=>",
    "->",
    "==",
    "!=",
    "<=",
    ">=",
    "<",
    ">",
    "=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ".",
    ";",
    ":",
    "+",
    "-",
    "*",
    "/",
    "%",
    "|",
    "?",
    "!",
    "~",
    "^",
    "_",
    "@",
)


class Token:
    """A lexical token with source position for error messages."""

    __slots__ = ("kind", "text", "value", "line", "column")

    def __init__(self, kind, text, value, line, column):
        self.kind = kind  # 'ident' | 'var' | 'number' | 'string' | 'punct' | 'eof'
        self.text = text
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source, keep_underscore_var=True):
    """Tokenize *source* into a list of :class:`Token` ending with EOF.

    - identifiers starting lowercase -> ``ident``
    - identifiers starting uppercase or underscore -> ``var``
    - numbers (int/float, no sign) -> ``number``
    - single- or double-quoted strings -> ``string``
    - ``%`` and ``#`` start line comments
    """
    tokens = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch in "%#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                raise ParseError("unterminated comment", line, column)
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            buf = []
            while j < n and source[j] != quote:
                if source[j] == "\\" and j + 1 < n:
                    buf.append(source[j + 1])
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated string", line, column)
            text = source[i : j + 1]
            tokens.append(Token("string", text, "".join(buf), line, column))
            column += len(text)
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            is_float = False
            if j < n and source[j] == "." and j + 1 < n and source[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            value = float(text) if is_float else int(text)
            tokens.append(Token("number", text, value, line, column))
            column += len(text)
            i = j
            continue
        if ch.isalpha() or (ch == "_" and keep_underscore_var):
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_-"):
                # Hyphenated identifiers (e.g. "not-desc-of") follow the paper;
                # a hyphen counts only when surrounded by alphanumerics.
                if source[j] == "-":
                    if not (j + 1 < n and source[j + 1].isalnum()):
                        break
                j += 1
            text = source[i:j]
            if text == "_" or text[0].isupper() or text[0] == "_":
                kind = "var"
            else:
                kind = "ident"
            tokens.append(Token(kind, text, text, line, column))
            column += len(text)
            i = j
            continue
        for punct in PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token("punct", punct, punct, line, column))
                column += len(punct)
                i += len(punct)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", None, line, column))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    def peek(self, ahead=0):
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self):
        token = self.peek()
        if token.kind != "eof":
            self._pos += 1
        return token

    def at(self, kind, text=None):
        token = self.peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def at_punct(self, *texts):
        token = self.peek()
        return token.kind == "punct" and token.text in texts

    def accept(self, kind, text=None):
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind, text=None):
        token = self.peek()
        if not self.at(kind, text):
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text or token.kind!r}",
                token.line,
                token.column,
            )
        return self.next()

    @property
    def exhausted(self):
        return self.peek().kind == "eof"
