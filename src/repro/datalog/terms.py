"""Terms of the Datalog language: variables, constants, and sentinels.

The convention throughout the library mirrors textual Datalog: variables
start with an uppercase letter (or underscore), constants are lowercase
identifiers, quoted strings, or numbers.  :class:`Sentinel` constants are
used by Algorithm 3.1 as *signature* values guaranteed not to collide with
any domain value (Section 3 of the paper).
"""

from __future__ import annotations

import itertools


class Term:
    """Abstract base class for Datalog terms."""

    __slots__ = ()

    @property
    def is_variable(self):
        return isinstance(self, Variable)

    @property
    def is_constant(self):
        return isinstance(self, Constant)


class Variable(Term):
    """A logic variable, identified by its name."""

    __slots__ = ("name",)

    def __init__(self, name):
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self):
        return hash(("var", self.name))

    def __repr__(self):
        return f"Variable({self.name!r})"

    def __str__(self):
        return self.name

    @property
    def is_anonymous(self):
        """True for underscore variables, which never join with anything."""
        return self.name.startswith("_")


class Constant(Term):
    """A constant term wrapping an arbitrary hashable Python value."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self):
        return hash(("const", self.value))

    def __repr__(self):
        return f"Constant({self.value!r})"

    def __str__(self):
        value = self.value
        if isinstance(value, str):
            # Hyphenated lowercase identifiers (the paper's style, e.g.
            # "async-io") print bare; anything else is quoted.
            bare = value.replace("-", "_")
            if bare.isidentifier() and value[:1].islower():
                return value
            return repr(value)
        return str(value)


class Sentinel:
    """An out-of-domain marker value with identity-free equality by name.

    Algorithm 3.1 pads predicate arguments with signature constants that must
    never equal a database value.  Wrapping a ``Sentinel`` in a
    :class:`Constant` guarantees collision-freedom because sentinels compare
    equal only to sentinels carrying the same name.
    """

    __slots__ = ("name",)

    _counter = itertools.count()

    def __init__(self, name=None):
        if name is None:
            name = f"#s{next(Sentinel._counter)}"
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Sentinel) and self.name == other.name

    def __hash__(self):
        return hash(("sentinel", self.name))

    def __repr__(self):
        return f"Sentinel({self.name!r})"

    def __str__(self):
        return f"#{self.name}"


def make_term(value):
    """Coerce a Python value into a :class:`Term`.

    Strings beginning with an uppercase letter or underscore become
    variables; every other value becomes a constant.  Existing terms pass
    through unchanged.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


def make_constant(value):
    """Coerce a Python value into a :class:`Constant` (never a variable)."""
    if isinstance(value, Constant):
        return value
    if isinstance(value, Variable):
        raise TypeError(f"expected a constant, got variable {value}")
    return Constant(value)


def make_variable(name):
    """Coerce a name into a :class:`Variable`."""
    if isinstance(name, Variable):
        return name
    if isinstance(name, Constant):
        raise TypeError(f"expected a variable, got constant {name}")
    return Variable(str(name))


class FreshVariables:
    """A generator of variable names guaranteed fresh w.r.t. a used set."""

    def __init__(self, used=(), prefix="V"):
        self._used = {v.name if isinstance(v, Variable) else str(v) for v in used}
        self._prefix = prefix
        self._next = 0

    def reserve(self, name):
        """Mark *name* as used so it is never handed out."""
        self._used.add(name)

    def fresh(self, hint=None):
        """Return a new :class:`Variable` not seen before."""
        base = hint or self._prefix
        while True:
            candidate = f"{base}{self._next}"
            self._next += 1
            if candidate not in self._used:
                self._used.add(candidate)
                return Variable(candidate)
