"""Magic-sets transformation for goal-directed Datalog evaluation.

Section 6 of the paper notes that GraphLog implementations "can benefit from
the existing work on transitive closure computation and linear Datalog
optimization (see [Ull89])".  This module implements the classic
supplementary-free magic-sets rewriting of [Ull89] for *positive* programs:
given a goal with some bound arguments, the rewritten program computes only
the part of each IDB relevant to the goal, which bottom-up evaluation then
explores like a top-down engine would.

Restrictions: the transformation is applied to positive relational rules
(no negation, no built-ins) — the fragment where magic sets is sound without
further machinery.  Programs outside the fragment raise
:class:`~repro.errors.TranslationError`; callers fall back to full
evaluation.  The ``abl4`` benchmark quantifies the win on bound-argument
closure goals.
"""

from __future__ import annotations

from repro import obs
from repro.datalog.ast import Atom, Literal, Program, Rule
from repro.datalog.engine import Engine, match_atom
from repro.datalog.terms import Constant, Variable
from repro.errors import TranslationError

MAGIC_PREFIX = "magic#"


def adornment_of(goal):
    """The bound/free pattern of a goal atom: 'b' for constants, 'f' else."""
    return "".join("b" if isinstance(t, Constant) else "f" for t in goal.args)


def _adorned_name(predicate, adornment):
    return f"{predicate}@{adornment}"


def _magic_name(predicate, adornment):
    return f"{MAGIC_PREFIX}{predicate}@{adornment}"


def _bound_args(atom, adornment):
    return tuple(t for t, a in zip(atom.args, adornment) if a == "b")


def _check_fragment(program):
    for rule in program:
        for element in rule.body:
            if not isinstance(element, Literal):
                raise TranslationError(
                    f"magic sets supports relational literals only, found {element}"
                )
            if element.negative:
                raise TranslationError(
                    "magic sets is implemented for positive programs; "
                    f"negated literal {element} found"
                )


class MagicProgram:
    """Result of the rewriting: the program, seed facts, and goal mapping."""

    def __init__(self, program, seed_predicate, seed_values, answer_predicate, goal):
        self.program = program
        self.seed_predicate = seed_predicate
        self.seed_values = seed_values
        self.answer_predicate = answer_predicate
        self.goal = goal

    def seed_database(self, edb):
        """A copy of *edb* with the magic seed fact inserted."""
        database = edb.copy()
        database.relation(self.seed_predicate, max(len(self.seed_values), 0) or 0)
        if self.seed_values:
            database.add_fact(self.seed_predicate, *self.seed_values)
        else:
            # Zero bound arguments: seed is the 0-ary magic fact.
            database.relation(self.seed_predicate, 0).add(())
        return database

    def __repr__(self):
        return f"MagicProgram({len(self.program)} rules, goal={self.goal})"


def magic_rewrite(program, goal):
    """Rewrite *program* for the ground-prefix *goal* atom.

    Returns a :class:`MagicProgram`; evaluate with :func:`magic_query` or
    manually: evaluate ``result.program`` over ``result.seed_database(edb)``
    and match ``goal`` against ``result.answer_predicate``.
    """
    with obs.span("magic.rewrite", goal=str(goal)) as span:
        _check_fragment(program)
        if goal.predicate not in program.idb_predicates:
            raise TranslationError(f"goal predicate {goal.predicate!r} is not an IDB")

        idb = program.idb_predicates
        root_adornment = adornment_of(goal)
        rewritten = []
        pending = [(goal.predicate, root_adornment)]
        done = set()

        while pending:
            predicate, adornment = pending.pop()
            if (predicate, adornment) in done:
                continue
            done.add((predicate, adornment))
            for rule in program.rules_for(predicate):
                rewritten.extend(
                    _rewrite_rule(rule, adornment, idb, pending)
                )

        seed_predicate = _magic_name(goal.predicate, root_adornment)
        seed_values = tuple(t.value for t in goal.args if isinstance(t, Constant))
        answer_predicate = _adorned_name(goal.predicate, root_adornment)
        answer_goal = Atom(answer_predicate, goal.args)
        if span:
            span.annotate(
                adornment=root_adornment,
                rules_in=len(program),
                rules_out=len(rewritten),
                adorned_predicates=len(done),
            )
        return MagicProgram(
            Program(rewritten), seed_predicate, seed_values, answer_predicate, answer_goal
        )


def _rewrite_rule(rule, head_adornment, idb, pending):
    """Adorn one rule and emit its magic rules.

    Left-to-right sideways information passing: a body variable is bound if
    it occurs in a bound head position or in any earlier body literal.
    """
    out = []
    head = rule.head
    bound = {
        t
        for t, a in zip(head.args, head_adornment)
        if a == "b" and isinstance(t, Variable)
    }
    magic_head_literal = Literal(
        Atom(
            _magic_name(head.predicate, head_adornment),
            _bound_args(head, head_adornment),
        )
    )
    new_body = [magic_head_literal]
    prefix = [magic_head_literal]

    for element in rule.body:
        atom = element.atom
        if atom.predicate in idb:
            adornment = "".join(
                "b"
                if isinstance(t, Constant) or (isinstance(t, Variable) and t in bound)
                else "f"
                for t in atom.args
            )
            pending.append((atom.predicate, adornment))
            # Magic rule: the bound arguments of this subgoal are requested
            # whenever the prefix so far is derivable.
            magic_rule_head = Atom(
                _magic_name(atom.predicate, adornment), _bound_args(atom, adornment)
            )
            out.append(Rule(magic_rule_head, tuple(prefix)))
            adorned = Literal(Atom(_adorned_name(atom.predicate, adornment), atom.args))
            new_body.append(adorned)
            prefix.append(adorned)
        else:
            new_body.append(element)
            prefix.append(element)
        bound |= {t for t in atom.args if isinstance(t, Variable)}

    adorned_head = Atom(_adorned_name(head.predicate, head_adornment), head.args)
    out.append(Rule(adorned_head, tuple(new_body)))
    return out


def magic_query(program, edb, goal, method="seminaive"):
    """Goal-directed evaluation: rewrite, seed, evaluate, match.

    Returns the same answer set as
    ``Engine(method).query(program, edb, goal)`` but touches only the
    goal-relevant part of each IDB.
    """
    rewritten = magic_rewrite(program, goal)
    database = rewritten.seed_database(edb)
    engine = Engine(method=method)
    result = engine.evaluate(rewritten.program, database)
    return match_atom(result, rewritten.goal), engine.stats


def magic_answers(program, edb, goal, method="seminaive"):
    """Answers only (drops the stats)."""
    answers, _stats = magic_query(program, edb, goal, method=method)
    return answers
