"""Bottom-up evaluation of stratified Datalog programs.

Two methods are provided:

- ``naive``: re-evaluate every rule until no new fact appears;
- ``seminaive`` (default): the classical delta-based evaluation that joins
  each recursive occurrence against only the facts discovered in the previous
  iteration.

Evaluation proceeds stratum by stratum and, within a stratum, SCC by SCC in
topological order, so negated literals always refer to fully-computed
relations (stratified semantics, Definition 2.7 of the paper).
"""

from __future__ import annotations

import operator
from collections import Counter, defaultdict

from repro import obs
from repro.datalog.ast import ArithmeticAssign, Comparison, Literal
from repro.datalog.database import Relation
from repro.datalog.safety import check_program_safety, schedule_body
from repro.datalog.stratify import DependenceGraph, stratify
from repro.datalog.terms import Constant, Variable
from repro.errors import EvaluationError

_COMPARATORS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

def _divide(left, right):
    """Division that stays in ``int`` when it can.

    ``operator.truediv`` over integer facts derives float tuples (``8 / 2``
    → ``4.0``) that break set-equality against int-derived facts downstream,
    so exact integer division returns an ``int``.  An *inexact* integer
    division (``7 / 2``) — and any division involving a float — follows
    Python and yields the true-division float.
    """
    if isinstance(left, int) and isinstance(right, int):
        quotient, remainder = divmod(left, right)
        if remainder == 0:
            return quotient
    return operator.truediv(left, right)


_ARITHMETIC = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": _divide,
    "%": operator.mod,
    "min": min,
    "max": max,
}


class EvaluationStats:
    """Counters collected during one evaluation run."""

    def __init__(self):
        self.iterations = 0
        self.rule_firings = 0
        self.facts_derived = 0
        #: Head rows produced by rule firings before deduplication against
        #: the database; the gap to ``facts_derived`` is wasted re-derivation.
        self.rows_produced = 0
        self.strata = 0

    def __repr__(self):
        return (
            f"EvaluationStats(iterations={self.iterations}, "
            f"rule_firings={self.rule_firings}, facts_derived={self.facts_derived}, "
            f"rows_produced={self.rows_produced}, strata={self.strata})"
        )


class Engine:
    """Evaluator for stratified Datalog programs over a :class:`Database`.

    ``method`` selects the backend: ``"naive"`` and ``"seminaive"`` run the
    tuple-set walker in this module; ``"columnar"`` runs the int-encoded
    kernel evaluator in :mod:`repro.datalog.columnar` (same semantics,
    pinned by the differential suite).  ``old_new_split`` controls the
    classical old/new decomposition for semi-naive rules with two or more
    recursive literals; it exists as an escape hatch for A/B-testing the
    split and should stay on.
    """

    def __init__(
        self,
        method="seminaive",
        check_safety=True,
        record_provenance=False,
        old_new_split=True,
    ):
        if method not in ("naive", "seminaive", "columnar"):
            raise ValueError(f"unknown evaluation method {method!r}")
        if method == "columnar" and record_provenance:
            raise ValueError(
                "provenance recording requires the native backend "
                "(method='naive' or 'seminaive')"
            )
        self.method = method
        self.check_safety = check_safety
        self.old_new_split = old_new_split
        self.record_provenance = record_provenance
        #: {(predicate, row): (rule, ((predicate, row), ...))} — the *first*
        #: derivation of each derived fact; populated when record_provenance.
        self.provenance = {}
        self.stats = EvaluationStats()

    # ------------------------------------------------------------------ API

    def evaluate(self, program, edb):
        """Evaluate *program* against *edb*; returns a new Database holding
        the EDB facts plus every derived IDB fact.  The input database is not
        modified."""
        if self.check_safety:
            check_program_safety(program)
        self.stats = EvaluationStats()
        self.provenance = {}
        tracer = obs.tracer()
        backend = "columnar" if self.method == "columnar" else "native"
        with tracer.span(
            "engine.evaluate", method=self.method, backend=backend
        ) as root:
            if self.method == "columnar":
                # Imported lazily: columnar shares the builtin tables of
                # this module, so a top-level import would be circular.
                from repro.datalog.columnar import evaluate_columnar

                database = evaluate_columnar(program, edb, self.stats, tracer)
                if root:
                    root.annotate(
                        iterations=self.stats.iterations,
                        rule_firings=self.stats.rule_firings,
                        facts_derived=self.stats.facts_derived,
                        strata=self.stats.strata,
                    )
                return database
            database = edb.copy()

            # Facts in the program are loaded directly.
            derived_rules = []
            for rule in program:
                if rule.is_fact:
                    database.add_fact(rule.head.predicate, *(t.value for t in rule.head.args))
                else:
                    derived_rules.append(rule)

            # Ensure every predicate mentioned anywhere exists with a known arity,
            # so negation over an empty relation works.
            self._declare_relations(program, database)

            strata = stratify(program)
            idb = program.idb_predicates
            groups = self._evaluation_groups(program, strata, idb)
            self.stats.strata = len({strata[p] for p in idb}) if idb else 0

            for group in groups:
                rules = [r for r in derived_rules if r.head.predicate in group]
                if not rules:
                    continue
                with tracer.span(
                    "engine.stratum",
                    stratum=max(strata[p] for p in group),
                    predicates=sorted(group),
                    rules=len(rules),
                ) as span:
                    if self.method == "naive":
                        self._fixpoint_naive(rules, database, span)
                    else:
                        self._fixpoint_seminaive(rules, group, database, span)
                    if span:
                        span.annotate(
                            facts={p: len(database.facts(p)) for p in sorted(group)}
                        )
            if root:
                root.annotate(
                    iterations=self.stats.iterations,
                    rule_firings=self.stats.rule_firings,
                    facts_derived=self.stats.facts_derived,
                    strata=self.stats.strata,
                )
        return database

    def query(self, program, edb, goal):
        """Evaluate and return the set of tuples matching *goal* (an Atom).

        Each answer is the tuple of values bound to the goal's variables in
        their order of first occurrence; for a ground goal the result is a
        set containing one empty tuple when it holds, else the empty set.
        """
        database = self.evaluate(program, edb)
        return match_atom(database, goal)

    # ------------------------------------------------------------ internals

    @staticmethod
    def _declare_relations(program, database):
        for rule in program:
            atoms = [rule.head] + [e.atom for e in rule.body if isinstance(e, Literal)]
            for atom in atoms:
                database.relation(atom.predicate, atom.arity)

    @staticmethod
    def _evaluation_groups(program, strata, idb):
        """IDB predicate groups in evaluation order: by stratum, then by SCC
        condensation topological order inside each stratum."""
        graph = DependenceGraph.of_program(program)
        # Tarjan emits dependents first; reversing yields dependencies-first
        # (topological) order, which is the evaluation order within a stratum.
        components = reversed(graph.strongly_connected_components())
        groups = []
        for component in components:
            members = frozenset(p for p in component if p in idb)
            if members:
                groups.append(members)
        # Stable sort by stratum preserves the dependencies-first order
        # among groups of the same stratum.
        groups.sort(key=lambda g: max(strata[p] for p in g))
        return groups

    def _fixpoint_naive(self, rules, database, span=obs.NULL_SPAN):
        schedules = [(rule, schedule_body(rule)) for rule in rules]
        firings = Counter() if span else None
        changed = True
        iteration = 0
        while changed:
            changed = False
            iteration += 1
            self.stats.iterations += 1
            derived_this_round = 0
            for rule, schedule in schedules:
                if firings is not None:
                    firings[str(rule)] += 1
                for row, support in self._fire(rule, schedule, database):
                    if database.relation(rule.head.predicate).add(row):
                        self.stats.facts_derived += 1
                        self._record(rule, rule.head.predicate, row, support)
                        derived_this_round += 1
                        changed = True
            if span:
                span.append(
                    "iterations", {"iteration": iteration, "derived": derived_this_round}
                )
        if span:
            span.annotate(rule_firings=dict(firings))

    def _fixpoint_seminaive(self, rules, group, database, span=obs.NULL_SPAN):
        schedules = []
        init_only = []
        for rule in rules:
            schedule = schedule_body(rule)
            recursive_positions = [
                i
                for i, element in enumerate(schedule)
                if isinstance(element, Literal)
                and element.positive
                and element.predicate in group
            ]
            if recursive_positions:
                schedules.append((rule, schedule, recursive_positions))
            else:
                init_only.append((rule, schedule))

        # Seed the delta with any facts the group predicates already hold
        # (program facts for IDB predicates, or EDB facts feeding an IDB name)
        # so recursive literals see them on the first iteration.
        delta = defaultdict(set)
        for predicate in group:
            existing = database.facts(predicate)
            if existing:
                delta[predicate] = set(existing)
        firings = Counter() if span else None
        for rule, schedule in init_only:
            head_pred = rule.head.predicate
            relation = database.relation(head_pred)
            if firings is not None:
                firings[str(rule)] += 1
            for row, support in self._fire(rule, schedule, database):
                if relation.add(row):
                    self.stats.facts_derived += 1
                    self._record(rule, head_pred, row, support)
                    delta[head_pred].add(row)
        if span:
            span.annotate(
                seed_delta={p: len(rows) for p, rows in sorted(delta.items()) if rows}
            )

        iteration = 0
        while True:
            iteration += 1
            self.stats.iterations += 1
            delta_relations = {
                predicate: _as_relation(predicate, rows, database)
                for predicate, rows in delta.items()
                if rows
            }
            # Old/new split: when a rule has several recursive literals, the
            # variant firing at delta position p_j must read the *previous*
            # iteration's state at positions after p_j (full minus delta),
            # so each new combination is derived exactly once per round.
            old_relations = (
                {
                    predicate: _MinusRelation(database.relation(predicate), rows)
                    for predicate, rows in delta.items()
                    if rows
                }
                if self.old_new_split
                else {}
            )
            new_delta = defaultdict(set)
            for rule, schedule, positions in schedules:
                head_pred = rule.head.predicate
                relation = database.relation(head_pred)
                for order, position in enumerate(positions):
                    pred = schedule[position].predicate
                    delta_relation = delta_relations.get(pred)
                    if delta_relation is None:
                        continue
                    old_overrides = None
                    if self.old_new_split and len(positions) > 1:
                        old_overrides = {
                            later: old_relations[schedule[later].predicate]
                            for later in positions[order + 1:]
                            if schedule[later].predicate in old_relations
                        }
                    if firings is not None:
                        firings[str(rule)] += 1
                    produced = self._fire(
                        rule,
                        schedule,
                        database,
                        delta_position=position,
                        delta_relation=delta_relation,
                        old_overrides=old_overrides,
                    )
                    for row, support in produced:
                        if relation.add(row):
                            self.stats.facts_derived += 1
                            self._record(rule, head_pred, row, support)
                            new_delta[head_pred].add(row)
            if span:
                span.append(
                    "iterations",
                    {
                        "iteration": iteration,
                        "delta_in": {
                            p: len(r) for p, r in sorted(delta_relations.items())
                        },
                        "derived": sum(len(rows) for rows in new_delta.values()),
                    },
                )
            if not new_delta:
                break
            delta = new_delta
        if span:
            span.annotate(rule_firings=dict(firings))

    def _fire(
        self,
        rule,
        schedule,
        database,
        delta_position=None,
        delta_relation=None,
        old_overrides=None,
    ):
        """Yield ``(head_row, support)`` pairs from one rule body evaluation.

        ``support`` is a tuple of the positive body facts that matched, as
        ``(predicate, row)`` pairs, when ``record_provenance`` is on; None
        otherwise.  ``old_overrides`` maps schedule indexes to substitute
        relations (the pre-iteration view used by the old/new split)."""
        self.stats.rule_firings += 1
        head = rule.head
        results = []
        trail = [] if self.record_provenance else None

        def emit(binding):
            row = []
            for term in head.args:
                if isinstance(term, Variable):
                    row.append(binding[term])
                else:
                    row.append(term.value)
            support = tuple(trail) if trail is not None else None
            results.append((tuple(row), support))

        def walk(index, binding):
            if index == len(schedule):
                emit(binding)
                return
            element = schedule[index]
            if isinstance(element, Literal):
                if element.positive:
                    if index == delta_position:
                        relation = delta_relation
                    elif old_overrides and index in old_overrides:
                        relation = old_overrides[index]
                    else:
                        relation = database.relation(element.predicate)
                    for extended, row in _match_against(
                        relation, element.atom, binding, want_rows=True
                    ):
                        if trail is not None:
                            trail.append((element.predicate, row))
                        walk(index + 1, extended)
                        if trail is not None:
                            trail.pop()
                else:
                    if self._negative_holds(database, element, binding):
                        walk(index + 1, binding)
            elif isinstance(element, Comparison):
                extended = self._apply_comparison(element, binding)
                if extended is not None:
                    walk(index + 1, extended)
            elif isinstance(element, ArithmeticAssign):
                extended = self._apply_arithmetic(element, binding)
                if extended is not None:
                    walk(index + 1, extended)
            else:  # pragma: no cover - AST is closed
                raise EvaluationError(f"unknown body element {element!r}")

        walk(0, {})
        self.stats.rows_produced += len(results)
        return results

    def _record(self, rule, predicate, row, support):
        if self.record_provenance:
            key = (predicate, row)
            if key not in self.provenance:
                self.provenance[key] = (rule, support)

    @staticmethod
    def _negative_holds(database, literal, binding):
        relation = database.relation(literal.predicate)
        positions = []
        values = []
        for position, term in enumerate(literal.atom.args):
            if isinstance(term, Variable):
                if term.is_anonymous:
                    continue
                values.append(binding[term])
                positions.append(position)
            else:
                values.append(term.value)
                positions.append(position)
        matches = relation.lookup(tuple(positions), tuple(values))
        return not matches

    @staticmethod
    def _value_of(term, binding):
        if isinstance(term, Variable):
            return binding.get(term, _UNBOUND)
        return term.value

    def _apply_comparison(self, comparison, binding):
        left = self._value_of(comparison.left, binding)
        right = self._value_of(comparison.right, binding)
        if comparison.op == "==":
            if left is _UNBOUND and right is _UNBOUND:
                raise EvaluationError(f"equality with both sides unbound: {comparison}")
            if left is _UNBOUND:
                extended = dict(binding)
                extended[comparison.left] = right
                return extended
            if right is _UNBOUND:
                extended = dict(binding)
                extended[comparison.right] = left
                return extended
        if left is _UNBOUND or right is _UNBOUND:
            raise EvaluationError(f"comparison on unbound variable: {comparison}")
        try:
            holds = _COMPARATORS[comparison.op](left, right)
        except TypeError as exc:
            raise EvaluationError(f"incomparable values in {comparison}: {exc}") from exc
        return binding if holds else None

    def _apply_arithmetic(self, assign, binding):
        left = self._value_of(assign.left, binding)
        right = self._value_of(assign.right, binding)
        if left is _UNBOUND or right is _UNBOUND:
            raise EvaluationError(f"arithmetic on unbound variable: {assign}")
        try:
            value = _ARITHMETIC[assign.op](left, right)
        except (TypeError, ZeroDivisionError) as exc:
            raise EvaluationError(f"arithmetic failure in {assign}: {exc}") from exc
        result = assign.result
        if isinstance(result, Variable):
            existing = binding.get(result, _UNBOUND)
            if existing is _UNBOUND:
                extended = dict(binding)
                extended[result] = value
                return extended
            return binding if existing == value else None
        return binding if result.value == value else None


_UNBOUND = object()


class _MinusRelation:
    """A read-only view of *relation* with the rows of *excluded* hidden.

    Implements just the surface ``_match_against`` touches (``lookup`` and
    ``arity``); used by the semi-naive old/new split to present the
    pre-iteration state of a recursive predicate without copying it.
    """

    __slots__ = ("_relation", "_excluded")

    def __init__(self, relation, excluded):
        self._relation = relation
        self._excluded = excluded if isinstance(excluded, (set, frozenset)) else set(excluded)

    @property
    def name(self):
        return self._relation.name

    @property
    def arity(self):
        return self._relation.arity

    def __len__(self):
        return len(self._relation) - len(self._excluded)

    def lookup(self, positions, values):
        matches = self._relation.lookup(positions, values)
        excluded = self._excluded
        return [row for row in matches if row not in excluded]


def _match_against(relation, atom, binding, want_rows=False):
    """Yield extensions of *binding* for each tuple of *relation* matching
    *atom* (as ``(binding, row)`` pairs when *want_rows*), honouring repeated
    variables within the atom."""
    positions = []
    values = []
    for position, term in enumerate(atom.args):
        if isinstance(term, Constant):
            positions.append(position)
            values.append(term.value)
        elif not term.is_anonymous and term in binding:
            positions.append(position)
            values.append(binding[term])
    candidates = relation.lookup(tuple(positions), tuple(values))
    bound_positions = set(positions)
    for row in candidates:
        extended = dict(binding)
        ok = True
        for position, term in enumerate(atom.args):
            if position in bound_positions:
                continue
            if isinstance(term, Variable):
                if term.is_anonymous:
                    continue
                seen = extended.get(term, _UNBOUND)
                if seen is _UNBOUND:
                    extended[term] = row[position]
                elif seen != row[position]:
                    ok = False
                    break
        if ok:
            yield (extended, row) if want_rows else extended


def _as_relation(predicate, rows, database):
    """Wrap a delta tuple-set in an indexed Relation of the right arity."""
    arity = database.relation(predicate).arity
    relation = Relation(predicate, arity)
    relation.add_many(rows)
    return relation


def match_atom(database, goal):
    """All bindings of *goal*'s variables against *database*.

    Returns a set of tuples: the values of the goal's distinct variables in
    order of first occurrence.  A ground goal yields ``{()}`` when present.
    """
    if goal.predicate not in database:
        return set()
    relation = database.relation(goal.predicate)
    ordered_vars = []
    for term in goal.args:
        if isinstance(term, Variable) and not term.is_anonymous and term not in ordered_vars:
            ordered_vars.append(term)
    answers = set()
    for binding in _match_against(relation, goal, {}):
        answers.add(tuple(binding[v] for v in ordered_vars))
    return answers


def evaluate(program, edb, method="seminaive"):
    """One-shot convenience wrapper around :class:`Engine`."""
    return Engine(method=method).evaluate(program, edb)


def query(program, edb, goal, method="seminaive"):
    """One-shot convenience wrapper: evaluate then match *goal*."""
    return Engine(method=method).query(program, edb, goal)
