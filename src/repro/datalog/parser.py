"""Parser for textual Datalog programs.

Syntax::

    ancestor(X, Y) :- parent(X, Y).
    ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
    rich(X)        :- person(X), not poor(X).
    next(X, Y)     :- num(X), num(Y), Y = X + 1.
    small(X)       :- num(X), X < 10.
    start(a).                      % a fact

Conventions: variables start uppercase (or ``_``); identifiers starting
lowercase are predicate names or constants depending on position; numbers
and quoted strings are constants.  ``not``/``~``/``!`` negate a literal.
``%`` and ``#`` start comments.
"""

from __future__ import annotations

from repro.datalog.ast import (
    ArithmeticAssign,
    Atom,
    Comparison,
    Literal,
    Program,
    Rule,
)
from repro.datalog.lexer import TokenStream, tokenize
from repro.datalog.terms import Constant, Variable
from repro.errors import ParseError

_COMPARISON_TOKENS = {"=": "==", "==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_ARITH_TOKENS = ("+", "-", "*", "/", "%")


def parse_program(source):
    """Parse a complete Datalog program from *source* text."""
    stream = TokenStream(tokenize(source))
    rules = []
    while not stream.exhausted:
        rules.append(_parse_rule(stream))
    return Program(rules)


def parse_rule(source):
    """Parse a single rule (or fact) from *source* text."""
    stream = TokenStream(tokenize(source))
    rule = _parse_rule(stream)
    if not stream.exhausted:
        token = stream.peek()
        raise ParseError("trailing input after rule", token.line, token.column)
    return rule


def parse_atom(source):
    """Parse a single atom such as ``p(X, a)``."""
    stream = TokenStream(tokenize(source))
    atom = _parse_atom(stream)
    if not stream.exhausted:
        token = stream.peek()
        raise ParseError("trailing input after atom", token.line, token.column)
    return atom


def _parse_rule(stream):
    head = _parse_atom(stream)
    body = []
    if stream.accept("punct", ":-"):
        body.append(_parse_body_element(stream))
        while stream.accept("punct", ","):
            body.append(_parse_body_element(stream))
    stream.expect("punct", ".")
    return Rule(head, body)


def _parse_body_element(stream):
    if stream.at("ident", "not") or stream.at_punct("~", "!"):
        stream.next()
        return Literal(_parse_atom(stream), positive=False)
    # Either a relational atom or a builtin starting with a term.
    if stream.at("ident") and stream.peek(1).kind == "punct" and stream.peek(1).text == "(":
        return Literal(_parse_atom(stream), positive=True)
    if stream.at("ident") and not _next_is_comparison(stream):
        # Zero-ary predicate used as a propositional atom.
        return Literal(_parse_atom(stream), positive=True)
    left = _parse_term(stream)
    token = stream.peek()
    if token.kind != "punct" or token.text not in _COMPARISON_TOKENS:
        raise ParseError(
            f"expected comparison operator, found {token.text!r}", token.line, token.column
        )
    op = _COMPARISON_TOKENS[stream.next().text]
    if op == "==" and stream.at("ident", "min") or op == "==" and stream.at("ident", "max"):
        func = stream.next().text
        stream.expect("punct", "(")
        first = _parse_term(stream)
        stream.expect("punct", ",")
        second = _parse_term(stream)
        stream.expect("punct", ")")
        return ArithmeticAssign(left, func, first, second)
    right = _parse_term(stream)
    if op == "==" and stream.at_punct(*_ARITH_TOKENS):
        arith_op = stream.next().text
        second = _parse_term(stream)
        return ArithmeticAssign(left, arith_op, right, second)
    return Comparison(op, left, right)


def _next_is_comparison(stream):
    token = stream.peek(1)
    return token.kind == "punct" and token.text in _COMPARISON_TOKENS


def _parse_atom(stream):
    name = stream.expect("ident").text
    args = []
    if stream.accept("punct", "("):
        if not stream.at_punct(")"):
            args.append(_parse_term(stream))
            while stream.accept("punct", ","):
                args.append(_parse_term(stream))
        stream.expect("punct", ")")
    return Atom(name, args)


def _parse_term(stream):
    token = stream.peek()
    if token.kind == "var":
        stream.next()
        return Variable(token.text)
    if token.kind == "ident":
        stream.next()
        return Constant(token.text)
    if token.kind == "number":
        stream.next()
        return Constant(token.value)
    if token.kind == "string":
        stream.next()
        return Constant(token.value)
    if token.kind == "punct" and token.text == "-" and stream.peek(1).kind == "number":
        stream.next()
        number = stream.next()
        return Constant(-number.value)
    raise ParseError(f"expected a term, found {token.text or token.kind!r}", token.line, token.column)
