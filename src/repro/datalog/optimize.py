"""Rule-level optimizations for Datalog programs.

The λ translation introduces auxiliary predicates for every composite path
expression; most are single-rule, view-shaped definitions that a classical
optimizer folds away.  Three semantics-preserving passes:

- :func:`eliminate_duplicate_rules` — drop alpha-equivalent duplicates;
- :func:`inline_views` — unfold non-recursive predicates defined by exactly
  one rule with a distinct-variable head, when never used under negation
  (the safe unfolding case; covers λ's composition/alternation-free
  auxiliaries);
- :func:`remove_unused` — keep only rules reachable from the root
  predicates in the dependence graph.

:func:`optimize` runs the pipeline; the ``abl6`` benchmark quantifies the
effect on translated GraphLog programs.
"""

from __future__ import annotations

from repro import obs
from repro.datalog.ast import ArithmeticAssign, Comparison, Literal, Program, Rule
from repro.datalog.classify import recursive_predicates
from repro.datalog.stratify import DependenceGraph
from repro.datalog.terms import Variable


def canonical_rule_key(rule):
    """A key identical for alpha-equivalent rules (variables renamed by
    order of first occurrence)."""
    mapping = {}

    def canon(term):
        if isinstance(term, Variable):
            if term.is_anonymous:
                return ("_",)
            if term not in mapping:
                mapping[term] = f"V{len(mapping)}"
            return ("var", mapping[term])
        return ("const", repr(term.value))

    parts = [("head", rule.head.predicate, tuple(canon(t) for t in rule.head.args))]
    for element in rule.body:
        if isinstance(element, Literal):
            parts.append(
                (
                    "lit",
                    element.predicate,
                    element.positive,
                    tuple(canon(t) for t in element.atom.args),
                )
            )
        elif isinstance(element, Comparison):
            parts.append(("cmp", element.op, canon(element.left), canon(element.right)))
        elif isinstance(element, ArithmeticAssign):
            parts.append(
                (
                    "arith",
                    element.op,
                    canon(element.result),
                    canon(element.left),
                    canon(element.right),
                )
            )
    return tuple(parts)


def eliminate_duplicate_rules(program):
    """Remove rules alpha-equivalent to an earlier rule."""
    seen = set()
    kept = []
    for rule in program:
        key = canonical_rule_key(rule)
        if key not in seen:
            seen.add(key)
            kept.append(rule)
    return Program(kept)


def _inlinable_predicates(program):
    """Predicates safe to unfold: IDB, one rule, non-recursive,
    distinct-variable head, never used negatively."""
    recursive = recursive_predicates(program)
    negated = set()
    for rule in program:
        for element in rule.body:
            if isinstance(element, Literal) and element.negative:
                negated.add(element.predicate)
    out = {}
    for predicate in program.idb_predicates:
        if predicate in recursive or predicate in negated:
            continue
        rules = program.rules_for(predicate)
        if len(rules) != 1:
            continue
        (definition,) = rules
        head_args = definition.head.args
        if not all(isinstance(t, Variable) for t in head_args):
            continue
        if len(set(head_args)) != len(head_args):
            continue
        if any(t.is_anonymous for t in head_args):
            continue
        out[predicate] = definition
    return out


def inline_views(program, keep=()):
    """Unfold every safely-inlinable predicate (except those in *keep*).

    Runs to a fixpoint: inlined definitions may themselves contain
    inlinable predicates.
    """
    keep = set(keep)
    current = program
    while True:
        views = {
            p: d for p, d in _inlinable_predicates(current).items() if p not in keep
        }
        if not views:
            return current
        # Each round folds every current view's definition away; the loop
        # terminates because the predicate count strictly decreases.
        new_rules = []
        for rule in current:
            if rule.head.predicate in views:
                continue
            new_rules.append(_unfold_rule(rule, views))
        current = Program(new_rules)


def _unfold_rule(rule, views):
    """Unfold view literals to a fixpoint: a spliced definition may itself
    reference further views (all definitions are dropped in the same round,
    so dangling references must not survive).  Terminates because views are
    non-recursive: unfolding depth is bounded by the view DAG's height."""
    changed = False
    counter = 0
    pending = list(rule.body)
    body = []
    while pending:
        element = pending.pop(0)
        if (
            isinstance(element, Literal)
            and element.positive
            and element.predicate in views
        ):
            definition = views[element.predicate]
            # The "#" suffix cannot appear in parsed variable names, so the
            # renamed definition variables are collision-free by construction.
            renamed = definition.rename_variables(f"#i{counter}")
            counter += 1
            binding = dict(zip(renamed.head.args, element.atom.args))
            spliced = renamed.substitute(binding)
            pending = list(spliced.body) + pending
            changed = True
        else:
            body.append(element)
    if not changed:
        return rule
    return Rule(rule.head, tuple(body))


def remove_unused(program, roots):
    """Keep only rules for predicates the *roots* transitively depend on."""
    graph = DependenceGraph.of_program(program)
    needed = set(roots)
    frontier = list(roots)
    while frontier:
        predicate = frontier.pop()
        for dependency in graph.dependencies(predicate):
            if dependency not in needed:
                needed.add(dependency)
                frontier.append(dependency)
    return Program([r for r in program if r.head.predicate in needed])


def optimize(program, roots=None):
    """Dedupe, inline views, and (with *roots*) prune unreachable rules.

    Roots default to every IDB predicate, in which case pruning is a no-op
    but inlining still simplifies rule bodies.  The roots are kept
    un-inlined so their relations stay queryable.
    """
    with obs.span("optimize") as span:
        if roots is None:
            roots = sorted(program.idb_predicates)
        deduped = eliminate_duplicate_rules(program)
        inlined = inline_views(deduped, keep=roots)
        pruned = remove_unused(inlined, roots)
        if span:
            span.annotate(
                rules_in=len(program),
                after_dedupe=len(deduped),
                after_inline=len(inlined),
                rules_out=len(pruned),
            )
        return pruned
