"""Structural classification of Datalog programs (Definition 3.2).

- *linear*: each rule has at most one recursive subgoal (a positive body
  literal whose predicate is in the same strongly connected component of the
  dependence graph as the rule's head).  These are the "piecewise linear"
  programs of [Ull89]; the paper calls them simply linear.
- *TC program*: a linear program in which every recursive IDB predicate ``p``
  is the head of exactly two rules of the transitive-closure shape

      p(X̄, Ȳ) :- p0(X̄, Ȳ).
      p(X̄, Ȳ) :- p0(X̄, Z̄), p(Z̄, Ȳ).

  for a single non-recursive predicate ``p0`` and ``|X̄| = |Ȳ| = |Z̄|``.
"""

from __future__ import annotations

from repro.datalog.ast import Literal
from repro.datalog.stratify import DependenceGraph, is_stratified
from repro.datalog.terms import Variable


def _component_of_map(program):
    graph = DependenceGraph.of_program(program)
    component_of = {}
    for component in graph.strongly_connected_components():
        for node in component:
            component_of[node] = component
    dependencies = {node: graph.dependencies(node) for node in graph.nodes}
    return component_of, dependencies


def recursive_predicates(program):
    """IDB predicates that participate in recursion (their SCC is recursive)."""
    component_of, dependencies = _component_of_map(program)
    recursive = set()
    for predicate in program.idb_predicates:
        component = component_of.get(predicate, frozenset({predicate}))
        if len(component) > 1:
            recursive.add(predicate)
        elif predicate in dependencies.get(predicate, ()):
            recursive.add(predicate)
    return recursive


def recursive_subgoals(rule, component_of):
    """The positive body literals of *rule* recursive w.r.t. its head's SCC."""
    head_component = component_of.get(rule.head.predicate)
    if head_component is None:
        return []
    subgoals = []
    for element in rule.body:
        if (
            isinstance(element, Literal)
            and element.positive
            and component_of.get(element.predicate) is head_component
            and element.predicate in head_component
        ):
            subgoals.append(element)
    return subgoals


def is_linear(program):
    """True when every rule has at most one recursive subgoal."""
    component_of, _dependencies = _component_of_map(program)
    # A predicate alone in its SCC without a self-loop is not recursive;
    # rebuild component sets restricted to genuinely recursive SCCs.
    recursive = recursive_predicates(program)
    for rule in program:
        count = 0
        for element in rule.body:
            if not (isinstance(element, Literal) and element.positive):
                continue
            if element.predicate not in recursive:
                continue
            if component_of.get(element.predicate) is component_of.get(rule.head.predicate):
                count += 1
        if count > 1:
            return False
    return True


def is_stratified_linear(program):
    """SL-DATALOG membership: stratified and linear."""
    return is_stratified(program) and is_linear(program)


def _is_distinct_variable_vector(terms):
    return all(isinstance(t, Variable) for t in terms) and len(set(terms)) == len(terms)


def _tc_shape(rules, predicate):
    """If the two *rules* for *predicate* form a TC pair, return the base
    predicate name ``p0``; otherwise return None."""
    if len(rules) != 2:
        return None
    base_rule = None
    step_rule = None
    for rule in rules:
        literals = [e for e in rule.body if isinstance(e, Literal)]
        if len(literals) != len(rule.body):
            return None  # builtins not allowed in TC rules
        if any(not e.positive for e in literals):
            return None
        if len(literals) == 1:
            base_rule = rule
        elif len(literals) == 2:
            step_rule = rule
        else:
            return None
    if base_rule is None or step_rule is None:
        return None

    head = base_rule.head
    if head.arity % 2 != 0:
        return None
    half = head.arity // 2
    if not _is_distinct_variable_vector(head.args):
        return None
    x_vars = head.args[:half]
    y_vars = head.args[half:]

    (base_literal,) = [e for e in base_rule.body if isinstance(e, Literal)]
    if base_literal.predicate == predicate:
        return None
    if base_literal.atom.args != head.args:
        return None
    p0 = base_literal.predicate

    step_head = step_rule.head
    if step_head.args != head.args:
        # Allow alpha-variants: normalize by matching shapes instead.
        if step_head.arity != head.arity or not _is_distinct_variable_vector(step_head.args):
            return None
        x_vars = step_head.args[:half]
        y_vars = step_head.args[half:]
    first, second = [e for e in step_rule.body if isinstance(e, Literal)]
    if second.predicate != predicate:
        first, second = second, first
    if first.predicate != p0 or second.predicate != predicate:
        return None
    if not _is_distinct_variable_vector(first.atom.args) or not _is_distinct_variable_vector(
        second.atom.args
    ):
        return None
    z_vars = first.atom.args[half:]
    if first.atom.args[:half] != x_vars:
        return None
    if second.atom.args != z_vars + y_vars:
        return None
    if set(z_vars) & (set(x_vars) | set(y_vars)):
        return None
    return p0


def is_tc_program(program):
    """TC-DATALOG membership test (Definition 3.2)."""
    if not is_linear(program):
        return False
    recursive = recursive_predicates(program)
    for predicate in recursive:
        rules = program.rules_for(predicate)
        if _tc_shape(rules, predicate) is None:
            return False
    # Additionally, recursion must be confined to self-loops: every
    # recursive SCC is a single predicate defined by its TC pair.
    component_of, _deps = _component_of_map(program)
    for predicate in recursive:
        if len(component_of[predicate]) > 1:
            return False
    return True


def is_stratified_tc_program(program):
    """STC-DATALOG membership: stratified and TC-shaped."""
    return is_stratified(program) and is_tc_program(program)


def tc_base_predicates(program):
    """Map each recursive predicate of a TC program to its base ``p0``."""
    mapping = {}
    for predicate in recursive_predicates(program):
        base = _tc_shape(program.rules_for(predicate), predicate)
        if base is not None:
            mapping[predicate] = base
    return mapping


def classification(program):
    """A summary dict with all membership flags, for reporting."""
    return {
        "stratified": is_stratified(program),
        "linear": is_linear(program),
        "stratified_linear": is_stratified_linear(program),
        "tc": is_tc_program(program),
        "stratified_tc": is_stratified_tc_program(program),
        "recursive_predicates": sorted(recursive_predicates(program)),
        "idb": sorted(program.idb_predicates),
        "edb": sorted(program.edb_predicates),
    }
