"""Derivation provenance: why a derived fact holds.

With ``Engine(record_provenance=True)`` the engine stores, for each derived
fact, the *first* rule instance that produced it together with the positive
body facts it matched.  Because a fact's first derivation can only use facts
derived strictly earlier, the recorded support relation is well-founded and
:func:`explain` always terminates with a finite derivation tree.

This powers GraphLog-level answer highlighting (Section 5's "highlighting
qualifying paths directly on the database graph"): the leaves of a
derivation tree are exactly the base facts — i.e. database edges — that
justify an answer.
"""

from __future__ import annotations


class Derivation:
    """A derivation tree node: one fact plus how it was derived.

    ``rule`` is None for base (EDB) facts; then ``children`` is empty.
    """

    __slots__ = ("predicate", "row", "rule", "children")

    def __init__(self, predicate, row, rule=None, children=()):
        self.predicate = predicate
        self.row = tuple(row)
        self.rule = rule
        self.children = list(children)

    @property
    def fact(self):
        return (self.predicate, self.row)

    @property
    def is_base(self):
        return self.rule is None

    def base_facts(self):
        """The set of EDB (leaf) facts supporting this derivation."""
        if self.is_base:
            return {self.fact}
        out = set()
        for child in self.children:
            out |= child.base_facts()
        return out

    def depth(self):
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def render(self, indent=0):
        """A printable proof tree."""
        pad = "  " * indent
        label = f"{self.predicate}({', '.join(map(str, self.row))})"
        if self.is_base:
            lines = [f"{pad}{label}   [base fact]"]
        else:
            lines = [f"{pad}{label}   [by {self.rule}]"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self):
        kind = "base" if self.is_base else "derived"
        return f"Derivation({self.predicate}{self.row}, {kind})"


def explain(provenance, predicate, row):
    """Build the derivation tree of ``predicate(row)``.

    ``provenance`` is the engine's ``{(pred, row): (rule, support)}`` map;
    facts absent from it are treated as base facts.  Shared sub-derivations
    are built once (the tree is really a DAG; children may be shared).
    """
    memo = {}

    def build(pred, values):
        key = (pred, tuple(values))
        if key in memo:
            return memo[key]
        entry = provenance.get(key)
        if entry is None:
            node = Derivation(pred, values)
        else:
            rule, support = entry
            children = [build(p, r) for p, r in (support or ())]
            node = Derivation(pred, values, rule, children)
        memo[key] = node
        return node

    return build(predicate, tuple(row))


def why(provenance, predicate, row):
    """The supporting base facts of one derived fact (the 'why' set)."""
    return explain(provenance, predicate, row).base_facts()
