"""Abstract syntax of Datalog programs.

A :class:`Program` is a list of :class:`Rule` objects.  A rule has a head
:class:`Atom` and a body of *body literals*: positive or negated
:class:`Literal` atoms, :class:`Comparison` built-ins, and
:class:`ArithmeticAssign` built-ins (``Z = X + Y``).  Facts are rules with an
empty body and a ground head.
"""

from __future__ import annotations

from repro.datalog.terms import Constant, Term, Variable, make_term
from repro.errors import ArityError

COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")
ARITHMETIC_OPS = ("+", "-", "*", "/", "%", "min", "max")


class Atom:
    """A predicate applied to a tuple of terms: ``p(t1, ..., tn)``."""

    __slots__ = ("predicate", "args")

    def __init__(self, predicate, args=()):
        self.predicate = str(predicate)
        self.args = tuple(make_term(a) for a in args)

    @property
    def arity(self):
        return len(self.args)

    def variables(self):
        """The set of variables occurring in the atom."""
        return {t for t in self.args if isinstance(t, Variable)}

    def is_ground(self):
        return all(isinstance(t, Constant) for t in self.args)

    def substitute(self, binding):
        """Apply a {Variable: Term} mapping, leaving unbound variables."""
        return Atom(
            self.predicate,
            tuple(binding.get(t, t) if isinstance(t, Variable) else t for t in self.args),
        )

    def rename_predicate(self, new_name):
        return Atom(new_name, self.args)

    def __eq__(self, other):
        return (
            isinstance(other, Atom)
            and self.predicate == other.predicate
            and self.args == other.args
        )

    def __hash__(self):
        return hash((self.predicate, self.args))

    def __repr__(self):
        return f"Atom({self.predicate!r}, {self.args!r})"

    def __str__(self):
        if not self.args:
            return self.predicate
        return f"{self.predicate}({', '.join(str(a) for a in self.args)})"


class BodyLiteral:
    """Abstract base for anything allowed in a rule body."""

    __slots__ = ()

    def variables(self):
        raise NotImplementedError

    def substitute(self, binding):
        raise NotImplementedError


class Literal(BodyLiteral):
    """A positive or negated occurrence of an atom in a rule body."""

    __slots__ = ("atom", "positive")

    def __init__(self, atom, positive=True):
        if not isinstance(atom, Atom):
            raise TypeError(f"Literal wraps an Atom, got {type(atom).__name__}")
        self.atom = atom
        self.positive = bool(positive)

    @property
    def predicate(self):
        return self.atom.predicate

    @property
    def args(self):
        return self.atom.args

    @property
    def negative(self):
        return not self.positive

    def negate(self):
        return Literal(self.atom, not self.positive)

    def variables(self):
        return self.atom.variables()

    def substitute(self, binding):
        return Literal(self.atom.substitute(binding), self.positive)

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and self.atom == other.atom
            and self.positive == other.positive
        )

    def __hash__(self):
        return hash((self.atom, self.positive))

    def __repr__(self):
        sign = "" if self.positive else "not "
        return f"Literal({sign}{self.atom})"

    def __str__(self):
        return str(self.atom) if self.positive else f"not {self.atom}"


class Comparison(BodyLiteral):
    """A comparison built-in such as ``X < Y`` or ``X != bob``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        if op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = make_term(left)
        self.right = make_term(right)

    def variables(self):
        return {t for t in (self.left, self.right) if isinstance(t, Variable)}

    def substitute(self, binding):
        left = binding.get(self.left, self.left) if isinstance(self.left, Variable) else self.left
        right = (
            binding.get(self.right, self.right) if isinstance(self.right, Variable) else self.right
        )
        return Comparison(self.op, left, right)

    def __eq__(self, other):
        return (
            isinstance(other, Comparison)
            and (self.op, self.left, self.right) == (other.op, other.left, other.right)
        )

    def __hash__(self):
        return hash((self.op, self.left, self.right))

    def __repr__(self):
        return f"Comparison({self.left} {self.op} {self.right})"

    def __str__(self):
        op = "=" if self.op == "==" else self.op
        return f"{self.left} {op} {self.right}"


class ArithmeticAssign(BodyLiteral):
    """An arithmetic built-in binding ``result = left op right``.

    The result term may be a variable (bound by evaluation) or a constant
    (in which case the built-in acts as a test).  ``op`` may also be one of
    the binary functions ``min``/``max``.
    """

    __slots__ = ("result", "op", "left", "right")

    def __init__(self, result, op, left, right):
        if op not in ARITHMETIC_OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.result = make_term(result)
        self.op = op
        self.left = make_term(left)
        self.right = make_term(right)

    def variables(self):
        return {
            t for t in (self.result, self.left, self.right) if isinstance(t, Variable)
        }

    def input_variables(self):
        """Variables that must be bound before the built-in can run."""
        return {t for t in (self.left, self.right) if isinstance(t, Variable)}

    def substitute(self, binding):
        def sub(term):
            return binding.get(term, term) if isinstance(term, Variable) else term

        return ArithmeticAssign(sub(self.result), self.op, sub(self.left), sub(self.right))

    def __eq__(self, other):
        return isinstance(other, ArithmeticAssign) and (
            (self.result, self.op, self.left, self.right)
            == (other.result, other.op, other.left, other.right)
        )

    def __hash__(self):
        return hash((self.result, self.op, self.left, self.right))

    def __repr__(self):
        return f"ArithmeticAssign({self})"

    def __str__(self):
        if self.op in ("min", "max"):
            return f"{self.result} = {self.op}({self.left}, {self.right})"
        return f"{self.result} = {self.left} {self.op} {self.right}"


class Rule:
    """A Datalog rule ``head :- body``; a fact when the body is empty."""

    __slots__ = ("head", "body")

    def __init__(self, head, body=()):
        if not isinstance(head, Atom):
            raise TypeError("rule head must be an Atom")
        body = tuple(body)
        for element in body:
            if not isinstance(element, BodyLiteral):
                raise TypeError(
                    f"rule body element must be a BodyLiteral, got {type(element).__name__}"
                )
        self.head = head
        self.body = body

    @property
    def is_fact(self):
        return not self.body and self.head.is_ground()

    def head_variables(self):
        return self.head.variables()

    def body_variables(self):
        variables = set()
        for element in self.body:
            variables |= element.variables()
        return variables

    def variables(self):
        return self.head_variables() | self.body_variables()

    def positive_literals(self):
        return [e for e in self.body if isinstance(e, Literal) and e.positive]

    def negative_literals(self):
        return [e for e in self.body if isinstance(e, Literal) and e.negative]

    def builtins(self):
        return [e for e in self.body if not isinstance(e, Literal)]

    def body_predicates(self):
        """Predicates of relational (non-builtin) body literals."""
        return {e.predicate for e in self.body if isinstance(e, Literal)}

    def substitute(self, binding):
        return Rule(self.head.substitute(binding), tuple(e.substitute(binding) for e in self.body))

    def rename_variables(self, suffix):
        """Uniformly rename every variable by appending *suffix*."""
        binding = {v: Variable(v.name + suffix) for v in self.variables()}
        return self.substitute(binding)

    def __eq__(self, other):
        return isinstance(other, Rule) and (self.head, self.body) == (other.head, other.body)

    def __hash__(self):
        return hash((self.head, self.body))

    def __repr__(self):
        return f"Rule({self})"

    def __str__(self):
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(e) for e in self.body)
        return f"{self.head} :- {body}."


class Program:
    """An ordered collection of rules with derived structural accessors."""

    def __init__(self, rules=()):
        self.rules = list(rules)
        self._check_arities()

    def _check_arities(self):
        arities = {}
        for rule in self.rules:
            atoms = [rule.head] + [e.atom for e in rule.body if isinstance(e, Literal)]
            for atom in atoms:
                seen = arities.setdefault(atom.predicate, atom.arity)
                if seen != atom.arity:
                    raise ArityError(
                        f"predicate {atom.predicate!r} used with arities {seen} and {atom.arity}"
                    )

    def add(self, rule):
        self.rules.append(rule)
        self._check_arities()

    def extend(self, rules):
        self.rules.extend(rules)
        self._check_arities()

    @property
    def idb_predicates(self):
        """Predicates defined by some rule head."""
        return {rule.head.predicate for rule in self.rules}

    @property
    def edb_predicates(self):
        """Predicates only ever used in bodies (database relations)."""
        idb = self.idb_predicates
        used = set()
        for rule in self.rules:
            used |= rule.body_predicates()
        return used - idb

    @property
    def predicates(self):
        return self.idb_predicates | {
            p for rule in self.rules for p in rule.body_predicates()
        }

    def rules_for(self, predicate):
        return [rule for rule in self.rules if rule.head.predicate == predicate]

    def arity_of(self, predicate):
        for rule in self.rules:
            if rule.head.predicate == predicate:
                return rule.head.arity
            for element in rule.body:
                if isinstance(element, Literal) and element.predicate == predicate:
                    return element.atom.arity
        raise KeyError(predicate)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self):
        return len(self.rules)

    def __eq__(self, other):
        return isinstance(other, Program) and self.rules == other.rules

    def __add__(self, other):
        return Program(self.rules + list(other.rules))

    def __repr__(self):
        return f"Program({len(self.rules)} rules)"

    def __str__(self):
        return "\n".join(str(rule) for rule in self.rules)

    def pretty(self):
        """Program text grouped by head predicate, for display."""
        lines = []
        seen = []
        for rule in self.rules:
            if rule.head.predicate not in seen:
                seen.append(rule.head.predicate)
        for predicate in seen:
            for rule in self.rules_for(predicate):
                lines.append(str(rule))
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"


def atom(predicate, *args):
    """Convenience constructor: ``atom('p', 'X', 'a')`` -> ``p(X, a)``."""
    return Atom(predicate, args)


def lit(predicate, *args):
    """Convenience constructor for a positive literal."""
    return Literal(Atom(predicate, args), positive=True)


def neglit(predicate, *args):
    """Convenience constructor for a negated literal."""
    return Literal(Atom(predicate, args), positive=False)


def rule(head, *body):
    """Convenience constructor for a rule."""
    return Rule(head, body)


def fact(predicate, *args):
    """Convenience constructor for a ground fact."""
    head = Atom(predicate, args)
    if not head.is_ground():
        raise ValueError(f"fact must be ground: {head}")
    return Rule(head, ())
