"""Extensional database: named relations of ground tuples with hash indexes.

Tuples are stored as tuples of :class:`~repro.datalog.terms.Constant` values'
underlying Python objects (i.e. raw values, not Term wrappers) for speed; the
evaluation engine wraps/unwraps at its boundary.  Per-column hash indexes are
built lazily the first time a join probes that column.
"""

from __future__ import annotations

from collections import defaultdict

from repro.datalog.terms import Constant
from repro.errors import ArityError


class Relation:
    """A set of fixed-arity tuples with lazily-built column indexes."""

    __slots__ = ("name", "arity", "_tuples", "_indexes", "_mutations")

    def __init__(self, name, arity):
        self.name = name
        self.arity = int(arity)
        self._tuples = set()
        self._indexes = {}
        #: Bumped on every successful add/discard; consumers that cache a
        #: derived form of the relation (e.g. the columnar int encoding)
        #: key their cache on this counter.
        self._mutations = 0

    def __len__(self):
        return len(self._tuples)

    def __iter__(self):
        return iter(self._tuples)

    def __contains__(self, row):
        return tuple(row) in self._tuples

    def __eq__(self, other):
        if not isinstance(other, Relation):
            return NotImplemented
        return self.name == other.name and self._tuples == other._tuples

    # Defining __eq__ sets __hash__ to None; relations must stay usable as
    # dict keys / set members (identity semantics, like any mutable
    # container), so restore identity hashing explicitly.
    __hash__ = object.__hash__

    def __repr__(self):
        return f"Relation({self.name!r}/{self.arity}, {len(self)} tuples)"

    @property
    def tuples(self):
        """The underlying (live) set of tuples; treat as read-only."""
        return self._tuples

    def add(self, row):
        """Insert a tuple; returns True if it was new."""
        row = tuple(row)
        if len(row) != self.arity:
            raise ArityError(
                f"relation {self.name!r} has arity {self.arity}, got tuple of length {len(row)}"
            )
        if row in self._tuples:
            return False
        self._tuples.add(row)
        self._mutations += 1
        for position, index in self._indexes.items():
            index[self._key(row, position)].add(row)
        return True

    def add_many(self, rows):
        """Insert many tuples; returns the number actually inserted."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def discard(self, row):
        row = tuple(row)
        if row not in self._tuples:
            return False
        self._tuples.discard(row)
        self._mutations += 1
        for position, index in self._indexes.items():
            index[self._key(row, position)].discard(row)
        return True

    @staticmethod
    def _key(row, positions):
        return tuple(row[p] for p in positions)

    def lookup(self, positions, values):
        """All tuples whose columns at *positions* equal *values*.

        ``positions`` is a sorted tuple of column indexes; an index over that
        column combination is created on first use.
        """
        positions = tuple(positions)
        if not positions:
            return self._tuples
        if len(positions) == self.arity:
            # Fully bound: a membership probe, no index needed.  Positions
            # cover every column but are not necessarily sorted, so the
            # probe row is assembled in column order, not argument order.
            row = tuple(values)
            if positions != _SORTED_POSITIONS.get(self.arity):
                by_position = sorted(zip(positions, values))
                row = tuple(v for _p, v in by_position)
            return (row,) if row in self._tuples else _EMPTY_SET
        index = self._indexes.get(positions)
        if index is None:
            index = defaultdict(set)
            for row in self._tuples:
                index[self._key(row, positions)].add(row)
            self._indexes[positions] = index
        return index.get(tuple(values), _EMPTY_SET)

    def ensure_index(self, positions):
        """Force the index over *positions* to exist now.

        Incremental maintenance uses this to pay index builds at plan time
        rather than inside the first (supposedly O(delta)) delta join.
        """
        positions = tuple(positions)
        if (
            not positions
            or len(positions) == self.arity
            or positions in self._indexes
        ):
            return
        index = defaultdict(set)
        for row in self._tuples:
            index[self._key(row, positions)].add(row)
        self._indexes[positions] = index

    def copy(self):
        clone = Relation(self.name, self.arity)
        clone._tuples = set(self._tuples)
        return clone


_EMPTY_SET = frozenset()

#: Memoized identity position tuples: a fully-bound probe whose positions
#: already read ``(0, 1, ..., arity-1)`` needs no reordering.
_SORTED_POSITIONS = {n: tuple(range(n)) for n in range(1, 17)}


class Database:
    """A mapping from predicate name to :class:`Relation`.

    Fact values are raw Python objects (strings, numbers, sentinels), not
    Term wrappers.  ``Constant`` wrappers are unwrapped on insertion.
    """

    def __init__(self):
        self._relations = {}

    def __contains__(self, predicate):
        return predicate in self._relations

    def __iter__(self):
        return iter(self._relations)

    def __eq__(self, other):
        if not isinstance(other, Database):
            return NotImplemented
        mine = {n: r.tuples for n, r in self._relations.items() if r.tuples}
        theirs = {n: r.tuples for n, r in other._relations.items() if r.tuples}
        return mine == theirs

    def __repr__(self):
        total = sum(len(r) for r in self._relations.values())
        return f"Database({len(self._relations)} relations, {total} facts)"

    @property
    def predicates(self):
        return set(self._relations)

    def relation(self, predicate, arity=None):
        """Fetch (creating if *arity* is given) the relation for a predicate."""
        existing = self._relations.get(predicate)
        if existing is not None:
            if arity is not None and existing.arity != arity:
                raise ArityError(
                    f"relation {predicate!r} has arity {existing.arity}, requested {arity}"
                )
            return existing
        if arity is None:
            raise KeyError(f"unknown relation {predicate!r}")
        created = Relation(predicate, arity)
        self._relations[predicate] = created
        return created

    @staticmethod
    def _unwrap(value):
        return value.value if isinstance(value, Constant) else value

    def add_fact(self, predicate, *values):
        """Insert one fact; values may be raw or Constant-wrapped."""
        row = tuple(self._unwrap(v) for v in values)
        return self.relation(predicate, len(row)).add(row)

    def add_facts(self, predicate, rows):
        """Insert many facts for one predicate."""
        added = 0
        for row in rows:
            if self.add_fact(predicate, *row):
                added += 1
        return added

    def facts(self, predicate):
        """The tuple set of a predicate (empty frozen set when absent)."""
        relation = self._relations.get(predicate)
        return relation.tuples if relation is not None else _EMPTY_SET

    def count(self, predicate=None):
        if predicate is not None:
            return len(self.facts(predicate))
        return sum(len(r) for r in self._relations.values())

    def arity_of(self, predicate):
        return self.relation(predicate).arity

    def copy(self):
        clone = Database()
        clone._relations = {name: rel.copy() for name, rel in self._relations.items()}
        return clone

    def merge(self, other):
        """Add every fact of *other* into this database (in place)."""
        for predicate in other:
            relation = other.relation(predicate)
            self.relation(predicate, relation.arity).add_many(relation.tuples)
        return self

    def active_domain(self):
        """The set of all values occurring in any fact."""
        domain = set()
        for relation in self._relations.values():
            for row in relation:
                domain.update(row)
        return domain

    @classmethod
    def from_facts(cls, facts_by_predicate):
        """Build a database from ``{predicate: iterable of tuples}``."""
        database = cls()
        for predicate, rows in facts_by_predicate.items():
            database.add_facts(predicate, rows)
        return database

    def to_dict(self):
        """A plain ``{predicate: sorted list of tuples}`` snapshot."""
        return {
            name: sorted(relation.tuples, key=_sort_key)
            for name, relation in self._relations.items()
            if relation.tuples
        }


def _sort_key(row):
    return tuple((type(v).__name__, str(v)) for v in row)
