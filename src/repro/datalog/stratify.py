"""Dependence graphs and stratification of Datalog programs.

The *dependence graph* of a program has one node per predicate and an edge
``q -> p`` whenever ``q`` appears in the body of a rule for ``p`` (Definition
2.6 of the paper, stated there for graphical queries).  The edge is *negative*
when some such occurrence is negated.  A program is stratified when no cycle
of the dependence graph contains a negative edge; the strata give the
bottom-up evaluation order.
"""

from __future__ import annotations

from collections import defaultdict

from repro import obs
from repro.datalog.ast import Literal
from repro.errors import StratificationError


class DependenceGraph:
    """Predicate-level dependence graph with positive/negative edges."""

    def __init__(self):
        self.nodes = set()
        self._positive = defaultdict(set)  # target -> {sources}
        self._negative = defaultdict(set)

    @classmethod
    def of_program(cls, program, negative_extra=None):
        """Build the dependence graph of *program*.

        ``negative_extra`` optionally maps head predicates to body predicates
        whose dependence must be treated as negative even when the literal is
        positive (used for aggregate rules, which stratify like negation).
        """
        graph = cls()
        negative_extra = negative_extra or {}
        for rule in program:
            head = rule.head.predicate
            graph.nodes.add(head)
            for element in rule.body:
                if not isinstance(element, Literal):
                    continue
                body_pred = element.predicate
                graph.nodes.add(body_pred)
                forced = body_pred in negative_extra.get(head, ())
                graph.add_edge(body_pred, head, negative=element.negative or forced)
        return graph

    def add_edge(self, source, target, negative=False):
        self.nodes.add(source)
        self.nodes.add(target)
        if negative:
            self._negative[target].add(source)
        else:
            self._positive[target].add(source)

    def dependencies(self, predicate):
        """All predicates that *predicate* depends on (pos or neg)."""
        return self._positive[predicate] | self._negative[predicate]

    def negative_dependencies(self, predicate):
        return set(self._negative[predicate])

    def successors(self, predicate):
        """All predicates that depend on *predicate*."""
        out = set()
        for target in self.nodes:
            if predicate in self.dependencies(target):
                out.add(target)
        return out

    def edges(self):
        """Iterate over ``(source, target, negative)`` triples."""
        for target, sources in self._positive.items():
            for source in sources:
                yield (source, target, False)
        for target, sources in self._negative.items():
            for source in sources:
                yield (source, target, True)

    def strongly_connected_components(self):
        """Tarjan's algorithm (iterative); returns a list of frozensets.

        With edges directed body-predicate -> head-predicate, components are
        emitted dependents-first (a head's component appears before the
        components of the predicates it depends on); reverse the list for a
        dependencies-first evaluation order."""
        index_of = {}
        lowlink = {}
        on_stack = set()
        stack = []
        components = []
        counter = [0]

        # Precompute forward adjacency: node -> nodes it points to.
        forward = defaultdict(set)
        for source, target, _negative in self.edges():
            forward[source].add(target)

        for root in sorted(self.nodes, key=str):
            if root in index_of:
                continue
            work = [(root, iter(sorted(forward[root], key=str)))]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in index_of:
                        index_of[successor] = lowlink[successor] = counter[0]
                        counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append(
                            (successor, iter(sorted(forward[successor], key=str)))
                        )
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(frozenset(component))
        return components

    def is_acyclic(self, ignore_self_loops=False):
        """True when the graph has no cycles (optionally allowing p -> p)."""
        for component in self.strongly_connected_components():
            if len(component) > 1:
                return False
            (node,) = component
            if not ignore_self_loops and node in self.dependencies(node):
                return False
        return True

    def scc_of(self, predicate):
        for component in self.strongly_connected_components():
            if predicate in component:
                return component
        return frozenset({predicate})


def stratify(program, negative_extra=None):
    """Assign a stratum number to every predicate of *program*.

    Returns ``{predicate: stratum}`` with EDB predicates at stratum 0.
    Raises :class:`StratificationError` when negation occurs through
    recursion (an SCC containing a negative edge).
    """
    with obs.span("stratify") as span:
        graph = DependenceGraph.of_program(program, negative_extra=negative_extra)
        components = graph.strongly_connected_components()
        component_of = {}
        for component in components:
            for node in component:
                component_of[node] = component

        # Reject negative edges inside a strongly connected component.
        for source, target, negative in graph.edges():
            if negative and component_of[source] == component_of[target]:
                raise StratificationError(
                    f"negation through recursion: {target!r} depends negatively on "
                    f"{source!r} within the same recursive component"
                )

        strata = {}
        # Tarjan emits dependents before their dependencies; reverse so each
        # component's dependencies have their strata assigned first.
        for component in reversed(components):
            level = 0
            for node in component:
                for dep in graph.dependencies(node):
                    if component_of[dep] == component:
                        continue
                    dep_level = strata.get(dep, 0)
                    bump = 1 if dep in graph.negative_dependencies(node) else 0
                    level = max(level, dep_level + bump)
            for node in component:
                strata[node] = level
        for predicate in graph.nodes:
            strata.setdefault(predicate, 0)
        if span:
            span.annotate(
                predicates=len(strata),
                sccs=len(components),
                strata=len(set(strata.values())),
            )
        return strata


def stratum_order(program, negative_extra=None):
    """Group IDB predicates by stratum, lowest first.

    Returns a list of sets of predicate names; only predicates that are
    actually defined by rules (IDBs) are included.
    """
    strata = stratify(program, negative_extra=negative_extra)
    idb = program.idb_predicates
    by_level = defaultdict(set)
    for predicate, level in strata.items():
        if predicate in idb:
            by_level[level].add(predicate)
    return [by_level[level] for level in sorted(by_level)]


def is_stratified(program, negative_extra=None):
    """True when the program admits a stratification."""
    try:
        stratify(program, negative_extra=negative_extra)
    except StratificationError:
        return False
    return True


def recursive_components(program):
    """The SCCs of the IDB dependence graph that are actually recursive.

    A component is recursive when it has more than one predicate or its
    single predicate depends on itself.
    """
    graph = DependenceGraph.of_program(program)
    out = []
    for component in graph.strongly_connected_components():
        if len(component) > 1:
            out.append(component)
            continue
        (node,) = component
        if node in graph.dependencies(node):
            out.append(component)
    return out
