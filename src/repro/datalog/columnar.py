"""Columnar int-encoded evaluation core (``Engine(method="columnar")``).

The native engine evaluates semi-naive fixpoints over sets of Python-object
tuples, with per-tuple dict bindings built by a recursive walker.  This
module is the compiled alternative (ROADMAP item 1): all terms are
dictionary-encoded to dense ints once per database (a :class:`TermCatalog`),
relations become sorted runs of int rows with ``array('q')`` columnar
materialization (:class:`ColumnarRelation`), and each rule body is compiled
once per fixpoint into a pipeline of flat join / anti-join / built-in
kernels over those ints (:func:`_compile_pipeline`).  Semi-naive deltas are
deduplicated against the base key set and merged in as new sorted runs
between iterations (log-structured, so an iteration costs O(delta), never
O(base)); the fully-sorted columns are produced by a final merge on demand.

Two further wins over the native walker:

- **Delta-first join ordering.**  The native engine swaps the delta
  relation in at its schedule position but still enumerates the schedule
  left to right, so a rule like ``tc(X,Y) :- e(X,Z), tc(Z,Y)`` re-scans all
  of ``e`` every iteration.  Here each (rule, delta position) variant is
  re-ordered greedily to enumerate the delta first, making an iteration
  proportional to the delta and its matches.
- **Old/new split.**  Rules with two or more recursive literals use the
  classical decomposition (positions before the delta read the full
  relation, positions after it the pre-iteration state), so each new
  combination is derived exactly once per iteration.

Semantics are pinned to the native engine by randomized differential tests
(tests/test_columnar_differential.py): stratified negation, comparisons,
arithmetic (including value interning of computed results), repeated
variables, and constants all behave identically; results decode back into
an ordinary :class:`~repro.datalog.database.Database`.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from operator import itemgetter

from repro import obs
from repro.datalog.ast import ArithmeticAssign, Comparison, Literal
from repro.datalog.safety import schedule_body
from repro.datalog.stratify import DependenceGraph, stratify
from repro.datalog.terms import Variable
from repro.errors import EvaluationError

# Comparison/arithmetic tables are shared with the native engine so the two
# backends can never drift on built-in semantics.
from repro.datalog.engine import _ARITHMETIC, _COMPARATORS


class TermCatalog:
    """Dictionary encoding of term values to dense non-negative ints.

    Interning follows Python equality (as the native engine's tuple sets
    do), so ``1``, ``1.0`` and ``True`` share one id.  The catalog is
    append-only; ids are stable for its lifetime, which lets encoded
    databases and derived relations share one catalog across queries.
    Interning is thread-safe: the read path is a plain dict probe, the
    write path double-checks under a lock.
    """

    __slots__ = ("_ids", "values", "_lock")

    def __init__(self):
        import threading

        self._ids = {}
        #: id -> original value, index-aligned; kernels read this directly.
        self.values = []
        self._lock = threading.Lock()

    def __len__(self):
        return len(self.values)

    def intern(self, value):
        ident = self._ids.get(value)
        if ident is not None:
            return ident
        with self._lock:
            ident = self._ids.get(value)
            if ident is None:
                ident = len(self.values)
                self.values.append(value)
                self._ids[value] = ident
        return ident

    def intern_row(self, row):
        return tuple(self.intern(v) for v in row)

    def value(self, ident):
        return self.values[ident]

    def decode_row(self, row):
        values = self.values
        return tuple(values[i] for i in row)


class ColumnarRelation:
    """A relation of fixed-arity int rows stored as sorted runs.

    ``rows`` is the flat list of encoded row tuples, laid out as a
    concatenation of individually sorted runs (``run_lengths`` records the
    boundaries); ``keys`` is the membership set used for O(1) dedup when a
    delta run merges in.  :meth:`columns` materializes the fully-merged
    ``array('q')`` column vectors.  Hash indexes over position subsets are
    built lazily and — for unsealed relations — extended incrementally as
    runs merge, so index maintenance is O(delta) per iteration.

    A *sealed* relation is immutable (the encoded EDB): its indexes are
    built whole and may be shared by concurrent evaluations.  An unsealed
    relation (a fixpoint's working copy) is owned by one evaluation.
    """

    __slots__ = ("name", "arity", "rows", "keys", "run_lengths", "sealed", "_indexes")

    def __init__(self, name, arity, sealed=False):
        self.name = name
        self.arity = int(arity)
        self.rows = []
        self.keys = set()
        self.run_lengths = []
        self.sealed = sealed
        self._indexes = {}

    def __len__(self):
        return len(self.rows)

    def __contains__(self, row):
        return row in self.keys

    def __repr__(self):
        return (
            f"ColumnarRelation({self.name!r}/{self.arity}, {len(self.rows)} rows, "
            f"{len(self.run_lengths)} runs{', sealed' if self.sealed else ''})"
        )

    def seed(self, encoded_rows):
        """Bulk-load one sorted base run (build/encode time only)."""
        fresh = sorted(set(encoded_rows) - self.keys)
        if not fresh:
            return 0
        self.rows.extend(fresh)
        self.keys.update(fresh)
        self.run_lengths.append(len(fresh))
        return len(fresh)

    def fork(self, name=None):
        """An unsealed copy sharing row tuples but no indexes."""
        clone = ColumnarRelation(name or self.name, self.arity, sealed=False)
        clone.rows = list(self.rows)
        clone.keys = set(self.keys)
        clone.run_lengths = list(self.run_lengths)
        return clone

    def merge_run(self, candidate_rows):
        """Dedup *candidate_rows* against the base and merge the survivors
        as one new sorted run; returns the list of genuinely-new rows."""
        keys = self.keys
        fresh = {row for row in candidate_rows if row not in keys}
        if not fresh:
            return []
        run = sorted(fresh)
        self.rows.extend(run)
        keys.update(run)
        self.run_lengths.append(len(run))
        return run

    def index(self, positions):
        """``{key: [row, ...]}`` over the columns at *positions*.

        Keys are the bare column value for a single position and the value
        tuple otherwise (both built by C-level ``itemgetter``).  Sealed
        relations build once and publish atomically (safe under concurrent
        readers); unsealed relations extend the mapping from the rows
        appended since the last probe.
        """
        if self.sealed:
            mapping = self._indexes.get(positions)
            if mapping is None:
                mapping = _build_index(self.rows, positions)
                self._indexes[positions] = mapping
            return mapping
        entry = self._indexes.get(positions)
        if entry is None:
            entry = self._indexes[positions] = [{}, 0]
        mapping, upto = entry
        total = len(self.rows)
        if upto < total:
            key_of = _key_fn(positions)
            get = mapping.get
            for row in self.rows[upto:]:
                key = key_of(row)
                bucket = get(key)
                if bucket is None:
                    mapping[key] = [row]
                else:
                    bucket.append(row)
            entry[1] = total
        return mapping

    def columns(self):
        """The fully-merged sorted columns, one ``array('q')`` per column."""
        ordered = self.rows if len(self.run_lengths) <= 1 else sorted(self.rows)
        return [array("q", (row[i] for row in ordered)) for i in range(self.arity)]


def _key_fn(positions):
    if len(positions) == 1:
        position = positions[0]
        return lambda row: row[position]
    return itemgetter(*positions)


def _build_index(rows, positions):
    mapping = {}
    key_of = _key_fn(positions)
    get = mapping.get
    for row in rows:
        key = key_of(row)
        bucket = get(key)
        if bucket is None:
            mapping[key] = [row]
        else:
            bucket.append(row)
    return mapping


class EncodedDatabase:
    """A Database's relations, dictionary-encoded and sealed.

    Built once per database state (``encode_database`` caches by mutation
    stamp) and shared read-only by every evaluation at that state — the
    build/commit-time half of the encoding lifecycle.  The catalog is
    append-only, so later evaluations may intern new terms (arithmetic
    results, program constants) without invalidating earlier rows.
    """

    __slots__ = ("catalog", "relations")

    def __init__(self, catalog=None):
        self.catalog = catalog if catalog is not None else TermCatalog()
        self.relations = {}

    @classmethod
    def from_database(cls, database, catalog=None):
        encoded = cls(catalog)
        intern = encoded.catalog.intern
        for name in database:
            relation = database.relation(name)
            sealed = ColumnarRelation(name, relation.arity, sealed=True)
            sealed.seed(
                tuple(intern(value) for value in row) for row in relation.tuples
            )
            encoded.relations[name] = sealed
        return encoded


def encode_database(database, catalog=None):
    """The (cached) sealed encoding of *database*.

    The cache key is the per-relation mutation stamp, so any add/discard on
    any relation re-encodes; an unchanged database (the service's shared
    per-version EDB) encodes exactly once no matter how many queries run.
    """
    stamp = tuple(
        sorted(
            (name, database.relation(name)._mutations, len(database.relation(name)))
            for name in database
        )
    )
    cached = getattr(database, "_columnar_cache", None)
    if cached is not None and cached[0] == stamp and (
        catalog is None or cached[1].catalog is catalog
    ):
        return cached[1]
    encoded = EncodedDatabase.from_database(database, catalog)
    try:
        database._columnar_cache = (stamp, encoded)
    except AttributeError:  # pragma: no cover - Database has a __dict__
        pass
    return encoded


# --------------------------------------------------------------------------
# Rule compilation: one pipeline of batch kernels per (rule, delta position)


class _Pipeline:
    """A compiled rule body: seed provider plus batch transform steps."""

    __slots__ = ("rule", "steps", "seed", "head_project")

    def __init__(self, rule, seed, steps, head_project):
        self.rule = rule
        self.seed = seed  # callable (delta_rows) -> iterable of slot rows
        self.steps = steps  # [callable (rows, old_keys) -> rows]
        self.head_project = head_project

    def fire(self, delta_rows=None, old_keys=None):
        rows = self.seed(delta_rows)
        for step in self.steps:
            if not rows:
                return []
            rows = step(rows, old_keys)
        if not rows:
            return []
        # A fused final join already emitted head rows (head_project None).
        return self.head_project(rows) if self.head_project else rows


def _greedy_delta_order(delta_literal, schedule, delta_index):
    """Reorder *schedule* to enumerate the delta literal first.

    Delegates to the maintenance planner's greedy scheduler, which places
    negations and built-ins as soon as their variables are bound.
    """
    from repro.datalog.dred import _greedy_order

    others = (element for j, element in enumerate(schedule) if j != delta_index)
    return _greedy_order(delta_literal, others)


def _compile_pipeline(rule, ordered, resolve, catalog, old_ids, delta_first):
    """Compile *ordered* body elements into a :class:`_Pipeline`.

    ``resolve(predicate)`` yields the :class:`ColumnarRelation` to join
    against; ``old_ids`` is the set of ``id()``s of body literals that must
    read the *old* state (rows merged before this iteration) — their join
    steps subtract matches found in the current delta.  ``delta_first``
    marks the pipeline whose seed rows are supplied by the caller (the
    delta run) instead of scanned from the first literal's relation.
    """
    slots = {}

    def slot_of(variable):
        return slots.get(variable)

    steps = []
    elements = list(ordered)
    first = elements[0] if elements else None

    if first is not None and isinstance(first, Literal) and first.positive:
        seed = _compile_seed(
            first, resolve, catalog, slots, delta_first=delta_first
        )
        rest = elements[1:]
    else:
        # Body with no positive literal (ground/builtin-only rules): seed a
        # single empty row and let the steps filter it.
        def seed(_delta_rows, _single=[()]):
            return _single

        rest = elements

    for order, element in enumerate(rest):
        last = order == len(rest) - 1
        if isinstance(element, Literal):
            if element.positive:
                if last:
                    # The final join can emit deduplicated head tuples
                    # straight out of the probe loop, skipping the wide
                    # intermediate rows and the separate projection pass.
                    fused = _compile_fused_join_head(
                        element,
                        resolve(element.predicate),
                        catalog,
                        slots,
                        rule.head,
                        use_old=id(element) in old_ids,
                    )
                    if fused is not None:
                        steps.append(fused)
                        return _Pipeline(rule, seed, steps, None)
                steps.append(
                    _compile_join(
                        element,
                        resolve(element.predicate),
                        catalog,
                        slots,
                        use_old=id(element) in old_ids,
                    )
                )
            else:
                steps.append(
                    _compile_antijoin(element, resolve(element.predicate), catalog, slots)
                )
        elif isinstance(element, Comparison):
            steps.append(_compile_comparison(element, catalog, slots))
        elif isinstance(element, ArithmeticAssign):
            steps.append(_compile_arithmetic(element, catalog, slots))
        else:  # pragma: no cover - AST is closed
            raise EvaluationError(f"unknown body element {element!r}")

    head_project = _compile_head(rule.head, catalog, slots)
    return _Pipeline(rule, seed, steps, head_project)


def _literal_layout(literal, catalog, slots):
    """Classify one positive literal's argument positions.

    Returns ``(bound_positions, bound_sources, new_positions, dup_checks)``:
    positions whose value is already determined (constants and variables
    bound by earlier elements) with their value sources (slot index or
    interned constant), positions binding fresh variables (first
    occurrence, in position order), and within-literal equality checks for
    repeated fresh variables.
    """
    bound_positions = []
    bound_sources = []  # ("slot", i) | ("const", ident)
    new_positions = []
    dup_checks = []  # (position, earlier_position) both fresh in this literal
    first_seen = {}
    for position, term in enumerate(literal.atom.args):
        if isinstance(term, Variable):
            if term.is_anonymous:
                continue
            slot = slots.get(term)
            if slot is not None:
                bound_positions.append(position)
                bound_sources.append(("slot", slot))
            elif term in first_seen:
                dup_checks.append((position, first_seen[term]))
            else:
                first_seen[term] = position
                new_positions.append(position)
        else:
            bound_positions.append(position)
            bound_sources.append(("const", catalog.intern(term.value)))
    return bound_positions, bound_sources, new_positions, dup_checks


def _bind_new_slots(literal, slots, new_positions):
    for position in new_positions:
        slots[literal.atom.args[position]] = len(slots)


def _compile_seed(literal, resolve, catalog, slots, delta_first):
    """The pipeline's row source: scan the first literal.

    For the delta variant the rows come from the caller; otherwise they are
    read from the relation (through a constant-keyed index when the literal
    carries constants).  Rows are projected onto the fresh-variable slots.
    """
    relation = resolve(literal.predicate)
    bound_positions, bound_sources, new_positions, dup_checks = _literal_layout(
        literal, catalog, slots
    )
    # At seed time nothing is bound yet, so every bound source is a const.
    const_positions = tuple(bound_positions)
    const_values = tuple(ident for _kind, ident in bound_sources)
    _bind_new_slots(literal, slots, new_positions)
    project = _row_projector(new_positions, len(literal.atom.args))
    identity = project is None

    def source_rows(delta_rows):
        if delta_first:
            return delta_rows
        if const_positions:
            if len(const_positions) == len(literal.atom.args):
                # Fully-ground literal: membership test.
                return [const_values] if const_values in relation.keys else []
            key = const_values[0] if len(const_positions) == 1 else const_values
            return relation.index(const_positions).get(key, ())
        return relation.rows

    if not const_positions and not dup_checks and identity:
        return source_rows

    def seed(delta_rows):
        rows = source_rows(delta_rows)
        out = []
        append = out.append
        for row in rows:
            ok = True
            if delta_first and const_positions:
                for position, ident in zip(const_positions, const_values):
                    if row[position] != ident:
                        ok = False
                        break
                if not ok:
                    continue
            for position, earlier in dup_checks:
                if row[position] != row[earlier]:
                    ok = False
                    break
            if ok:
                append(row if identity else project(row))
        return out

    return seed


def _row_projector(positions, width):
    """A tuple projector onto *positions*, or None when it is the identity
    over rows of exactly *width* columns (positions ``0..width-1`` in order)."""
    positions = list(positions)
    if positions == list(range(width)):
        return None
    if not positions:
        return lambda _row: ()
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    return itemgetter(*positions)


def _probe_key_fn(bound_sources):
    """Build the probe-key constructor matching ``ColumnarRelation.index``
    key shapes: bare value for one position, tuples beyond."""
    if len(bound_sources) == 1:
        kind, payload = bound_sources[0]
        if kind == "slot":
            return lambda row, _s=payload: row[_s]
        return lambda _row, _c=payload: _c
    parts = tuple(bound_sources)

    def key(row):
        return tuple(
            row[payload] if kind == "slot" else payload for kind, payload in parts
        )

    return key


def _compile_join(literal, relation, catalog, slots, use_old=False):
    bound_positions, bound_sources, new_positions, dup_checks = _literal_layout(
        literal, catalog, slots
    )
    _bind_new_slots(literal, slots, new_positions)
    positions = tuple(bound_positions)
    key_of = _probe_key_fn(bound_sources) if positions else None
    predicate = literal.predicate
    # Matched rows are appended column-wise onto the input row tuple.
    new_getters = (
        itemgetter(*new_positions)
        if len(new_positions) > 1
        else (
            (lambda row, _p=new_positions[0]: row[_p]) if new_positions else None
        )
    )
    single_new = len(new_positions) == 1

    if positions and not dup_checks:
        # The dominant shape: hash-probe with no intra-literal duplicate
        # variables.  Comprehensions keep the whole match loop in C.
        single_slot_key = (
            len(bound_sources) == 1 and bound_sources[0][0] == "slot"
        )
        if single_slot_key and single_new:
            slot = bound_sources[0][1]
            new_position = new_positions[0]

            def step(rows, old_keys):
                probe = relation.index(positions).get
                exclude = (
                    old_keys.get(predicate) if (use_old and old_keys) else None
                )
                if exclude is None:
                    return [
                        row + (match[new_position],)
                        for row in rows
                        for match in probe(row[slot]) or ()
                    ]
                return [
                    row + (match[new_position],)
                    for row in rows
                    for match in probe(row[slot]) or ()
                    if match not in exclude
                ]

            return step

        def step(rows, old_keys):
            probe = relation.index(positions).get
            exclude = (
                old_keys.get(predicate) if (use_old and old_keys) else None
            )
            if new_getters is None:
                # Fully bound: a semijoin.  Multiplicity is irrelevant (the
                # fixpoint dedups), so one surviving match keeps the row.
                if exclude is None:
                    return [row for row in rows if probe(key_of(row))]
                return [
                    row
                    for row in rows
                    if any(
                        match not in exclude
                        for match in probe(key_of(row)) or ()
                    )
                ]
            if single_new:
                new_position = new_positions[0]
                if exclude is None:
                    return [
                        row + (match[new_position],)
                        for row in rows
                        for match in probe(key_of(row)) or ()
                    ]
                return [
                    row + (match[new_position],)
                    for row in rows
                    for match in probe(key_of(row)) or ()
                    if match not in exclude
                ]
            if exclude is None:
                return [
                    row + new_getters(match)
                    for row in rows
                    for match in probe(key_of(row)) or ()
                ]
            return [
                row + new_getters(match)
                for row in rows
                for match in probe(key_of(row)) or ()
                if match not in exclude
            ]

        return step

    def step(rows, old_keys):
        exclude = old_keys.get(predicate) if (use_old and old_keys) else None
        out = []
        append = out.append
        if positions:
            probe = relation.index(positions).get
            for row in rows:
                matches = probe(key_of(row))
                if not matches:
                    continue
                for match in matches:
                    if exclude is not None and match in exclude:
                        continue
                    ok = True
                    for position, earlier in dup_checks:
                        if match[position] != match[earlier]:
                            ok = False
                            break
                    if not ok:
                        continue
                    if new_getters is None:
                        append(row)
                    elif single_new:
                        append(row + (new_getters(match),))
                    else:
                        append(row + new_getters(match))
        else:
            # No shared variables: a cross product with the whole relation.
            matches = relation.rows
            for row in rows:
                for match in matches:
                    if exclude is not None and match in exclude:
                        continue
                    ok = True
                    for position, earlier in dup_checks:
                        if match[position] != match[earlier]:
                            ok = False
                            break
                    if not ok:
                        continue
                    if new_getters is None:
                        append(row)
                    elif single_new:
                        append(row + (new_getters(match),))
                    else:
                        append(row + new_getters(match))
        return out

    return step


def _fused_emit(parts):
    """``(row, match) -> head tuple`` for a fused final join.

    *parts* entries are ``("row", slot)``, ``("match", position)``, or
    ``("const", ident)``.  The binary row/match shapes cover the
    transitive-closure family and get dedicated lambdas.
    """
    kinds = tuple(kind for kind, _ in parts)
    if kinds == ("row", "match"):
        a, b = parts[0][1], parts[1][1]
        return lambda row, match: (row[a], match[b])
    if kinds == ("match", "row"):
        a, b = parts[0][1], parts[1][1]
        return lambda row, match: (match[a], row[b])
    if kinds == ("row", "row"):
        a, b = parts[0][1], parts[1][1]
        return lambda row, match: (row[a], row[b])

    def emit(row, match):
        return tuple(
            row[payload]
            if kind == "row"
            else (match[payload] if kind == "match" else payload)
            for kind, payload in parts
        )

    return emit


def _compile_fused_join_head(literal, relation, catalog, slots, head, use_old):
    """Fuse a rule's *final* positive join with its head projection.

    Returns a step whose output is a deduplicated set of head tuples (the
    pipeline skips ``head_project``), or None when the shape is not
    eligible — duplicate fresh variables in the literal, no bound
    positions to probe on, or a head variable bound by neither the
    earlier slots nor this literal.
    """
    bound_positions, bound_sources, new_positions, dup_checks = _literal_layout(
        literal, catalog, slots
    )
    if dup_checks or not bound_positions:
        return None
    by_new_position = {}
    for position in new_positions:
        by_new_position.setdefault(literal.atom.args[position], position)
    parts = []
    for term in head.args:
        if isinstance(term, Variable):
            slot = slots.get(term)
            if slot is not None:
                parts.append(("row", slot))
            elif term in by_new_position:
                parts.append(("match", by_new_position[term]))
            else:
                return None  # unbound head variable: let _compile_head raise
        else:
            parts.append(("const", catalog.intern(term.value)))
    _bind_new_slots(literal, slots, new_positions)

    positions = tuple(bound_positions)
    predicate = literal.predicate
    single_slot_key = len(bound_sources) == 1 and bound_sources[0][0] == "slot"
    key_of = None if single_slot_key else _probe_key_fn(bound_sources)
    slot = bound_sources[0][1] if single_slot_key else None

    kinds = tuple(kind for kind, _ in parts)
    if single_slot_key and kinds in (("row", "match"), ("match", "row")):
        # The transitive-closure family: inline the binary head tuple so
        # the whole probe loop stays in one C-level set comprehension.
        a, b = parts[0][1], parts[1][1]
        if kinds == ("row", "match"):

            def step(rows, old_keys):
                probe = relation.index(positions).get
                exclude = (
                    old_keys.get(predicate) if (use_old and old_keys) else None
                )
                if exclude is None:
                    return {
                        (row[a], match[b])
                        for row in rows
                        for match in probe(row[slot]) or ()
                    }
                return {
                    (row[a], match[b])
                    for row in rows
                    for match in probe(row[slot]) or ()
                    if match not in exclude
                }

        else:

            def step(rows, old_keys):
                probe = relation.index(positions).get
                exclude = (
                    old_keys.get(predicate) if (use_old and old_keys) else None
                )
                if exclude is None:
                    return {
                        (match[a], row[b])
                        for row in rows
                        for match in probe(row[slot]) or ()
                    }
                return {
                    (match[a], row[b])
                    for row in rows
                    for match in probe(row[slot]) or ()
                    if match not in exclude
                }

        return step

    emit = _fused_emit(parts)

    def step(rows, old_keys):
        probe = relation.index(positions).get
        exclude = old_keys.get(predicate) if (use_old and old_keys) else None
        if single_slot_key:
            if exclude is None:
                return {
                    emit(row, match)
                    for row in rows
                    for match in probe(row[slot]) or ()
                }
            return {
                emit(row, match)
                for row in rows
                for match in probe(row[slot]) or ()
                if match not in exclude
            }
        if exclude is None:
            return {
                emit(row, match)
                for row in rows
                for match in probe(key_of(row)) or ()
            }
        return {
            emit(row, match)
            for row in rows
            for match in probe(key_of(row)) or ()
            if match not in exclude
        }

    return step


def _compile_antijoin(literal, relation, catalog, slots):
    """Negated literal: keep rows with no matching tuple.

    Anonymous variables and unbound positions are existential, so the probe
    covers only constants and bound variables; safety guarantees negated
    non-anonymous variables are bound by the time the literal runs.
    """
    bound_positions = []
    bound_sources = []
    for position, term in enumerate(literal.atom.args):
        if isinstance(term, Variable):
            if term.is_anonymous:
                continue
            slot = slots.get(term)
            if slot is None:
                raise EvaluationError(
                    f"negated literal {literal} probes unbound variable {term}"
                )
            bound_positions.append(position)
            bound_sources.append(("slot", slot))
        else:
            bound_positions.append(position)
            bound_sources.append(("const", catalog.intern(term.value)))
    positions = tuple(bound_positions)

    if not positions:
        def step(rows, _old_keys):
            return rows if not len(relation) else []

        return step

    key_of = _probe_key_fn(bound_sources)

    def step(rows, _old_keys):
        probe = relation.index(positions)
        return [row for row in rows if key_of(row) not in probe]

    return step


def _value_source(term, catalog, slots):
    """('slot', i) or ('value', decoded constant) for a builtin operand."""
    if isinstance(term, Variable):
        slot = slots.get(term)
        if slot is None:
            return ("unbound", term)
        return ("slot", slot)
    return ("value", term.value)


def _compile_comparison(comparison, catalog, slots):
    left = _value_source(comparison.left, catalog, slots)
    right = _value_source(comparison.right, catalog, slots)
    values = catalog.values

    if comparison.op == "==" and (left[0] == "unbound" or right[0] == "unbound"):
        if left[0] == "unbound" and right[0] == "unbound":
            def step(rows, _old_keys):
                if rows:
                    raise EvaluationError(
                        f"equality with both sides unbound: {comparison}"
                    )
                return rows

            return step
        unbound_term = left[1] if left[0] == "unbound" else right[1]
        bound = right if left[0] == "unbound" else left
        slots[unbound_term] = len(slots)
        if bound[0] == "slot":
            source_slot = bound[1]

            def step(rows, _old_keys):
                return [row + (row[source_slot],) for row in rows]

        else:
            ident = catalog.intern(bound[1])

            def step(rows, _old_keys):
                return [row + (ident,) for row in rows]

        return step

    if left[0] == "unbound" or right[0] == "unbound":
        def step(rows, _old_keys):
            if rows:
                raise EvaluationError(
                    f"comparison on unbound variable: {comparison}"
                )
            return rows

        return step

    compare = _COMPARATORS[comparison.op]
    lkind, lpayload = left
    rkind, rpayload = right

    def step(rows, _old_keys):
        out = []
        append = out.append
        try:
            for row in rows:
                lhs = values[row[lpayload]] if lkind == "slot" else lpayload
                rhs = values[row[rpayload]] if rkind == "slot" else rpayload
                if compare(lhs, rhs):
                    append(row)
        except TypeError as exc:
            raise EvaluationError(
                f"incomparable values in {comparison}: {exc}"
            ) from exc
        return out

    return step


def _compile_arithmetic(assign, catalog, slots):
    left = _value_source(assign.left, catalog, slots)
    right = _value_source(assign.right, catalog, slots)
    if left[0] == "unbound" or right[0] == "unbound":
        def step(rows, _old_keys):
            if rows:
                raise EvaluationError(f"arithmetic on unbound variable: {assign}")
            return rows

        return step

    operate = _ARITHMETIC[assign.op]
    values = catalog.values
    intern = catalog.intern
    lkind, lpayload = left
    rkind, rpayload = right
    result = assign.result

    if isinstance(result, Variable) and result not in slots:
        slots[result] = len(slots)

        def step(rows, _old_keys):
            out = []
            append = out.append
            try:
                for row in rows:
                    lhs = values[row[lpayload]] if lkind == "slot" else lpayload
                    rhs = values[row[rpayload]] if rkind == "slot" else rpayload
                    append(row + (intern(operate(lhs, rhs)),))
            except (TypeError, ZeroDivisionError) as exc:
                raise EvaluationError(
                    f"arithmetic failure in {assign}: {exc}"
                ) from exc
            return out

        return step

    if isinstance(result, Variable):
        result_slot = slots[result]

        def step(rows, _old_keys):
            out = []
            append = out.append
            try:
                for row in rows:
                    lhs = values[row[lpayload]] if lkind == "slot" else lpayload
                    rhs = values[row[rpayload]] if rkind == "slot" else rpayload
                    if row[result_slot] == intern(operate(lhs, rhs)):
                        append(row)
            except (TypeError, ZeroDivisionError) as exc:
                raise EvaluationError(
                    f"arithmetic failure in {assign}: {exc}"
                ) from exc
            return out

        return step

    expected = result.value

    def step(rows, _old_keys):
        out = []
        append = out.append
        try:
            for row in rows:
                lhs = values[row[lpayload]] if lkind == "slot" else lpayload
                rhs = values[row[rpayload]] if rkind == "slot" else rpayload
                if expected == operate(lhs, rhs):
                    append(row)
        except (TypeError, ZeroDivisionError) as exc:
            raise EvaluationError(f"arithmetic failure in {assign}: {exc}") from exc
        return out

    return step


def _compile_head(head, catalog, slots):
    sources = []
    for term in head.args:
        if isinstance(term, Variable):
            slot = slots.get(term)
            if slot is None:
                raise EvaluationError(
                    f"head variable {term} of {head} is unbound (unsafe rule?)"
                )
            sources.append(("slot", slot))
        else:
            sources.append(("const", catalog.intern(term.value)))

    if all(kind == "slot" for kind, _ in sources):
        positions = [payload for _kind, payload in sources]
        # Identity only when the head reads every slot in order — rows may
        # be wider than the head (auxiliary body variables).
        project = _row_projector(positions, len(slots))
        if project is None:
            def head_project(rows):
                return rows

            return head_project

        def head_project(rows):
            return list(map(project, rows))

        return head_project

    parts = tuple(sources)

    def head_project(rows):
        return [
            tuple(
                row[payload] if kind == "slot" else payload
                for kind, payload in parts
            )
            for row in rows
        ]

    return head_project


# --------------------------------------------------------------------------
# The fixpoint driver


class _EvalState:
    """Per-evaluation overlay over a sealed :class:`EncodedDatabase`.

    Head (IDB) predicates get unsealed working copies; everything else
    resolves to the shared sealed relation, so base indexes built for one
    query serve the next.
    """

    __slots__ = ("encoded", "catalog", "heads", "relations", "arities")

    def __init__(self, encoded, head_predicates):
        self.encoded = encoded
        self.catalog = encoded.catalog
        self.heads = set(head_predicates)
        self.relations = {}
        self.arities = {}

    def declare(self, predicate, arity):
        known = self.arities.setdefault(predicate, arity)
        if known != arity:  # pragma: no cover - Program checks arities
            raise EvaluationError(
                f"relation {predicate!r} used with arities {known} and {arity}"
            )
        self.relation(predicate)

    def relation(self, predicate):
        relation = self.relations.get(predicate)
        if relation is not None:
            return relation
        base = self.encoded.relations.get(predicate)
        arity = self.arities.get(
            predicate, base.arity if base is not None else None
        )
        if predicate in self.heads:
            relation = (
                base.fork() if base is not None else ColumnarRelation(predicate, arity)
            )
        elif base is not None:
            relation = base
        else:
            relation = ColumnarRelation(predicate, arity, sealed=True)
        self.relations[predicate] = relation
        return relation


def evaluate_columnar(program, edb, stats, tracer=None, root_span=None):
    """Evaluate *program* over *edb* with the columnar backend.

    Returns a fresh :class:`~repro.datalog.database.Database` holding the
    EDB facts plus every derived fact — the same contract (and the same
    stratified semantics) as ``Engine.evaluate``.  *stats* is the calling
    engine's :class:`EvaluationStats`, updated in place.
    """
    tracer = tracer or obs.tracer()
    encoded = encode_database(edb)
    idb = program.idb_predicates
    state = _EvalState(encoded, idb)

    derived_rules = []
    fact_rows = defaultdict(list)
    for rule in program:
        if rule.is_fact:
            fact_rows[rule.head.predicate].append(
                state.catalog.intern_row(tuple(t.value for t in rule.head.args))
            )
        else:
            derived_rules.append(rule)

    # Declare every predicate mentioned anywhere (negation over an empty
    # relation must see an empty relation, not a KeyError).
    for rule in program:
        atoms = [rule.head] + [e.atom for e in rule.body if isinstance(e, Literal)]
        for atom in atoms:
            state.declare(atom.predicate, atom.arity)
    for predicate, rows in fact_rows.items():
        state.relation(predicate).merge_run(rows)

    strata = stratify(program)
    groups = _evaluation_groups(program, strata, idb)
    stats.strata = len({strata[p] for p in idb}) if idb else 0

    for group in groups:
        rules = [r for r in derived_rules if r.head.predicate in group]
        if not rules:
            continue
        with tracer.span(
            "engine.stratum",
            stratum=max(strata[p] for p in group),
            predicates=sorted(group),
            rules=len(rules),
            backend="columnar",
        ) as span:
            _fixpoint_group(state, rules, group, stats, span)
            if span:
                span.annotate(
                    facts={p: len(state.relation(p)) for p in sorted(group)}
                )

    return _decode_result(state, program, edb, idb)


def _evaluation_groups(program, strata, idb):
    """Same grouping as the native engine (stratum, then SCC topo order)."""
    graph = DependenceGraph.of_program(program)
    components = reversed(graph.strongly_connected_components())
    groups = []
    for component in components:
        members = frozenset(p for p in component if p in idb)
        if members:
            groups.append(members)
    groups.sort(key=lambda g: max(strata[p] for p in g))
    return groups


def _fixpoint_group(state, rules, group, stats, span=obs.NULL_SPAN):
    resolve = state.relation
    catalog = state.catalog

    recursive = []  # (rule, pipelines: {delta_index: pipeline}, positions)
    init_only = []
    for rule in rules:
        schedule = schedule_body(rule)
        positions = [
            i
            for i, element in enumerate(schedule)
            if isinstance(element, Literal)
            and element.positive
            and element.predicate in group
        ]
        if positions:
            pipelines = {}
            for order, index in enumerate(positions):
                # Old/new split: recursive occurrences after this one (in
                # schedule order) read the pre-iteration state.
                old_ids = {id(schedule[j]) for j in positions[order + 1:]}
                ordered = _greedy_delta_order(schedule[index], schedule, index)
                pipelines[index] = _compile_pipeline(
                    rule, ordered, resolve, catalog, old_ids, delta_first=True
                )
            recursive.append((rule, schedule, positions, pipelines))
        else:
            pipeline = _compile_pipeline(
                rule, schedule, resolve, catalog, set(), delta_first=False
            )
            init_only.append((rule, pipeline))

    # Seed the delta with whatever the group predicates already hold.
    delta = {}
    for predicate in group:
        existing = resolve(predicate).rows
        if existing:
            delta[predicate] = list(existing)

    candidates = defaultdict(list)
    for rule, pipeline in init_only:
        stats.rule_firings += 1
        produced = pipeline.fire()
        stats.rows_produced += len(produced)
        candidates[rule.head.predicate].extend(produced)
    for predicate, rows in candidates.items():
        fresh = resolve(predicate).merge_run(rows)
        if fresh:
            stats.facts_derived += len(fresh)
            delta.setdefault(predicate, []).extend(fresh)
    if span:
        span.annotate(
            seed_delta={p: len(rows) for p, rows in sorted(delta.items()) if rows}
        )

    iteration = 0
    while delta:
        iteration += 1
        stats.iterations += 1
        old_keys = {predicate: set(rows) for predicate, rows in delta.items()}
        candidates = defaultdict(list)
        for rule, schedule, positions, pipelines in recursive:
            for index in positions:
                delta_rows = delta.get(schedule[index].predicate)
                if not delta_rows:
                    continue
                stats.rule_firings += 1
                produced = pipelines[index].fire(delta_rows, old_keys)
                stats.rows_produced += len(produced)
                if produced:
                    candidates[rule.head.predicate].extend(produced)
        new_delta = {}
        for predicate, rows in candidates.items():
            fresh = resolve(predicate).merge_run(rows)
            if fresh:
                stats.facts_derived += len(fresh)
                new_delta[predicate] = fresh
        if span:
            span.append(
                "iterations",
                {
                    "iteration": iteration,
                    "delta_in": {p: len(r) for p, r in sorted(delta.items())},
                    "derived": sum(len(rows) for rows in new_delta.values()),
                },
            )
        delta = new_delta


def _decode_result(state, program, edb, idb):
    result = edb.copy()
    # Declare every mentioned predicate, exactly as the native engine does.
    for rule in program:
        atoms = [rule.head] + [e.atom for e in rule.body if isinstance(e, Literal)]
        for atom in atoms:
            result.relation(atom.predicate, atom.arity)
    values = state.catalog.values
    for predicate in idb:
        relation = state.relations.get(predicate)
        if relation is None or not relation.rows:
            continue
        target = result.relation(predicate, relation.arity)
        rows = relation.rows
        if relation.arity == 1:
            decoded = {(values[a],) for (a,) in rows}
        elif relation.arity == 2:
            decoded = {(values[a], values[b]) for a, b in rows}
        else:
            getter = values.__getitem__
            decoded = {tuple(map(getter, row)) for row in rows}
        # Fresh copies carry no lazy indexes, so the tuple set can be
        # updated wholesale without index bookkeeping.
        missing = decoded - target._tuples
        if missing:
            target._tuples.update(missing)
            target._mutations += 1
    return result
