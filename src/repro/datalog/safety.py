"""Safety (range-restriction) checking and body-literal scheduling.

A rule is *safe* when every variable appearing in the head, in a negated
literal, or in a comparison is *limited*: bound by a positive relational
literal, by equality with a constant, or (transitively) by an arithmetic
built-in whose inputs are limited.

The same analysis yields an evaluation order for the body: positive literals
are scheduled greedily by how many of their variables are already bound,
and built-ins / negated literals run as soon as their variables are bound.
"""

from __future__ import annotations

from repro.datalog.ast import ArithmeticAssign, Comparison, Literal
from repro.datalog.terms import Constant, Variable
from repro.errors import SafetyError


def limited_variables(rule):
    """The set of variables limited by the rule body (see module docstring)."""
    limited = set()
    for element in rule.body:
        if isinstance(element, Literal) and element.positive:
            limited |= element.variables()
    # Equality with a constant limits a variable; arithmetic propagates
    # limitation from inputs to output.  Iterate to a fixpoint.
    changed = True
    while changed:
        changed = False
        for element in rule.body:
            if isinstance(element, Comparison) and element.op == "==":
                left, right = element.left, element.right
                if isinstance(left, Variable) and left not in limited:
                    if isinstance(right, Constant) or right in limited:
                        limited.add(left)
                        changed = True
                if isinstance(right, Variable) and right not in limited:
                    if isinstance(left, Constant) or left in limited:
                        limited.add(right)
                        changed = True
            elif isinstance(element, ArithmeticAssign):
                inputs = element.input_variables()
                if inputs <= limited and isinstance(element.result, Variable):
                    if element.result not in limited:
                        limited.add(element.result)
                        changed = True
    return limited


def check_rule_safety(rule):
    """Raise :class:`SafetyError` if *rule* is unsafe."""
    limited = limited_variables(rule)

    def require(variables, where):
        loose = {v for v in variables if not v.is_anonymous} - limited
        if loose:
            names = ", ".join(sorted(v.name for v in loose))
            raise SafetyError(f"unsafe rule {rule}: variable(s) {names} in {where} not limited")

    require(rule.head_variables(), "head")
    for element in rule.body:
        if isinstance(element, Literal) and element.negative:
            require(element.variables(), f"negated literal {element.atom}")
        elif isinstance(element, Comparison) and element.op != "==":
            require(element.variables(), f"comparison {element}")
        elif isinstance(element, ArithmeticAssign):
            require(element.input_variables(), f"arithmetic {element}")
    # Anonymous variables may appear in the head only if limited (they are
    # not, by definition, so reject them in heads outright).
    anonymous_in_head = {v for v in rule.head_variables() if v.is_anonymous}
    if anonymous_in_head:
        raise SafetyError(f"unsafe rule {rule}: anonymous variable in head")


def check_program_safety(program):
    """Check every rule of *program*; raises on the first unsafe rule."""
    for rule in program:
        check_rule_safety(rule)


def is_safe(rule_or_program):
    """Boolean form of the safety check."""
    try:
        if hasattr(rule_or_program, "rules"):
            check_program_safety(rule_or_program)
        else:
            check_rule_safety(rule_or_program)
    except SafetyError:
        return False
    return True


def schedule_body(rule):
    """Order the body for left-to-right evaluation with full binding info.

    Returns a list of body elements such that:

    - positive relational literals appear in a greedy most-bound-first order;
    - each built-in and negated literal appears as early as possible after
      its variables are bound.

    Raises :class:`SafetyError` when no valid schedule exists (which implies
    the rule is unsafe).
    """
    pending = list(rule.body)
    scheduled = []
    bound = set()

    def ready(element):
        if isinstance(element, Literal):
            if element.positive:
                return True
            return {v for v in element.variables() if not v.is_anonymous} <= bound
        if isinstance(element, Comparison):
            if element.op == "==":
                # Equality can bind one side from the other.
                sides = [element.left, element.right]
                unbound = [
                    s for s in sides if isinstance(s, Variable) and s not in bound
                ]
                return len(unbound) <= 1
            return element.variables() <= bound
        if isinstance(element, ArithmeticAssign):
            return element.input_variables() <= bound
        return False

    def bind(element):
        if isinstance(element, Literal) and element.positive:
            bound.update(v for v in element.variables() if not v.is_anonymous)
        elif isinstance(element, Comparison) and element.op == "==":
            bound.update(element.variables())
        elif isinstance(element, ArithmeticAssign):
            bound.update(element.variables())

    while pending:
        # Prefer non-relational elements (cheap filters) that are ready,
        # then the positive literal sharing the most bound variables.
        choice = None
        for element in pending:
            if not isinstance(element, Literal) and ready(element):
                choice = element
                break
            if isinstance(element, Literal) and element.negative and ready(element):
                choice = element
                break
        if choice is None:
            best_score = None
            for element in pending:
                if isinstance(element, Literal) and element.positive:
                    score = len(element.variables() & bound)
                    # Break ties toward fewer unbound variables.
                    score = score * 100 - len(element.variables() - bound)
                    if best_score is None or score > best_score:
                        best_score = score
                        choice = element
        if choice is None:
            names = ", ".join(str(e) for e in pending)
            raise SafetyError(f"cannot schedule body of {rule}: stuck on {names}")
        pending.remove(choice)
        scheduled.append(choice)
        bind(choice)
    return scheduled
