"""The write-ahead log: CRC32-framed records in rotated segment files.

On-disk format (all integers little-endian)::

    segment file  = record*
    record        = header payload
    header        = length:uint32  crc32(payload):uint32
    payload       = one UTF-8 JSON object (see repro.persist.serde)

Segments live in ``<data_dir>/wal/`` and are named
``wal-<first_version padded to 20 digits>.seg`` — the number is the store
version of the first record the segment holds, so recovery can order
segments lexicographically and skip whole segments already covered by a
checkpoint.  A segment is rotated once it exceeds ``segment_bytes`` (and on
every checkpoint, so fully-checkpointed segments become prunable).

Torn-write handling: :func:`scan_segment` walks records until the first
frame that is incomplete (a crash mid-``write``) or fails its CRC (a torn
sector or bit flip).  Everything before that point is returned as valid;
the byte offset of the bad frame is reported so recovery can truncate the
tail — a prefix of committed transactions is always recovered, never an
exception.

Fsync policies (:data:`FSYNC_POLICIES`):

- ``always``   — fsync after every append, inside the commit critical
  section: a commit that returned is durable.
- ``interval`` — fsync at most once per ``fsync_interval`` seconds,
  opportunistically on append (plus on rotation, checkpoint, and close):
  a crash loses at most the last interval of commits.
- ``off``      — never fsync explicitly; the OS flushes when it pleases.
"""

from __future__ import annotations

import json
import logging
import os
import struct
import time
import zlib

from repro.errors import StoreError

logger = logging.getLogger(__name__)

FSYNC_POLICIES = ("always", "interval", "off")

_HEADER = struct.Struct("<II")

#: Sanity bound on one record's payload; a longer length field means the
#: header bytes are garbage, not that someone committed a 1 GiB transaction.
MAX_RECORD_BYTES = 256 * 1024 * 1024

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"


def segment_name(first_version):
    return f"{_SEGMENT_PREFIX}{first_version:020d}{_SEGMENT_SUFFIX}"


def segment_first_version(path):
    """The ``first_version`` a segment file name encodes, or ``None``."""
    name = os.path.basename(path)
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def list_segments(wal_dir):
    """``[(first_version, path)]`` sorted by first version."""
    if not os.path.isdir(wal_dir):
        return []
    found = []
    for name in os.listdir(wal_dir):
        first = segment_first_version(name)
        if first is not None:
            found.append((first, os.path.join(wal_dir, name)))
    return sorted(found)


def select_segments(segments, start_version):
    """The suffix of *segments* that can hold records >= *start_version*.

    *segments* is ``list_segments`` output (``[(first_version, path)]``,
    sorted).  A segment named ``first`` holds versions ``first ..
    next_first - 1``, so it is skippable exactly when the *next* segment
    starts at or before *start_version* — comparing ``first`` against
    ``start_version`` directly is wrong on the boundary: when
    ``start_version`` equals a segment's ``first_version`` the previous
    segment holds nothing we need, and when ``start_version`` is one past a
    segment's last record (``next_first == start_version``) that segment
    must be skipped even though its ``first`` is smaller.
    """
    keep_from = 0
    for index in range(len(segments) - 1):
        next_first = segments[index + 1][0]
        if next_first <= start_version:
            keep_from = index + 1
        else:
            break
    return segments[keep_from:]


def iter_records(wal_dir, from_version=0):
    """Yield ``(version, payload_dict)`` for every durable record with
    ``version > from_version``, in version order.

    This is the public read path over the segment files: recovery, history
    reconstruction, and replication tailing all consume it.  Only segments
    that can contain requested versions are scanned (see
    :func:`select_segments`).  A torn or corrupt tail simply ends the
    iteration — readers always see a clean prefix, mirroring recovery.
    Raises :class:`~repro.errors.StoreError` on a version gap: the caller
    asked for history that checkpointing has already pruned (or the log is
    damaged), and silently skipping would yield a graph that never existed.
    """
    expected = from_version + 1
    for _first, path in select_segments(list_segments(wal_dir), expected):
        entries, _good_bytes, _corruption = scan_segment(path)
        for _offset, payload in entries:
            version = payload.get("version")
            if not isinstance(version, int) or version <= from_version:
                continue
            if version != expected:
                raise StoreError(
                    f"WAL history gap: expected version {expected}, found "
                    f"{version} in {path} (older records were pruned or lost)"
                )
            yield version, payload
            expected = version + 1


def frame(payload_bytes):
    """Wrap one encoded payload in the length + CRC32 header."""
    return _HEADER.pack(len(payload_bytes), zlib.crc32(payload_bytes)) + payload_bytes


def encode_record(payload):
    """JSON-encode one payload dict into framed bytes."""
    return frame(json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8"))


class WalCorruption:
    """Where and why a segment scan stopped early."""

    __slots__ = ("path", "offset", "reason")

    def __init__(self, path, offset, reason):
        self.path = path
        self.offset = offset
        self.reason = reason

    def __repr__(self):
        return f"WalCorruption({self.path!r} @ {self.offset}: {self.reason})"


def scan_segment(path):
    """Read every valid record of one segment.

    Returns ``(records, good_bytes, corruption)``: ``records`` is a list of
    ``(byte_offset, payload_dict)`` pairs for the valid prefix, ``good_bytes``
    the byte length of that prefix, and ``corruption`` a
    :class:`WalCorruption` describing the first bad frame (``None`` for a
    clean segment).  Never raises on torn or corrupt data.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            return records, offset, WalCorruption(path, offset, "torn record header")
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            return records, offset, WalCorruption(
                path, offset, f"implausible record length {length}"
            )
        start = offset + _HEADER.size
        payload = data[start : start + length]
        if len(payload) < length:
            return records, offset, WalCorruption(path, offset, "torn record payload")
        if zlib.crc32(payload) != crc:
            return records, offset, WalCorruption(path, offset, "CRC mismatch")
        try:
            decoded = json.loads(payload)
        except ValueError as exc:
            return records, offset, WalCorruption(path, offset, f"undecodable payload: {exc}")
        records.append((offset, decoded))
        offset = start + length
    return records, offset, None


def truncate_segment(path, good_bytes, corruption):
    """Cut a torn/corrupt tail off *path*, with a logged warning."""
    lost = os.path.getsize(path) - good_bytes
    logger.warning(
        "truncating torn WAL tail: %s at byte %d (%s, dropping %d bytes)",
        path,
        good_bytes,
        corruption.reason if corruption else "unknown",
        lost,
    )
    with open(path, "r+b") as handle:
        handle.truncate(good_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    fsync_directory(os.path.dirname(path))


def fsync_directory(path):
    """Flush a directory entry (creations / renames / unlinks) to disk."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


class WalWriter:
    """Appends framed records to the active segment, rotating as it grows.

    Not thread-safe by itself — the :class:`~repro.persist.manager.
    DurabilityManager` serializes access (appends already arrive in store
    commit order, under the store's commit lock).
    """

    def __init__(self, wal_dir, fsync="interval", fsync_interval=0.05, segment_bytes=16 * 1024 * 1024):
        if fsync not in FSYNC_POLICIES:
            raise StoreError(f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}")
        self.wal_dir = wal_dir
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.segment_bytes = segment_bytes
        self._handle = None
        self._segment_path = None
        self._segment_size = 0
        self._last_fsync = time.monotonic()
        self._dirty = False
        self.appended_bytes = 0
        self.append_count = 0
        self.fsync_count = 0
        self.rotations = 0

    # ------------------------------------------------------------ lifecycle

    @property
    def segment_path(self):
        return self._segment_path

    def open(self, path=None, next_version=1):
        """Open *path* for append, or start a fresh segment for *next_version*."""
        self.close()
        if path is None:
            path = os.path.join(self.wal_dir, segment_name(next_version))
        self._segment_path = path
        self._handle = open(path, "ab")
        self._segment_size = self._handle.tell()
        return self

    def rotate(self, next_version):
        """Fsync + close the active segment and start a new one."""
        if self._handle is not None:
            self.sync(force=True)
        self.open(next_version=next_version)
        fsync_directory(self.wal_dir)
        self.rotations += 1
        return self._segment_path

    def close(self):
        if self._handle is not None:
            self.sync(force=True)
            self._handle.close()
            self._handle = None

    # --------------------------------------------------------------- writes

    def append(self, payload, next_version=None):
        """Frame and append one payload dict; applies the fsync policy.

        *next_version* (the version the *following* record will carry) names
        the new segment if this append tips the current one over the
        rotation threshold.  Returns ``(bytes_written, fsync_seconds)`` —
        the fsync time is 0.0 when the policy skipped the sync.
        """
        if self._handle is None:
            raise StoreError("WAL writer is not open")
        data = encode_record(payload)
        self._handle.write(data)
        # Push to the OS page cache unconditionally: the fsync policy decides
        # when bytes hit the *disk*, but same-process readers (graph_at
        # history reconstruction) must always see every append.
        self._handle.flush()
        self._dirty = True
        self._segment_size += len(data)
        self.appended_bytes += len(data)
        self.append_count += 1
        synced = 0.0
        if self.fsync == "always":
            synced = self.sync(force=True)
        elif self.fsync == "interval":
            now = time.monotonic()
            if now - self._last_fsync >= self.fsync_interval:
                synced = self.sync(force=True)
        if next_version is not None and self._segment_size >= self.segment_bytes:
            self.rotate(next_version)
        return len(data), synced

    def sync(self, force=False):
        """Flush and fsync the active segment; returns elapsed seconds.

        With ``force=False`` this is the policy-respecting entry point (a
        no-op under ``off``); ``force=True`` always syncs — rotation,
        checkpoints, and close use it regardless of policy.
        """
        if self._handle is None or (not force and self.fsync == "off"):
            return 0.0
        if not self._dirty:
            return 0.0
        started = time.perf_counter()
        self._handle.flush()
        os.fsync(self._handle.fileno())
        elapsed = time.perf_counter() - started
        self._dirty = False
        self._last_fsync = time.monotonic()
        self.fsync_count += 1
        return elapsed
