"""``repro.persist`` — durability for the HAM store.

The paper's prototype (Section 5) runs over a purely in-memory graph; this
package makes commits crash-safe so a server can be restarted without
re-loading data from scratch:

- a CRC32-framed, length-prefixed, append-only **write-ahead log** of
  :class:`~repro.ham.store.TransactionRecord` payloads, rotated into
  segments (:mod:`repro.persist.wal`);
- periodic **checkpoints** — atomic temp-file + rename snapshots of the
  whole graph built on :func:`repro.io.graph_to_json`
  (:mod:`repro.persist.checkpoint`);
- **recovery** — load the newest valid checkpoint, replay the WAL tail,
  truncate a torn or corrupt final record instead of crashing
  (:meth:`DurabilityManager.recover`);
- a durable **replication epoch** (:mod:`repro.persist.epoch`) naming the
  directory's history line — stable across clean restarts, rotated when
  recovery truncates (history was rewritten), compared by replicas so they
  re-bootstrap instead of trusting version numbers.

Entry point::

    from repro.persist import DurabilityManager, PersistenceConfig

    manager = DurabilityManager(PersistenceConfig("data/", fsync="always"))
    store = manager.recover()        # a HAMStore, recovered and wired
    ...                              # commits are WAL-logged from here on
    manager.checkpoint()             # snapshot + prune old WAL segments
    manager.close()

See ``docs/PERSISTENCE.md`` for the on-disk format and the fsync policy
trade-offs.
"""

from repro.persist.checkpoint import (
    latest_valid_checkpoint,
    list_checkpoints,
    load_checkpoint,
    write_checkpoint,
)
from repro.persist.epoch import load_epoch, new_epoch, store_epoch
from repro.persist.manager import DurabilityManager, PersistenceConfig
from repro.persist.serde import (
    delta_from_json,
    delta_to_json,
    op_from_json,
    op_to_json,
    record_from_json,
    record_to_json,
)
from repro.persist.wal import FSYNC_POLICIES, WalCorruption, WalWriter, scan_segment

__all__ = [
    "FSYNC_POLICIES",
    "DurabilityManager",
    "PersistenceConfig",
    "WalCorruption",
    "WalWriter",
    "delta_from_json",
    "delta_to_json",
    "latest_valid_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "load_epoch",
    "new_epoch",
    "op_from_json",
    "op_to_json",
    "record_from_json",
    "record_to_json",
    "scan_segment",
    "store_epoch",
    "write_checkpoint",
]
