"""Checkpoints: atomic full-graph snapshots that bound WAL replay.

A checkpoint is one JSON document in the data directory::

    checkpoint-<version padded to 20 digits>.json
    {
      "format": "repro-checkpoint",
      "version": 1,                     # file-format version
      "store_version": 42,              # store version the snapshot captures
      "last_txn_id": 57,                # highest committed transaction id
      "graph": { ... }                  # repro.io.graph_to_json output
    }

Atomicity: the document is written to ``<name>.tmp`` in the same directory,
flushed and fsynced, then :func:`os.replace`-d onto its final name and the
directory entry fsynced — a crash at any point leaves either the old set of
checkpoints or the old set plus one complete new file, never a half-written
checkpoint under the real name.  Recovery deletes leftover ``.tmp`` files
and skips (with a logged warning) any checkpoint that fails to parse,
falling back to the next-newest one.
"""

from __future__ import annotations

import json
import logging
import os

from repro.io import SerializationError, graph_from_json, graph_to_json
from repro.persist.wal import fsync_directory

logger = logging.getLogger(__name__)

_PREFIX = "checkpoint-"
_SUFFIX = ".json"
_TMP_SUFFIX = ".tmp"

FORMAT = "repro-checkpoint"


def checkpoint_name(store_version):
    return f"{_PREFIX}{store_version:020d}{_SUFFIX}"


def checkpoint_version(path):
    """The store version a checkpoint file name encodes, or ``None``."""
    name = os.path.basename(path)
    if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
        return None
    digits = name[len(_PREFIX) : -len(_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def list_checkpoints(data_dir):
    """``[(store_version, path)]`` sorted oldest → newest."""
    if not os.path.isdir(data_dir):
        return []
    found = []
    for name in os.listdir(data_dir):
        version = checkpoint_version(name)
        if version is not None:
            found.append((version, os.path.join(data_dir, name)))
    return sorted(found)


def remove_stale_tmp(data_dir):
    """Delete half-written ``checkpoint-*.json.tmp`` leftovers.

    A crash between the temp write and the rename leaves one of these; it
    was never a durable checkpoint, so recovery removes it silently.
    """
    removed = []
    if not os.path.isdir(data_dir):
        return removed
    for name in os.listdir(data_dir):
        if name.startswith(_PREFIX) and name.endswith(_SUFFIX + _TMP_SUFFIX):
            path = os.path.join(data_dir, name)
            os.unlink(path)
            removed.append(path)
    if removed:
        logger.warning(
            "removed %d interrupted checkpoint temp file(s): %s",
            len(removed),
            ", ".join(os.path.basename(p) for p in removed),
        )
        fsync_directory(data_dir)
    return removed


def write_checkpoint(data_dir, store_version, last_txn_id, graph):
    """Atomically persist one snapshot; returns the final path."""
    document = {
        "format": FORMAT,
        "version": 1,
        "store_version": store_version,
        "last_txn_id": last_txn_id,
        "graph": graph_to_json(graph),
    }
    final = os.path.join(data_dir, checkpoint_name(store_version))
    tmp = final + _TMP_SUFFIX
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"), sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    fsync_directory(data_dir)
    return final


def load_checkpoint(path):
    """``(store_version, last_txn_id, graph)`` from one checkpoint file.

    Raises :class:`~repro.io.SerializationError` on a malformed document;
    use :func:`latest_valid_checkpoint` for the skip-and-fall-back policy.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except ValueError as exc:
        raise SerializationError(f"checkpoint {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != FORMAT:
        raise SerializationError(f"checkpoint {path} is not a {FORMAT} document")
    try:
        return (
            document["store_version"],
            document["last_txn_id"],
            graph_from_json(document["graph"]),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"checkpoint {path} is incomplete: {exc}") from exc


def latest_valid_checkpoint(data_dir):
    """Newest loadable checkpoint: ``(version, last_txn_id, graph, path)``.

    Tries newest-first; a checkpoint that fails to load is skipped with a
    logged warning (it stays on disk for forensics).  Returns ``None`` when
    no checkpoint loads.
    """
    for version, path in reversed(list_checkpoints(data_dir)):
        try:
            store_version, last_txn_id, graph = load_checkpoint(path)
        except (OSError, SerializationError) as exc:
            logger.warning("skipping unreadable checkpoint %s: %s", path, exc)
            continue
        if store_version != version:
            logger.warning(
                "skipping checkpoint %s: name says version %d, body says %d",
                path,
                version,
                store_version,
            )
            continue
        return store_version, last_txn_id, graph, path
    return None


def latest_checkpoint_document(data_dir):
    """Newest readable checkpoint as its raw JSON document:
    ``(store_version, last_txn_id, graph_json, path)``.

    Unlike :func:`latest_valid_checkpoint` the graph stays in its
    serialized :func:`~repro.io.graph_to_json` form — replication bootstrap
    ships it over the wire verbatim, so decoding it into a graph here only
    to re-encode it would double the cost.  The document is still
    format-checked and the name/body version mismatch rule applies.
    Returns ``None`` when no checkpoint is readable.
    """
    for version, path in reversed(list_checkpoints(data_dir)):
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            logger.warning("skipping unreadable checkpoint %s: %s", path, exc)
            continue
        if not isinstance(document, dict) or document.get("format") != FORMAT:
            logger.warning("skipping checkpoint %s: not a %s document", path, FORMAT)
            continue
        store_version = document.get("store_version")
        if store_version != version:
            logger.warning(
                "skipping checkpoint %s: name says version %d, body says %r",
                path,
                version,
                store_version,
            )
            continue
        if "last_txn_id" not in document or "graph" not in document:
            logger.warning("skipping incomplete checkpoint %s", path)
            continue
        return store_version, document["last_txn_id"], document["graph"], path
    return None


def remove_old_checkpoints(data_dir, keep):
    """Delete all but the newest *keep* checkpoints; returns removed paths."""
    checkpoints = list_checkpoints(data_dir)
    removed = []
    if keep < 1 or len(checkpoints) <= keep:
        return removed
    for _version, path in checkpoints[:-keep]:
        os.unlink(path)
        removed.append(path)
    fsync_directory(data_dir)
    return removed
