"""WAL payload serialization: operations, deltas, transaction records.

One committed :class:`~repro.ham.store.TransactionRecord` becomes one JSON
object carrying both representations of the commit:

- the **raw operations** — the replayable edit script recovery applies to
  rebuild the graph (the same ``_Op`` objects the store validates and
  replays in-process);
- the **typed fact-level delta** (:class:`~repro.ham.delta.Delta`) — so a
  recovered record is indistinguishable from a live one to downstream
  consumers (view maintenance, the delta-scoped result cache) without
  recomputing multiplicity-exact deltas at replay time.

Value encoding reuses the :mod:`repro.io` node/label encoders, so exactly
the values that survive a graph JSON round trip survive the WAL: strings,
ints, floats, bools, ``None``, and tuples thereof.  Exotic values are
rejected at commit time (:class:`~repro.io.SerializationError`) rather than
silently stringified into a log that would replay a different graph.
"""

from __future__ import annotations

from repro.ham.delta import Delta
from repro.ham.store import TransactionRecord, _Op
from repro.io import (
    SerializationError,
    _check_scalar,
    _decode_label,
    _decode_node,
    _encode_label,
    _encode_node,
)

# --------------------------------------------------------------- node labels


def _encode_node_label(label):
    """Node labels are ``None``, a scalar annotation, or a frozenset of
    annotation names (mirrors :func:`repro.io.graph_to_json`)."""
    if label is None:
        return None
    if isinstance(label, (set, frozenset)):
        return {"annotations": sorted(str(name) for name in label)}
    _check_scalar(label, "node label")
    return {"value": label}


def _decode_node_label(obj):
    if obj is None:
        return None
    if "annotations" in obj:
        return frozenset(obj["annotations"])
    return obj["value"]


# ---------------------------------------------------------------- operations


def op_to_json(op):
    """Encode one store operation as a JSON-compatible dict."""
    if op.kind in (_Op.ADD_NODE, _Op.SET_NODE_LABEL):
        node, label = op.args
        return {
            "kind": op.kind,
            "node": _encode_node(node),
            "label": _encode_node_label(label),
        }
    if op.kind == _Op.REMOVE_NODE:
        (node,) = op.args
        return {"kind": op.kind, "node": _encode_node(node)}
    if op.kind in (_Op.ADD_EDGE, _Op.REMOVE_EDGE):
        source, target, label = op.args
        return {
            "kind": op.kind,
            "source": _encode_node(source),
            "target": _encode_node(target),
            "label": _encode_label(label),
        }
    raise SerializationError(f"cannot serialize operation {op!r}")


def op_from_json(obj):
    """Decode :func:`op_to_json` output back into an ``_Op``."""
    kind = obj["kind"]
    if kind in (_Op.ADD_NODE, _Op.SET_NODE_LABEL):
        return _Op(kind, _decode_node(obj["node"]), _decode_node_label(obj["label"]))
    if kind == _Op.REMOVE_NODE:
        return _Op(kind, _decode_node(obj["node"]))
    if kind in (_Op.ADD_EDGE, _Op.REMOVE_EDGE):
        return _Op(
            kind,
            _decode_node(obj["source"]),
            _decode_node(obj["target"]),
            _decode_label(obj["label"]),
        )
    raise SerializationError(f"unknown operation kind {kind!r} in WAL record")


# -------------------------------------------------------------------- deltas


def _encode_rows(rows):
    return [[_encode_node(value) for value in row] for row in sorted(rows, key=repr)]


def _decode_rows(rows):
    return {tuple(_decode_node(value) for value in row) for row in rows}


def delta_to_json(delta):
    """Encode a typed :class:`~repro.ham.delta.Delta` as a JSON dict."""
    return {
        "insertions": {p: _encode_rows(rows) for p, rows in sorted(delta.insertions.items())},
        "deletions": {p: _encode_rows(rows) for p, rows in sorted(delta.deletions.items())},
        "nodes_added": [_encode_node(n) for n in sorted(delta.nodes_added, key=repr)],
        "nodes_removed": [_encode_node(n) for n in sorted(delta.nodes_removed, key=repr)],
    }


def delta_from_json(obj):
    """Decode :func:`delta_to_json` output back into a :class:`Delta`."""
    delta = Delta()
    for predicate, rows in obj["insertions"].items():
        delta.insertions[predicate] = _decode_rows(rows)
    for predicate, rows in obj["deletions"].items():
        delta.deletions[predicate] = _decode_rows(rows)
    delta.nodes_added = {_decode_node(n) for n in obj["nodes_added"]}
    delta.nodes_removed = {_decode_node(n) for n in obj["nodes_removed"]}
    return delta


# ------------------------------------------------------------------- records


def record_to_json(record):
    """Encode one committed transaction as the WAL payload dict."""
    return {
        "txn": record.txn_id,
        "session": record.session_id,
        "version": record.version,
        "ops": [op_to_json(op) for op in record.operations],
        "delta": None if record.delta is None else delta_to_json(record.delta),
    }


def record_from_json(obj):
    """Decode a WAL payload dict back into a :class:`TransactionRecord`."""
    delta = obj.get("delta")
    return TransactionRecord(
        obj["txn"],
        obj["session"],
        [op_from_json(op) for op in obj["ops"]],
        version=obj["version"],
        delta=None if delta is None else delta_from_json(delta),
    )
