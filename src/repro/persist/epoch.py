"""The durable replication epoch: one small JSON file in the data dir.

The epoch names the *history line* a data directory holds.  It is created
once when a directory is first used, survives clean restarts unchanged, and
is **rotated** whenever recovery rewrites history — i.e. when a torn or
corrupt WAL tail is truncated, because acknowledged-but-unsynced commits
may have been lost and the primary will re-commit *different* data back to
the same version numbers.  Replicas compare the epoch on every tail
response and re-bootstrap on change instead of trusting version arithmetic
(see ``docs/REPLICATION.md``).

On-disk format::

    epoch.json
    {"format": "repro-epoch", "epoch": "9f2c41d0a7e85b13"}

The write is atomic (temp file + fsync + rename + directory fsync), the
same discipline checkpoints use: a crash leaves either the old epoch or the
new one, never a torn file.  An unreadable epoch file is treated like a
missing one — a fresh epoch is minted, which errs on the side of forcing
replicas to re-bootstrap rather than letting them trust a history line we
cannot name.
"""

from __future__ import annotations

import json
import logging
import os

from repro.ham.store import new_epoch
from repro.persist.wal import fsync_directory

logger = logging.getLogger(__name__)

FORMAT = "repro-epoch"

EPOCH_FILENAME = "epoch.json"


def epoch_path(data_dir):
    return os.path.join(data_dir, EPOCH_FILENAME)


def load_epoch(data_dir):
    """The persisted epoch id, or ``None`` when absent or unreadable."""
    path = epoch_path(data_dir)
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        logger.warning("ignoring unreadable epoch file %s: %s", path, exc)
        return None
    if not isinstance(document, dict) or document.get("format") != FORMAT:
        logger.warning("ignoring %s: not a %s document", path, FORMAT)
        return None
    epoch = document.get("epoch")
    if not isinstance(epoch, str) or not epoch:
        logger.warning("ignoring %s: missing epoch id", path)
        return None
    return epoch


def store_epoch(data_dir, epoch):
    """Atomically persist *epoch* to ``data_dir``; returns the final path."""
    final = epoch_path(data_dir)
    tmp = final + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump({"format": FORMAT, "epoch": str(epoch)}, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    fsync_directory(data_dir)
    return final


__all__ = ["EPOCH_FILENAME", "epoch_path", "load_epoch", "new_epoch", "store_epoch"]
