"""The durability manager: WAL + checkpoints + recovery, bound to one store.

Division of labor with :class:`~repro.ham.store.HAMStore`:

- the store owns commit validation, versioning, and subscriber dispatch;
- the manager owns everything that touches disk.  The store calls
  :meth:`DurabilityManager.log_commit` *inside its commit critical section*
  — before the in-memory graph and version are updated — so the WAL is
  version-ordered and a failed append aborts the commit cleanly (the store
  state is untouched).  With ``fsync="always"`` the fsync happens in that
  same critical section: once ``commit()`` returns, the transaction is on
  disk.

Lock order is ``store._lock → manager._io_lock`` and never the reverse:
``log_commit`` arrives holding the store lock and takes the I/O lock;
``checkpoint()`` snapshots the store (acquiring and releasing the store
lock) *before* touching the I/O lock.
"""

from __future__ import annotations

import logging
import os
import threading
import time

from repro import obs
from repro.errors import StoreError
from repro.graphs.multigraph import LabeledMultigraph
from repro.persist import checkpoint as ckpt
from repro.persist import wal
from repro.persist.epoch import load_epoch, new_epoch, store_epoch
from repro.persist.serde import record_from_json, record_to_json

logger = logging.getLogger(__name__)


class PersistenceConfig:
    """Tunables for one durable data directory."""

    __slots__ = (
        "data_dir",
        "fsync",
        "fsync_interval",
        "segment_bytes",
        "checkpoint_every",
        "keep_checkpoints",
    )

    def __init__(
        self,
        data_dir,
        fsync="interval",
        fsync_interval=0.05,
        segment_bytes=16 * 1024 * 1024,
        checkpoint_every=0,
        keep_checkpoints=2,
    ):
        if fsync not in wal.FSYNC_POLICIES:
            raise StoreError(
                f"fsync policy must be one of {wal.FSYNC_POLICIES}, got {fsync!r}"
            )
        if keep_checkpoints < 1:
            raise StoreError("keep_checkpoints must be >= 1")
        self.data_dir = data_dir
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.segment_bytes = segment_bytes
        #: Auto-checkpoint after this many commits (0 = manual only).
        self.checkpoint_every = checkpoint_every
        self.keep_checkpoints = keep_checkpoints


class DurabilityManager:
    """Owns one data directory; makes one :class:`HAMStore` crash-safe."""

    def __init__(self, config, metrics=None):
        if isinstance(config, str):
            config = PersistenceConfig(config)
        self.config = config
        self.data_dir = config.data_dir
        self.wal_dir = os.path.join(config.data_dir, "wal")
        self.metrics = metrics
        self._store = None
        self._writer = None
        self._io_lock = threading.Lock()
        self._checkpoint_lock = threading.Lock()
        self._last_version = 0
        self._last_txn_id = 0
        self._last_checkpoint_version = 0
        self._checkpoint_count = 0
        self._commits_since_checkpoint = 0
        self._recovery_info = None
        self._epoch = None
        self._closed = False

    @property
    def epoch(self):
        """The durable replication epoch (``None`` before :meth:`recover`)."""
        return self._epoch

    # ------------------------------------------------------------- recovery

    def recover(self, store=None):
        """Open the data directory and return a recovered, wired store.

        Loads the newest valid checkpoint, replays the WAL tail on top of
        it, truncates a torn or corrupt final record (with a logged
        warning), and attaches this manager to the store so every later
        commit is WAL-logged.  *store*, when given, must be fresh (version
        0) — unless the data directory is empty, in which case a non-empty
        store is *adopted*: its current state becomes the first checkpoint.
        """
        if self._store is not None:
            raise StoreError("durability manager is already bound to a store")
        from repro.ham.store import HAMStore

        os.makedirs(self.wal_dir, exist_ok=True)
        started = time.perf_counter()
        with obs.span("persist.recover", data_dir=self.data_dir) as span:
            ckpt.remove_stale_tmp(self.data_dir)
            segments = wal.list_segments(self.wal_dir)

            with obs.span("persist.recover.load_checkpoint") as cp_span:
                loaded = ckpt.latest_valid_checkpoint(self.data_dir)
                if loaded is None:
                    base_version, last_txn_id = 0, 0
                    base_graph = LabeledMultigraph()
                    checkpoint_path = None
                else:
                    base_version, last_txn_id, base_graph, checkpoint_path = loaded
                if cp_span:
                    cp_span.annotate(path=checkpoint_path, version=base_version)

            disk_empty = loaded is None and not any(
                os.path.getsize(path) for _first, path in segments
            )
            if store is None:
                store = HAMStore()
            elif store.version != 0:
                if not disk_empty:
                    raise StoreError(
                        "cannot recover into a non-empty store: the data "
                        f"directory {self.data_dir!r} already holds state"
                    )
                return self._adopt(store)

            graph = base_graph.copy()
            with obs.span("persist.recover.replay_wal") as replay_span:
                records, truncated = self._replay_segments(
                    segments, graph, base_version
                )
                if replay_span:
                    replay_span.annotate(replayed=len(records), truncated=truncated)

            version = records[-1].version if records else base_version
            if records:
                last_txn_id = max(last_txn_id, max(r.txn_id for r in records))
            # The durable epoch names this directory's history line.  It is
            # minted on first use and kept across clean restarts — but a
            # truncated WAL tail means acknowledged commits may be gone and
            # the versions they held will be re-issued with different data,
            # so the epoch rotates and tailing replicas re-bootstrap instead
            # of trusting version numbers.
            previous_epoch = load_epoch(self.data_dir)
            epoch = previous_epoch if previous_epoch and not truncated else new_epoch()
            if epoch != previous_epoch:
                store_epoch(self.data_dir, epoch)
                if previous_epoch is not None:
                    logger.warning(
                        "WAL truncation rewrote history; epoch rotated %s -> %s",
                        previous_epoch,
                        epoch,
                    )
            self._epoch = epoch
            store.restore_state(
                graph,
                version,
                last_txn_id,
                records=records,
                base_graph=base_graph,
                base_version=base_version,
                epoch=epoch,
            )
            self._open_writer(segments, next_version=version + 1)
            self._last_version = version
            self._last_txn_id = last_txn_id
            self._last_checkpoint_version = base_version
            self._store = store
            store.attach_durability(self)
            self._recovery_info = {
                "checkpoint_version": base_version,
                "checkpoint_path": checkpoint_path,
                "replayed_records": len(records),
                "recovered_version": version,
                "truncated": truncated,
                "epoch": epoch,
                "epoch_rotated": previous_epoch is not None and epoch != previous_epoch,
                "elapsed_ms": round((time.perf_counter() - started) * 1000.0, 3),
            }
            if span:
                span.annotate(**self._recovery_info)
        logger.info(
            "recovered store at version %d (checkpoint %d + %d WAL records) from %s",
            version,
            base_version,
            len(records),
            self.data_dir,
        )
        return store

    def _adopt(self, store):
        """Bind a pre-populated in-memory store to an empty data directory.

        Its current state becomes checkpoint #1; history before adoption is
        not durable (the WAL starts after the checkpoint).
        """
        version, _graph, last_txn_id = store._durable_snapshot()
        self._open_writer([], next_version=version + 1)
        self._last_version = version
        self._last_txn_id = last_txn_id
        self._store = store
        store.attach_durability(self)
        # The adopted store already carries an epoch (minted at
        # construction); it becomes the directory's durable epoch.
        self._epoch = store.epoch
        store_epoch(self.data_dir, self._epoch)
        self._recovery_info = {
            "checkpoint_version": 0,
            "checkpoint_path": None,
            "replayed_records": 0,
            "recovered_version": version,
            "truncated": False,
            "epoch": self._epoch,
            "epoch_rotated": False,
            "adopted": True,
            "elapsed_ms": 0.0,
        }
        self.checkpoint()
        return store

    def _replay_segments(self, segments, graph, base_version):
        """Apply every WAL record after *base_version* to *graph*.

        Returns ``(records, truncated)``.  Stops at — and truncates — the
        first torn frame, CRC failure, version gap, or record whose
        operations fail to replay; later segments after a truncation point
        are unlinked (they are beyond the lost suffix and would otherwise
        re-surface records after a gap).
        """
        replayed = []
        expected = base_version + 1
        truncated = False
        for index, (_first, path) in enumerate(segments):
            entries, good_bytes, corruption = wal.scan_segment(path)
            stop_offset = None
            reason = None
            for offset, payload in entries:
                try:
                    record = record_from_json(payload)
                except Exception as exc:  # noqa: BLE001 — schema drift must truncate, not crash
                    stop_offset, reason = offset, f"undecodable record: {exc}"
                    break
                if record.version < expected:
                    continue  # already covered by the checkpoint
                if record.version > expected:
                    stop_offset = offset
                    reason = (
                        f"version gap: expected {expected}, found {record.version}"
                    )
                    break
                try:
                    for op in record.operations:
                        op.apply(graph)
                except StoreError as exc:
                    stop_offset, reason = offset, f"unreplayable record: {exc}"
                    break
                replayed.append(record)
                expected += 1
            if stop_offset is None and corruption is not None:
                stop_offset, reason = good_bytes, corruption.reason
            if stop_offset is not None:
                wal.truncate_segment(
                    path, stop_offset, wal.WalCorruption(path, stop_offset, reason)
                )
                for _later_first, later_path in segments[index + 1 :]:
                    logger.warning(
                        "dropping WAL segment beyond truncation point: %s", later_path
                    )
                    os.unlink(later_path)
                wal.fsync_directory(self.wal_dir)
                truncated = True
                break
        return replayed, truncated

    def _open_writer(self, segments, next_version):
        self._writer = wal.WalWriter(
            self.wal_dir,
            fsync=self.config.fsync,
            fsync_interval=self.config.fsync_interval,
            segment_bytes=self.config.segment_bytes,
        )
        # Reopen the surviving tail segment for append; start fresh if none.
        tail = None
        for _first, path in reversed(segments):
            if os.path.exists(path):
                tail = path
                break
        if tail is not None:
            self._writer.open(path=tail)
        else:
            self._writer.open(next_version=next_version)
            wal.fsync_directory(self.wal_dir)

    # ------------------------------------------------------------- logging

    def log_commit(self, record):
        """Append one commit to the WAL (called inside the store's commit
        critical section, before in-memory state is updated).

        Raising here aborts the commit — the store applies nothing.
        """
        if self._closed:
            raise StoreError("durability manager is closed")
        with obs.span("persist.wal_append", version=record.version) as span:
            payload = record_to_json(record)
            with self._io_lock:
                nbytes, fsync_seconds = self._writer.append(
                    payload, next_version=record.version + 1
                )
                self._last_version = record.version
                self._last_txn_id = record.txn_id
            self._commits_since_checkpoint += 1
            if span:
                span.annotate(bytes=nbytes, fsync_ms=round(fsync_seconds * 1000.0, 3))
        if self.metrics is not None:
            self.metrics.incr("persist.wal_appends")
            self.metrics.incr("persist.wal_bytes", nbytes)
            if fsync_seconds:
                self.metrics.observe_phase("wal.fsync", fsync_seconds)

    def maybe_checkpoint(self):
        """Auto-checkpoint when ``checkpoint_every`` commits have landed.

        Called by the store *after* releasing its commit lock; skips
        silently if another thread is already checkpointing.
        """
        every = self.config.checkpoint_every
        if not every or self._commits_since_checkpoint < every:
            return None
        if not self._checkpoint_lock.acquire(blocking=False):
            return None
        try:
            return self._checkpoint_locked()
        finally:
            self._checkpoint_lock.release()

    # ---------------------------------------------------------- checkpoints

    def checkpoint(self):
        """Snapshot the current graph and prune fully-covered WAL segments."""
        with self._checkpoint_lock:
            return self._checkpoint_locked()

    def _checkpoint_locked(self):
        if self._closed:
            raise StoreError("durability manager is closed")
        if self._store is None:
            raise StoreError("durability manager is not bound to a store")
        started = time.perf_counter()
        version, graph, last_txn_id = self._store._durable_snapshot()
        with obs.span("persist.checkpoint", version=version) as span:
            if version == self._last_checkpoint_version and version != 0:
                return {
                    "version": version,
                    "path": os.path.join(self.data_dir, ckpt.checkpoint_name(version)),
                    "skipped": True,
                    "elapsed_ms": 0.0,
                }
            with self._io_lock:
                # The WAL must be durable up to the snapshot before the
                # checkpoint claims that state, and the rotation makes the
                # now-covered segment prunable.
                self._writer.sync(force=True)
                path = ckpt.write_checkpoint(self.data_dir, version, last_txn_id, graph)
                self._writer.rotate(next_version=self._last_version + 1)
            removed_checkpoints = ckpt.remove_old_checkpoints(
                self.data_dir, self.config.keep_checkpoints
            )
            removed_segments = self._prune_segments()
            self._last_checkpoint_version = version
            self._checkpoint_count += 1
            self._commits_since_checkpoint = 0
            elapsed_ms = round((time.perf_counter() - started) * 1000.0, 3)
            if span:
                span.annotate(
                    path=path,
                    segments_removed=len(removed_segments),
                    elapsed_ms=elapsed_ms,
                )
        if self.metrics is not None:
            self.metrics.incr("persist.checkpoints")
            self.metrics.observe_phase("persist.checkpoint", elapsed_ms / 1000.0)
        logger.info("checkpoint at version %d -> %s (%.1fms)", version, path, elapsed_ms)
        return {
            "version": version,
            "path": path,
            "checkpoints_removed": len(removed_checkpoints),
            "segments_removed": len(removed_segments),
            "elapsed_ms": elapsed_ms,
        }

    def _prune_segments(self):
        """Unlink WAL segments every retained checkpoint has superseded.

        A segment is prunable when the *next* segment starts at or before
        ``oldest retained checkpoint version + 1`` — i.e. every record it
        holds is ≤ that version — so any retained checkpoint can still be
        the base for :meth:`graph_at` or a fallback recovery.
        """
        checkpoints = ckpt.list_checkpoints(self.data_dir)
        if not checkpoints:
            return []
        horizon = checkpoints[0][0]
        removed = []
        with self._io_lock:
            segments = wal.list_segments(self.wal_dir)
            for (first, path), (next_first, _next_path) in zip(segments, segments[1:]):
                if path == self._writer.segment_path:
                    break
                if next_first <= horizon + 1:
                    os.unlink(path)
                    removed.append(path)
                else:
                    break
        if removed:
            wal.fsync_directory(self.wal_dir)
        return removed

    # ------------------------------------------------------------- history

    def graph_at(self, version):
        """Reconstruct the graph at *version* from checkpoints + the WAL.

        Used by :meth:`HAMStore.graph_at` for versions older than the
        in-memory log retains.  Starts from the newest checkpoint at or
        before *version* and replays forward; read-only (a torn live tail
        simply stops the scan).
        """
        base_version, graph = 0, LabeledMultigraph()
        for cp_version, path in reversed(ckpt.list_checkpoints(self.data_dir)):
            if cp_version > version:
                continue
            try:
                base_version, _txn, graph = ckpt.load_checkpoint(path)
                break
            except Exception as exc:  # noqa: BLE001 — fall back to an older base
                logger.warning("graph_at(%d): skipping checkpoint %s: %s", version, path, exc)
        current = base_version
        if current > version:  # pragma: no cover - guarded by the filter above
            raise StoreError(f"no checkpoint at or before version {version}")
        if current == version:
            return graph
        try:
            for record_version, payload in wal.iter_records(self.wal_dir, current):
                record = record_from_json(payload)
                for op in record.operations:
                    op.apply(graph)
                current = record_version
                if current == version:
                    return graph
        except StoreError as exc:
            raise StoreError(
                f"cannot reconstruct version {version}: {exc} (older segments "
                "were pruned by checkpointing)"
            ) from exc
        raise StoreError(
            f"cannot reconstruct version {version}: durable history ends at {current}"
        )

    # -------------------------------------------------------------- export

    def stats(self):
        """A JSON-ready summary of the durable state."""
        writer = self._writer
        with self._io_lock:
            segments = wal.list_segments(self.wal_dir)
            snapshot = {
                "data_dir": self.data_dir,
                "fsync": self.config.fsync,
                "epoch": self._epoch,
                "wal": {
                    "segments": len(segments),
                    "active_segment": (
                        os.path.basename(writer.segment_path)
                        if writer and writer.segment_path
                        else None
                    ),
                    "appends": writer.append_count if writer else 0,
                    "bytes": writer.appended_bytes if writer else 0,
                    "fsyncs": writer.fsync_count if writer else 0,
                    "rotations": writer.rotations if writer else 0,
                },
                "checkpoint": {
                    "last_version": self._last_checkpoint_version,
                    "count": self._checkpoint_count,
                    "auto_every": self.config.checkpoint_every,
                    "retained": len(ckpt.list_checkpoints(self.data_dir)),
                },
                "recovery": self._recovery_info,
            }
        if self.metrics is not None:
            self.metrics.set_counter("persist.wal_segments", snapshot["wal"]["segments"])
            self.metrics.set_counter(
                "persist.last_checkpoint_version", self._last_checkpoint_version
            )
        return snapshot

    def health_info(self):
        """A cheap health document for ``/healthz`` — no disk I/O.

        ``ok`` is ``False`` when the manager is closed (writes would fail)
        or recovery had to truncate a torn/corrupt WAL tail (acknowledged
        commits may have been lost; an operator should know).
        """
        recovery = self._recovery_info or {}
        truncated = bool(recovery.get("truncated"))
        return {
            "attached": self._store is not None,
            "closed": self._closed,
            "ok": not self._closed and not truncated,
            "fsync": self.config.fsync,
            "epoch": self._epoch,
            "last_checkpoint_version": self._last_checkpoint_version,
            "recovery": recovery,
        }

    def close(self):
        """Fsync and close the WAL; detach from the store."""
        if self._closed:
            return
        self._closed = True
        with self._io_lock:
            if self._writer is not None:
                self._writer.close()
        if self._store is not None:
            self._store.detach_durability()
            self._store = None
