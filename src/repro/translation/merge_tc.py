"""Merging independent transitive closures into one (Theorem 3.4 flavour).

Section 3 observes that with constants and an order relation, stratified
linear programs "collapse into equivalent programs with only one application
of transitive closure".  The general construction simulates evaluation
*stages* inside a single closure using the order — out of scope here (we
cite it).  This module implements the unconditional special case, which is
also the workhorse of the general one: **independent** TC pairs (no pair's
base depends on another pair's closure) merge into a single TC by
disjoint-union tagging:

- every base relation ``e_i`` (arity 2·n_i) feeds one wide edge relation
  ``E`` with its tuples padded to a common width and *tagged* with a
  per-closure signature constant on both sides;
- ``T`` is the transitive closure of ``E``; because every ``e_i`` edge
  carries its own tag on both endpoints, paths can never cross from one
  component into another, so ``T`` restricted to tag ``s_i`` is exactly the
  closure of ``e_i``;
- each original predicate is read back by selecting its tag.

The result has exactly **one** TC pair regardless of how many the input had.
"""

from __future__ import annotations

from repro.datalog.ast import Atom, Literal, Program, Rule
from repro.datalog.classify import tc_base_predicates
from repro.datalog.stratify import DependenceGraph, stratify
from repro.datalog.terms import Constant, Sentinel, Variable
from repro.errors import TranslationError


class MergeResult:
    """Outcome of :func:`merge_independent_closures`."""

    def __init__(self, program, merged, skipped, edge_predicate, closure_predicate):
        self.program = program
        self.merged = merged  # predicates whose TC pairs were merged
        self.skipped = skipped  # recursive predicates left alone (dependent)
        self.edge_predicate = edge_predicate
        self.closure_predicate = closure_predicate

    def __repr__(self):
        return (
            f"MergeResult(merged={sorted(self.merged)}, "
            f"skipped={sorted(self.skipped)})"
        )


def count_tc_pairs(program):
    """How many TC rule pairs the program contains."""
    return len(tc_base_predicates(program))


def merge_independent_closures(program):
    """Merge every *independent* TC pair of an STC program into one.

    A TC predicate is independent when its base does not (transitively)
    depend on any other TC predicate.  Dependent (stacked) closures are kept
    as-is and reported in ``skipped`` — collapsing those needs the ordered-
    domain staging construction of Theorem 3.4.

    Raises :class:`TranslationError` when the program has recursion that is
    not TC-shaped (run Algorithm 3.1 first).
    """
    stratify(program)
    bases = tc_base_predicates(program)
    from repro.datalog.classify import recursive_predicates

    not_tc = recursive_predicates(program) - set(bases)
    if not_tc:
        names = ", ".join(sorted(not_tc))
        raise TranslationError(
            f"predicates {names} are recursive but not TC pairs; run sl_to_stc first"
        )
    if len(bases) <= 1:
        return MergeResult(program, set(), set(bases), None, None)

    graph = DependenceGraph.of_program(program)

    def depends_on_tc(predicate, seen=None):
        seen = seen if seen is not None else set()
        for dependency in graph.dependencies(predicate):
            if dependency in seen:
                continue
            seen.add(dependency)
            if dependency in bases:
                return True
            if depends_on_tc(dependency, seen):
                return True
        return False

    mergeable = {
        predicate: base
        for predicate, base in bases.items()
        if not depends_on_tc(base)
    }
    skipped = set(bases) - set(mergeable)
    if len(mergeable) <= 1:
        return MergeResult(program, set(), set(bases), None, None)

    used = set(program.predicates)
    edge_name = _fresh(used, "merged-e")
    closure_name = _fresh(used, "merged-t")

    half = max(program.arity_of(p) // 2 for p in mergeable)
    side = half + 1  # + the tag position
    tags = {predicate: Constant(Sentinel(f"tag:{predicate}")) for predicate in mergeable}
    pad = Constant(Sentinel("pad"))

    rules = []
    for rule in program:
        if rule.head.predicate in mergeable:
            continue  # the TC pair is replaced
        rules.append(rule)

    def padded(terms, tag):
        terms = tuple(terms)
        return terms + (pad,) * (half - len(terms)) + (tag,)

    for predicate, base in sorted(mergeable.items()):
        n = program.arity_of(predicate) // 2
        xs = tuple(Variable(f"X{i+1}") for i in range(n))
        ys = tuple(Variable(f"Y{i+1}") for i in range(n))
        tag = tags[predicate]
        rules.append(
            Rule(
                Atom(edge_name, padded(xs, tag) + padded(ys, tag)),
                (Literal(Atom(base, xs + ys)),),
            )
        )

    us = tuple(Variable(f"U{i+1}") for i in range(side))
    vs = tuple(Variable(f"V{i+1}") for i in range(side))
    ws = tuple(Variable(f"W{i+1}") for i in range(side))
    t_head = Atom(closure_name, us + vs)
    rules.append(Rule(t_head, (Literal(Atom(edge_name, us + vs)),)))
    rules.append(
        Rule(
            t_head,
            (
                Literal(Atom(edge_name, us + ws)),
                Literal(Atom(closure_name, ws + vs)),
            ),
        )
    )

    for predicate in sorted(mergeable):
        n = program.arity_of(predicate) // 2
        xs = tuple(Variable(f"X{i+1}") for i in range(n))
        ys = tuple(Variable(f"Y{i+1}") for i in range(n))
        tag = tags[predicate]
        rules.append(
            Rule(
                Atom(predicate, xs + ys),
                (Literal(Atom(closure_name, padded(xs, tag) + padded(ys, tag))),),
            )
        )

    return MergeResult(
        Program(rules), set(mergeable), skipped, edge_name, closure_name
    )


def _fresh(used, base):
    if base not in used:
        used.add(base)
        return base
    index = 1
    while f"{base}{index}" in used:
        index += 1
    used.add(f"{base}{index}")
    return f"{base}{index}"
