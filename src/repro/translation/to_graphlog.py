"""STC-DATALOG -> GraphLog: the converse direction of Lemma 3.4.

Lemma 3.4 sandwiches GraphLog between STC-DATALOG and SL-DATALOG; Algorithm
3.1 closes the circle.  This module makes the ``TC = STC-DATALOG ⊆
GRAPHLOG`` inclusion executable: every stratified TC Datalog program becomes
a graphical query —

- a TC rule pair for ``p`` with base ``p0`` (arity 2n) becomes one query
  graph whose only pattern edge is the closure literal ``p0+`` between two
  n-term nodes;
- every other rule becomes a query graph with one edge per body literal
  (first argument -> second argument, remaining arguments as edge label
  arguments; unary literals become node annotations) and the head as the
  distinguished edge.

Composed with λ and Algorithm 3.1 this yields a full round trip

    GraphLog --λ--> SL-DATALOG --Alg 3.1--> STC-DATALOG --this--> GraphLog

that preserves answers (tested in ``tests/test_to_graphlog.py`` and
exercised by the thm33 benchmark family).

Shape restrictions (inherent to the edge reading of Definition 2.4):
head and body literals need arity ≥ 1; heads of arity 1 are expressed as a
loop edge defining the *diagonal* relation, so the caller must read unary
answers off the diagonal (helper :func:`diagonal_projection` provided).
"""

from __future__ import annotations

from repro.core.pre import Closure, Pred
from repro.core.query_graph import GraphicalQuery, QueryGraph
from repro.datalog.ast import Comparison, Literal
from repro.datalog.classify import recursive_predicates, tc_base_predicates
from repro.datalog.stratify import stratify
from repro.datalog.terms import FreshVariables, Variable
from repro.errors import TranslationError


def graphlog_from_stc(program, name=None):
    """Convert an STC-DATALOG program into an equivalent GraphicalQuery.

    Raises :class:`TranslationError` when the program is not STC-shaped
    (run Algorithm 3.1 first) or contains arity-0 literals / arithmetic.
    Unary head predicates are encoded as diagonal loop relations named
    ``<pred>``; read them back with :func:`diagonal_projection`.
    """
    stratify(program)
    recursive = recursive_predicates(program)
    bases = tc_base_predicates(program)
    missing = recursive - set(bases)
    if missing:
        names = ", ".join(sorted(missing))
        raise TranslationError(
            f"predicates {names} are recursive but not TC pairs; run sl_to_stc first"
        )

    # Unary IDB heads are encoded as binary diagonal (loop) relations, so
    # body usages of those predicates must become loop edges, not unary
    # annotations.  Compute the set upfront for consistency.
    unary_heads = {
        predicate
        for predicate in program.idb_predicates
        if program.arity_of(predicate) == 1
    }

    graphs = []
    for rule in program:
        if rule.head.predicate in bases:
            continue  # handled as one closure graph per TC predicate below
        if rule.is_fact:
            raise TranslationError(
                f"ground fact {rule} cannot be drawn as a pattern; move facts "
                f"into the extensional database"
            )
        graphs.append(_rule_to_graph(rule, unary_heads))

    for predicate, base in sorted(bases.items()):
        graphs.append(_tc_pair_to_graph(program, predicate, base))

    query = GraphicalQuery(graphs, name=name)
    query.validate()
    return query, unary_heads


def diagonal_projection(result, predicate):
    """Read a unary predicate encoded as a loop relation: {x | (x, x)}."""
    return {row[0] for row in result.facts(predicate) if row[0] == row[1]}


def _rule_to_graph(rule, unary_heads):
    """One non-TC rule as a query graph (see module docstring)."""
    graph = QueryGraph()
    fresh = FreshVariables(rule.variables(), prefix="C")
    for element in rule.body:
        if isinstance(element, Comparison):
            _comparison_edge(graph, element, fresh)
            continue
        if not isinstance(element, Literal):
            raise TranslationError(
                f"cannot express body element {element} as a query-graph edge"
            )
        args = element.atom.args
        if len(args) == 0:
            raise TranslationError(
                f"arity-0 literal {element} has no edge reading"
            )
        if len(args) == 1:
            term = _nodeterm(args[0], fresh, graph)
            if element.predicate in unary_heads:
                # Defined as a diagonal loop relation: use a loop edge.
                label = Pred(element.predicate)
                pre = label if element.positive else ~label
                graph.edge((term,), (term,), pre)
            else:
                graph.annotate(
                    (term,), element.predicate, positive=element.positive
                )
            continue
        source = (_nodeterm(args[0], fresh, graph),)
        target = (_nodeterm(args[1], fresh, graph),)
        label = Pred(element.predicate, args[2:])
        pre = label if element.positive else ~label
        graph.edge(source, target, pre)

    head = rule.head
    if head.arity == 0:
        raise TranslationError(f"arity-0 head {head} has no edge reading")
    if head.arity == 1:
        term = head.args[0]
        graph.distinguished((term,), (term,), head.predicate)
    else:
        graph.distinguished(
            (head.args[0],), (head.args[1],), head.predicate, extra=head.args[2:]
        )
    return graph


def _nodeterm(term, fresh, graph):
    """Anonymous variables cannot label query-graph nodes; rename fresh."""
    if isinstance(term, Variable) and term.is_anonymous:
        return fresh.fresh(hint="Anon")
    return term


def _comparison_edge(graph, comparison, fresh):
    from repro.core.pre import ComparisonPrimitive, Equality, Inequality

    label_by_op = {
        "==": Equality(),
        "!=": Inequality(),
        "<": ComparisonPrimitive("<"),
        "<=": ComparisonPrimitive("<="),
        ">": ComparisonPrimitive(">"),
        ">=": ComparisonPrimitive(">="),
    }
    graph.edge((comparison.left,), (comparison.right,), label_by_op[comparison.op])


def _tc_pair_to_graph(program, predicate, base):
    arity = program.arity_of(predicate)
    half = arity // 2
    xs = tuple(Variable(f"X{i+1}") for i in range(half))
    ys = tuple(Variable(f"Y{i+1}") for i in range(half))
    graph = QueryGraph()
    graph.edge(xs, ys, Closure(Pred(base)))
    graph.distinguished(xs, ys, predicate)
    return graph
