"""Algorithm 3.1: translate SL-DATALOG into STC-DATALOG (Figure 7).

Given a stratified *linear* Datalog program, produce an equivalent
stratified *TC* Datalog program: one in which every recursive predicate is
defined by exactly the two transitive-closure rules of Definition 3.2.

For each recursive strongly connected component ``S_l`` of the dependence
graph (with predicates ``p_1..p_n`` of maximum arity ``m``) the algorithm
introduces an edge predicate ``e_l`` and a closure predicate ``t_l`` of
arity ``2*(m+1)`` and uses *signature constants*: a start marker ``c`` and
one marker ``c_i`` per predicate, padding every tuple to width ``m+1`` so
that tuples of different member predicates share ``e_l`` without colliding.

- a recursive rule  ``p_i(X̄) :- p_j(Ȳ), s_1..s_k``  becomes the edge rule
  ``e_l(Ȳ, c_j^{m-n_j+1}, X̄, c_i^{m-n_i+1}) :- s_1..s_k``;
- a non-recursive rule  ``p_i(X̄) :- s_1..s_k``  becomes
  ``e_l(c^{m+1}, X̄, c_i^{m-n_i+1}) :- s_1..s_k``  (an edge out of the start
  node, as in Figure 9 where the start node is ``(c,c,c)``);
- ``t_l`` is the transitive closure of ``e_l`` (the TC rule pair);
- each member predicate is read back by
  ``p_i(X̄) :- t_l(c^{m+1}, X̄, c_i^{m-n_i+1})``.

Executable-bottom-up deviation from the paper: a variable of the original
rule that occurs *only* in the removed recursive subgoal and the head (a
"carried" variable, e.g. the X in ``anc(X,Y) :- anc(X,Z), e(Z,Y)``) leaves
the edge rule range-unrestricted.  The paper works at the logical level and
does not address safety; we guard every such variable with the active-domain
predicate ``adom`` (materialized by :func:`prepare_adom`), which preserves
equivalence because every derivation of the original program stays within
the active domain.  The guards keep the translation polynomial.
"""

from __future__ import annotations

from collections import defaultdict

from repro.datalog.ast import Atom, Literal, Program, Rule
from repro.datalog.classify import is_linear
from repro.datalog.safety import limited_variables
from repro.datalog.stratify import DependenceGraph, stratify
from repro.datalog.terms import Constant, Sentinel, Variable
from repro.errors import NotLinearError, TranslationError

ADOM_PREDICATE = "adom"


class TranslationResult:
    """Output of Algorithm 3.1 with bookkeeping for tests and inspection."""

    def __init__(self, program, components, edge_predicates, closure_predicates, constants):
        self.program = program
        self.components = components  # list of frozensets (recursive SCCs)
        self.edge_predicates = edge_predicates  # component index -> name
        self.closure_predicates = closure_predicates
        self.constants = constants  # {'start': Constant, predicate: Constant}

    def __repr__(self):
        return (
            f"TranslationResult({len(self.program)} rules, "
            f"{len(self.components)} recursive component(s))"
        )


def _fresh_name(base, used):
    if base not in used:
        used.add(base)
        return base
    index = 1
    while f"{base}{index}" in used:
        index += 1
    name = f"{base}{index}"
    used.add(name)
    return name


def sl_to_stc(program, use_predicate_name_signatures=True, adom_guard=True):
    """Run Algorithm 3.1 on a stratified linear program.

    Args:
        program: the input :class:`Program` (must be stratified and linear).
        use_predicate_name_signatures: when True (the paper's Figure 9
            style), the signature constant of predicate ``sg`` is the string
            ``sg`` and the start marker is ``c``, *provided* those strings do
            not occur as constants in the program; otherwise out-of-domain
            :class:`Sentinel` constants are used.
        adom_guard: add active-domain guards for carried variables (see
            module docstring).  Disable only for display purposes.

    Returns a :class:`TranslationResult` whose ``program`` is an equivalent
    stratified TC program.
    """
    stratify(program)  # raises StratificationError when not stratified
    if not is_linear(program):
        raise NotLinearError("Algorithm 3.1 requires a linear program")

    graph = DependenceGraph.of_program(program)
    components = graph.strongly_connected_components()
    component_of = {}
    for component in components:
        for predicate in component:
            component_of[predicate] = component

    idb = program.idb_predicates
    used_names = set(program.predicates) | {ADOM_PREDICATE}
    program_constants = _program_constants(program)

    def is_recursive_rule(rule):
        head_component = component_of.get(rule.head.predicate)
        for element in rule.body:
            if isinstance(element, Literal) and element.positive:
                if component_of.get(element.predicate) is head_component and (
                    element.predicate in head_component
                ):
                    if len(head_component) > 1 or element.predicate == rule.head.predicate:
                        return True
        return False

    # Identify recursive components (more than one predicate, or self-loop).
    recursive_components = []
    for component in components:
        if len(component) > 1:
            recursive_components.append(component)
        else:
            (predicate,) = component
            if predicate in graph.dependencies(predicate):
                recursive_components.append(component)

    rules_by_component = defaultdict(list)
    loose_rules = []
    recursive_set = {p for component in recursive_components for p in component}
    for rule in program:
        head = rule.head.predicate
        if head in recursive_set:
            rules_by_component[component_of[head]].append(rule)
        else:
            loose_rules.append(rule)

    # Constants.
    def make_signature(name):
        if use_predicate_name_signatures and name not in program_constants:
            return Constant(name)
        return Constant(Sentinel(name))

    start = make_signature("c")
    signatures = {}

    output_rules = list(loose_rules)
    edge_predicates = {}
    closure_predicates = {}
    needs_adom = False

    for index, component in enumerate(
        sorted(recursive_components, key=lambda c: sorted(c)[0])
    ):
        members = sorted(component)
        arity_of = {p: program.arity_of(p) for p in members}
        m = max(arity_of.values())
        for predicate in members:
            signatures.setdefault(predicate, make_signature(predicate))
        e_name = _fresh_name(f"e{index}" if len(recursive_components) > 1 else "e", used_names)
        t_name = _fresh_name(f"t{index}" if len(recursive_components) > 1 else "t", used_names)
        edge_predicates[index] = e_name
        closure_predicates[index] = t_name
        side = m + 1

        def pad(terms, signature):
            terms = tuple(terms)
            return terms + (signature,) * (side - len(terms))

        start_node = (start,) * side

        for rule in rules_by_component[component]:
            head = rule.head
            head_sig = signatures[head.predicate]
            if is_recursive_rule(rule):
                recursive_literal, rest = _split_recursive(rule, component)
                body_sig = signatures[recursive_literal.predicate]
                edge_head = Atom(
                    e_name,
                    pad(recursive_literal.atom.args, body_sig) + pad(head.args, head_sig),
                )
                body = list(rest)
                if adom_guard:
                    guards = _adom_guards(edge_head, rest)
                    if guards:
                        needs_adom = True
                        body = guards + body
                output_rules.append(Rule(edge_head, tuple(body)))
            else:
                edge_head = Atom(e_name, start_node + pad(head.args, head_sig))
                body = list(rule.body)
                if adom_guard:
                    guards = _adom_guards(edge_head, rule.body)
                    if guards:
                        needs_adom = True
                        body = guards + body
                output_rules.append(Rule(edge_head, tuple(body)))

        # The TC rule pair for t_l (Definition 3.2 shape).
        xs = tuple(Variable(f"X{i+1}") for i in range(side))
        ys = tuple(Variable(f"Y{i+1}") for i in range(side))
        zs = tuple(Variable(f"Z{i+1}") for i in range(side))
        t_head = Atom(t_name, xs + ys)
        output_rules.append(Rule(t_head, (Literal(Atom(e_name, xs + ys)),)))
        output_rules.append(
            Rule(
                t_head,
                (
                    Literal(Atom(e_name, xs + zs)),
                    Literal(Atom(t_name, zs + ys)),
                ),
            )
        )

        # Read-back rules r3'.
        for predicate in members:
            args = tuple(Variable(f"X{i+1}") for i in range(arity_of[predicate]))
            body_atom = Atom(t_name, start_node + pad(args, signatures[predicate]))
            output_rules.append(Rule(Atom(predicate, args), (Literal(body_atom),)))

    constants = {"start": start}
    constants.update(signatures)
    return TranslationResult(
        Program(output_rules),
        recursive_components,
        edge_predicates,
        closure_predicates,
        constants,
    )


def _split_recursive(rule, component):
    """Return ``(recursive_literal, other_body_elements)``; error when the
    rule has more than one recursive subgoal (not linear)."""
    recursive = []
    rest = []
    for element in rule.body:
        if (
            isinstance(element, Literal)
            and element.positive
            and element.predicate in component
        ):
            recursive.append(element)
        else:
            rest.append(element)
    if len(recursive) != 1:
        raise NotLinearError(
            f"rule {rule} has {len(recursive)} recursive subgoals; expected exactly 1"
        )
    return recursive[0], tuple(rest)


def _adom_guards(edge_head, body):
    """Active-domain guard literals for head variables not limited by *body*."""
    probe = Rule(edge_head, tuple(body))
    limited = limited_variables(probe)
    loose = [
        v
        for v in _ordered_variables(edge_head.args)
        if v not in limited and not v.is_anonymous
    ]
    return [Literal(Atom(ADOM_PREDICATE, (v,))) for v in loose]


def _ordered_variables(terms):
    seen = []
    for term in terms:
        if isinstance(term, Variable) and term not in seen:
            seen.append(term)
    return seen


def _program_constants(program):
    values = set()
    for rule in program:
        atoms = [rule.head] + [e.atom for e in rule.body if isinstance(e, Literal)]
        for atom in atoms:
            for term in atom.args:
                if isinstance(term, Constant):
                    values.add(term.value)
    return values


def prepare_adom(database, predicate=ADOM_PREDICATE):
    """Return a copy of *database* with the active-domain relation added."""
    prepared = database.copy()
    prepared.add_facts(predicate, [(value,) for value in prepared.active_domain()])
    return prepared


def translate_and_check(program, **kwargs):
    """Run Algorithm 3.1 and verify the output is STC-shaped.

    Raises :class:`TranslationError` when the output fails the Definition
    3.2 membership test (which would indicate a bug, per Theorem 3.2).
    """
    from repro.datalog.classify import is_stratified_tc_program

    result = sl_to_stc(program, **kwargs)
    if not is_stratified_tc_program(result.program):
        raise TranslationError(
            "Algorithm 3.1 produced a program outside STC-DATALOG"
        )
    return result
