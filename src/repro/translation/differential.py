"""Differential testing harness for Algorithm 3.1 (Theorem 3.2).

Verifies input/output program equivalence empirically: evaluate both on a
database and compare the relations of the *original* program's IDB
predicates.  Random stratified-linear program and database generators
support property-based testing at scale.
"""

from __future__ import annotations

import random

from repro.datalog.ast import Atom, Literal, Program, Rule
from repro.datalog.database import Database
from repro.datalog.engine import Engine
from repro.datalog.terms import Variable
from repro.translation.sl_to_stc import prepare_adom, sl_to_stc


def idb_snapshot(program, database, method="seminaive"):
    """Evaluate and return ``{idb_predicate: frozenset(tuples)}``."""
    result = Engine(method=method).evaluate(program, database)
    return {
        predicate: frozenset(result.facts(predicate))
        for predicate in program.idb_predicates
    }


def check_equivalence(program, database, translation=None, method="seminaive"):
    """Compare *program* against its Algorithm 3.1 translation on *database*.

    Returns ``(equal, details)`` where details maps each original IDB
    predicate to ``(original_tuples, translated_tuples)`` when they differ.
    """
    if translation is None:
        translation = sl_to_stc(program, use_predicate_name_signatures=False)
    original = idb_snapshot(program, database, method=method)
    translated_db = prepare_adom(database)
    translated = idb_snapshot(translation.program, translated_db, method=method)
    differences = {}
    for predicate, tuples in original.items():
        other = translated.get(predicate, frozenset())
        if tuples != other:
            differences[predicate] = (tuples, other)
    return (not differences), differences


def random_database(seed, predicates, domain_size=8, facts_per_predicate=10):
    """A random database for ``{predicate: arity}`` over a small domain."""
    rng = random.Random(seed)
    domain = [f"v{i}" for i in range(domain_size)]
    database = Database()
    for predicate, arity in predicates.items():
        relation = database.relation(predicate, arity)
        for _ in range(facts_per_predicate):
            relation.add(tuple(rng.choice(domain) for _ in range(arity)))
    return database


def random_sl_program(seed, n_idb=3, n_edb=3, max_arity=2, negation=True):
    """Generate a random *stratified linear* program.

    Construction guarantees stratified linearity: IDB predicates are created
    in order ``q0 < q1 < ...``; rule bodies use EDB predicates, strictly
    earlier IDB predicates (possibly negated), and at most one occurrence of
    the head predicate itself (direct linear recursion).  All rules are made
    safe by construction (every variable occurs in some positive literal).
    """
    rng = random.Random(seed)
    edb = {f"b{i}": rng.randint(1, max_arity) for i in range(n_edb)}
    # Binary EDBs make recursion interesting; force at least one.
    edb["b0"] = 2
    idb_arities = {}
    rules = []
    for index in range(n_idb):
        name = f"q{index}"
        arity = rng.randint(1, max_arity)
        idb_arities[name] = arity
        head_vars = [Variable(f"X{i}") for i in range(arity)]
        n_rules = rng.randint(1, 2)
        for _ in range(n_rules):
            rules.append(
                _random_rule(rng, name, head_vars, edb, idb_arities, index, negation)
            )
        # Half the time, add a direct linear recursive rule.
        if rng.random() < 0.6:
            rules.append(_random_recursive_rule(rng, name, head_vars, edb))
    return Program(rules)


def _random_rule(rng, name, head_vars, edb, idb_arities, index, negation):
    body = []
    bound = []
    # One or two positive EDB literals binding fresh variables.
    pool = list(head_vars)
    for literal_index in range(rng.randint(1, 2)):
        predicate = rng.choice(sorted(edb))
        arity = edb[predicate]
        args = []
        for position in range(arity):
            if pool and rng.random() < 0.7:
                args.append(rng.choice(pool))
            else:
                fresh = Variable(f"F{literal_index}{position}")
                pool.append(fresh)
                args.append(fresh)
        body.append(Literal(Atom(predicate, args)))
        bound.extend(args)
    # Ensure all head variables are bound: extend the last literal strategy —
    # bind leftovers through an extra EDB literal per missing variable.
    missing = [v for v in head_vars if v not in bound]
    for i, variable in enumerate(missing):
        predicate = rng.choice(sorted(edb))
        arity = edb[predicate]
        args = [variable] + [
            rng.choice(bound) if bound and rng.random() < 0.5 else variable
            for _ in range(arity - 1)
        ]
        body.append(Literal(Atom(predicate, args)))
        bound.extend(args)
    # Possibly reference an earlier IDB, maybe negated.
    if index > 0 and rng.random() < 0.7:
        earlier = f"q{rng.randrange(index)}"
        arity = idb_arities[earlier]
        args = [rng.choice(bound) for _ in range(arity)]
        positive = not (negation and rng.random() < 0.4)
        body.append(Literal(Atom(earlier, args), positive=positive))
    return Rule(Atom(name, head_vars), tuple(body))


def _random_recursive_rule(rng, name, head_vars, edb):
    """A safe direct-recursion rule: head q(X..) :- b(X.., Z..), q(Z-ish)."""
    arity = len(head_vars)
    recursive_args = []
    body = []
    bound = list(head_vars)
    binary_edbs = sorted(p for p, a in edb.items() if a == 2)
    for i in range(arity):
        fresh = Variable(f"R{i}")
        connector = rng.choice(binary_edbs)
        body.append(Literal(Atom(connector, (head_vars[i], fresh))))
        recursive_args.append(fresh)
        bound.append(fresh)
    body.append(Literal(Atom(name, recursive_args)))
    rng.shuffle(body)
    return Rule(Atom(name, head_vars), tuple(body))
