"""Algorithm 3.1 (SL-DATALOG -> STC-DATALOG) and its test harness."""

from repro.translation.differential import (
    check_equivalence,
    idb_snapshot,
    random_database,
    random_sl_program,
)
from repro.translation.sl_to_stc import (
    ADOM_PREDICATE,
    TranslationResult,
    prepare_adom,
    sl_to_stc,
    translate_and_check,
)
from repro.translation.merge_tc import (
    MergeResult,
    count_tc_pairs,
    merge_independent_closures,
)
from repro.translation.to_graphlog import diagonal_projection, graphlog_from_stc

__all__ = [
    "ADOM_PREDICATE",
    "MergeResult",
    "count_tc_pairs",
    "merge_independent_closures",
    "TranslationResult",
    "check_equivalence",
    "diagonal_projection",
    "graphlog_from_stc",
    "idb_snapshot",
    "prepare_adom",
    "random_database",
    "random_sl_program",
    "sl_to_stc",
    "translate_and_check",
]
