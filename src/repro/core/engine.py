"""Evaluation of graphical queries: translate with λ, run the Datalog engine.

The engine also knows a faster path for *closure* edges: when asked, it can
evaluate ``p+`` literals with a dedicated transitive-closure kernel (from
:mod:`repro.graphs.closure`) instead of the generic semi-naive Datalog rules,
mirroring the paper's Section 6 remark that implementations can benefit from
specialized transitive-closure computation.  The ``abl3`` benchmark compares
the strategies.
"""

from __future__ import annotations

from repro.core.query_graph import GraphicalQuery, QueryGraph
from repro.core.translate import DOMAIN_PREDICATE, translate, translate_extended
from repro.datalog.database import Database
from repro.datalog.engine import Engine, match_atom
from repro.graphs.bridge import database_from_graph
from repro.graphs.closure import transitive_closure


def prepare_database(database, domain_predicate=DOMAIN_PREDICATE):
    """Return a copy of *database* with the unary domain relation populated.

    Kleene star and optional edges translate to rules with a zero-step
    branch guarded by ``node(X)``; this helper materializes that relation
    over the active domain.
    """
    prepared = database.copy()
    values = prepared.active_domain()
    prepared.add_facts(domain_predicate, [(value,) for value in values])
    return prepared


class GraphLogEngine:
    """Evaluates GraphLog graphical queries over relational databases.

    Parameters:
        method: Datalog evaluation strategy — ``seminaive`` or ``naive``
            (the tuple-set walker), or ``columnar`` (the int-encoded kernel
            backend; see docs/ENGINE.md).
        closure_kernel: when set to one of
            :func:`repro.graphs.closure.closure_methods` names, simple
            closure literals over binary predicates are precomputed with
            that kernel and fed to the Datalog engine as base facts, instead
            of being evaluated through the generic TC rules.
        domain_predicate: name of the auto-maintained node-domain relation.
        optimize: run the rule optimizer (dedupe, view inlining, pruning)
            on the translated program before evaluation; the defined
            relations are kept as roots, auxiliaries may be folded away.
    """

    def __init__(self, method="seminaive", closure_kernel=None,
                 domain_predicate=DOMAIN_PREDICATE, optimize=False):
        self.method = method
        self.closure_kernel = closure_kernel
        self.domain_predicate = domain_predicate
        self.optimize = optimize

    # ------------------------------------------------------------------ API

    def translate(self, query):
        """λ-translate a query graph or graphical query to a Program."""
        return translate(_as_graphical(query), domain_predicate=self.domain_predicate)

    def run(self, query, database):
        """Evaluate *query*; returns a Database with all derived relations.

        *database* may be a relational :class:`Database` or a
        :class:`~repro.graphs.multigraph.LabeledMultigraph` (converted via
        the Section 2 encoding).
        """
        database = _as_database(database)
        graphical = _as_graphical(query)
        prepared = prepare_database(database, self.domain_predicate)
        if any(graph.summaries for graph in graphical.graphs):
            from repro.aggregation.aggregates import AggregateEngine

            program = translate_extended(graphical, self.domain_predicate)
            return AggregateEngine(method=self.method).evaluate(program, prepared)
        program = self.translate(graphical)
        if self.optimize:
            from repro.datalog.optimize import optimize as optimize_program

            program = optimize_program(
                program, roots=sorted(graphical.idb_predicates)
            )
        program = self._maybe_precompute_closures(program, prepared)
        engine = Engine(method=self.method)
        return engine.evaluate(program, prepared)

    def answers(self, query, database, predicate=None):
        """Evaluate and return the defined relation's tuples.

        With several query graphs, *predicate* picks which defined relation
        to return (default: the last graph's head predicate).
        """
        graphical = _as_graphical(query)
        if predicate is None:
            predicate = graphical.graphs[-1].head_predicate
        result = self.run(graphical, database)
        return set(result.facts(predicate))

    def run_with_provenance(self, query, database):
        """Evaluate recording derivations; returns ``(result, provenance)``.

        The provenance map feeds :mod:`repro.datalog.provenance` — e.g.
        ``explain(provenance, "not-desc-of", row)`` — and the GraphLog
        answer-highlighting of :func:`repro.visual.highlight.highlight_graphlog`.
        """
        database = _as_database(database)
        program = self.translate(query)
        prepared = prepare_database(database, self.domain_predicate)
        # Provenance needs the native walker's per-derivation support sets;
        # the columnar backend derives in batches and records none.
        method = "seminaive" if self.method == "columnar" else self.method
        engine = Engine(method=method, record_provenance=True)
        result = engine.evaluate(program, prepared)
        return result, engine.provenance

    def explain(self, query, database, predicate, row):
        """The derivation tree of one answer tuple (see provenance module)."""
        from repro.datalog.provenance import explain as _explain

        _result, provenance = self.run_with_provenance(query, database)
        return _explain(provenance, predicate, tuple(row))

    def match(self, query, database, goal):
        """Evaluate and match an arbitrary goal atom (see ``match_atom``)."""
        result = self.run(query, database)
        if isinstance(goal, str):
            from repro.datalog.parser import parse_atom

            goal = parse_atom(goal)
        return match_atom(result, goal)

    # ------------------------------------------------------------ internals

    def _maybe_precompute_closures(self, program, database):
        """Replace pure binary TC-pair definitions by precomputed facts.

        Only applies when ``closure_kernel`` is set: for each auxiliary
        predicate defined exactly by the TC rule pair over a binary *EDB*
        base predicate, compute the closure directly and materialize it.
        """
        if self.closure_kernel is None:
            return program
        from repro.datalog.classify import tc_base_predicates

        bases = tc_base_predicates(program)
        edb = program.edb_predicates
        replaced = set()
        for predicate, base in bases.items():
            if base not in edb or base not in database:
                continue
            if program.arity_of(predicate) != 2 or database.arity_of(base) != 2:
                continue
            pairs = transitive_closure(
                set(database.facts(base)), method=self.closure_kernel
            )
            database.add_facts(predicate, pairs)
            replaced.add(predicate)
        if not replaced:
            return program
        from repro.datalog.ast import Program

        remaining = [r for r in program if r.head.predicate not in replaced]
        return Program(remaining)


def _as_graphical(query):
    if isinstance(query, QueryGraph):
        return GraphicalQuery([query])
    if isinstance(query, GraphicalQuery):
        return query
    raise TypeError(f"expected a QueryGraph or GraphicalQuery, got {type(query).__name__}")


def _as_database(database):
    if isinstance(database, Database):
        return database
    # Duck-type the multigraph to avoid a hard dependency cycle.
    if hasattr(database, "edge_triples"):
        return database_from_graph(database)
    raise TypeError(
        f"expected a Database or LabeledMultigraph, got {type(database).__name__}"
    )


def run(query, database, method="seminaive"):
    """One-shot convenience: evaluate a query and return the database."""
    return GraphLogEngine(method=method).run(query, database)


def answers(query, database, predicate=None, method="seminaive"):
    """One-shot convenience: evaluate and return the defined relation."""
    return GraphLogEngine(method=method).answers(query, database, predicate)
