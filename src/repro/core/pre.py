"""Path regular expressions (Definition 2.8 of the paper).

The grammar is::

    E <- S ; (E)+ ; -(E) ; ¬(E) ; (E|E) ; (EE)

where ``S`` is a literal (a predicate applied to variables/constants, or the
``=`` / ``≠`` primitives).  Two derived operators: Kleene closure
``(E)* = (= | (E)+)`` and optional ``(E)? = (= | E)``.

Ghost variables: a variable occurring in only one branch of an alternation
"vanishes" from the relation the alternation defines; it must not be used
outside the alternation (its *scope*).  :func:`ghost_variables` computes the
vanished set, which the query-graph validator checks against the rest of the
query graph.
"""

from __future__ import annotations

from repro.datalog.terms import Variable, make_term
from repro.errors import RegexError


class PathRegex:
    """Abstract base class for path-regular-expression nodes."""

    __slots__ = ()

    # -- combinator sugar so expressions compose fluently in Python ------

    def __or__(self, other):
        return Alternation(self, _coerce(other))

    def __ror__(self, other):
        return Alternation(_coerce(other), self)

    def __rshift__(self, other):
        """``a >> b`` is the composition (concatenation) ``a b``."""
        return Composition(self, _coerce(other))

    def __rrshift__(self, other):
        return Composition(_coerce(other), self)

    def __neg__(self):
        """``-a`` is the inversion of ``a`` (arrow reversal)."""
        return Inversion(self)

    def __invert__(self):
        """``~a`` is the negation of ``a``."""
        return Negation(self)

    def plus(self):
        return Closure(self)

    def star(self):
        return Star(self)

    def optional(self):
        return Optional(self)

    # -- analysis --------------------------------------------------------

    def label_variables(self):
        """Ordered distinct non-anonymous variables exported by this p.r.e.

        These are the variables of the relation the expression defines (in
        addition to the two endpoint sequences).  Ghost variables of inner
        alternations are already excluded.
        """
        raise NotImplementedError

    def all_variables(self):
        """Every non-anonymous variable syntactically occurring inside."""
        raise NotImplementedError

    def is_atomic_literal(self):
        """True for a bare predicate literal (translatable without an aux)."""
        return isinstance(self, Pred)

    def walk(self):
        """Yield every subexpression, self first (pre-order)."""
        yield self
        for child in self._children():
            yield from child.walk()

    def _children(self):
        return ()


def _coerce(value):
    if isinstance(value, PathRegex):
        return value
    if isinstance(value, str):
        return Pred(value)
    raise TypeError(f"cannot interpret {value!r} as a path regular expression")


def _dedupe(variables):
    seen = []
    for variable in variables:
        if variable not in seen:
            seen.append(variable)
    return seen


class Pred(PathRegex):
    """A literal: predicate name applied to label arguments.

    ``Pred('mother', ['_'])`` is the paper's ``mother(_)`` — the underscore
    projects out the hospital column.
    """

    __slots__ = ("name", "args")

    def __init__(self, name, args=()):
        self.name = str(name)
        self.args = tuple(make_term(a) for a in args)

    def label_variables(self):
        return _dedupe(
            t for t in self.args if isinstance(t, Variable) and not t.is_anonymous
        )

    def all_variables(self):
        return set(self.label_variables())

    def _key(self):
        return ("pred", self.name, self.args)

    def __eq__(self, other):
        return isinstance(other, Pred) and self._key() == other._key()

    def __hash__(self):
        return hash(self._key())

    def __repr__(self):
        return f"Pred({self})"

    def __str__(self):
        if not self.args:
            return self.name
        rendered = ",".join("_" if isinstance(a, Variable) and a.is_anonymous else str(a) for a in self.args)
        return f"{self.name}({rendered})"


class Equality(PathRegex):
    """The ``=`` primitive: endpoints denote the same value sequence."""

    __slots__ = ()

    def label_variables(self):
        return []

    def all_variables(self):
        return set()

    def __eq__(self, other):
        return isinstance(other, Equality)

    def __hash__(self):
        return hash("eq")

    def __repr__(self):
        return "Equality()"

    def __str__(self):
        return "="


class Inequality(PathRegex):
    """The ``≠`` primitive: endpoints denote different value sequences."""

    __slots__ = ()

    def label_variables(self):
        return []

    def all_variables(self):
        return set()

    def __eq__(self, other):
        return isinstance(other, Inequality)

    def __hash__(self):
        return hash("neq")

    def __repr__(self):
        return "Inequality()"

    def __str__(self):
        return "!="


class ComparisonPrimitive(PathRegex):
    """An order-comparison edge label such as ``<`` (Figure 4's edge between
    an arrival time and a departure time).

    Only usable standalone (optionally negated) between single-term nodes;
    it translates to a comparison built-in, not a relational literal.
    """

    __slots__ = ("op",)

    _OPS = ("<", "<=", ">", ">=")

    def __init__(self, op):
        if op not in self._OPS:
            raise RegexError(f"unknown comparison primitive {op!r}")
        self.op = op

    def label_variables(self):
        return []

    def all_variables(self):
        return set()

    def __eq__(self, other):
        return isinstance(other, ComparisonPrimitive) and self.op == other.op

    def __hash__(self):
        return hash(("cmp", self.op))

    def __repr__(self):
        return f"ComparisonPrimitive({self.op!r})"

    def __str__(self):
        return self.op


class Closure(PathRegex):
    """Positive closure ``(E)+``: a path of one or more E-steps, along which
    the label variables of E keep the same value (Section 2)."""

    __slots__ = ("inner",)

    def __init__(self, inner):
        self.inner = _coerce(inner)

    def label_variables(self):
        return self.inner.label_variables()

    def all_variables(self):
        return self.inner.all_variables()

    def _children(self):
        return (self.inner,)

    def __eq__(self, other):
        return isinstance(other, Closure) and self.inner == other.inner

    def __hash__(self):
        return hash(("closure", self.inner))

    def __repr__(self):
        return f"Closure({self.inner!r})"

    def __str__(self):
        return f"{_wrap(self.inner)}+"


class Star(PathRegex):
    """Kleene closure ``(E)*``, defined as ``(= | (E)+)``.

    The label variables of E are ghosts of that implicit alternation (they do
    not occur on the ``=`` branch), so a Star exports none.
    """

    __slots__ = ("inner",)

    def __init__(self, inner):
        self.inner = _coerce(inner)

    def label_variables(self):
        return []

    def all_variables(self):
        return self.inner.all_variables()

    def desugar(self):
        return Alternation(Equality(), Closure(self.inner))

    def _children(self):
        return (self.inner,)

    def __eq__(self, other):
        return isinstance(other, Star) and self.inner == other.inner

    def __hash__(self):
        return hash(("star", self.inner))

    def __repr__(self):
        return f"Star({self.inner!r})"

    def __str__(self):
        return f"{_wrap(self.inner)}*"


class Optional(PathRegex):
    """Optional ``(E)?``, defined as ``(= | E)``; exports no label variables
    for the same ghost reason as :class:`Star`."""

    __slots__ = ("inner",)

    def __init__(self, inner):
        self.inner = _coerce(inner)

    def label_variables(self):
        return []

    def all_variables(self):
        return self.inner.all_variables()

    def desugar(self):
        return Alternation(Equality(), self.inner)

    def _children(self):
        return (self.inner,)

    def __eq__(self, other):
        return isinstance(other, Optional) and self.inner == other.inner

    def __hash__(self):
        return hash(("optional", self.inner))

    def __repr__(self):
        return f"Optional({self.inner!r})"

    def __str__(self):
        return f"{_wrap(self.inner)}?"


class Inversion(PathRegex):
    """Inversion ``-(E)``: traverse E against the arrow direction."""

    __slots__ = ("inner",)

    def __init__(self, inner):
        self.inner = _coerce(inner)

    def label_variables(self):
        return self.inner.label_variables()

    def all_variables(self):
        return self.inner.all_variables()

    def _children(self):
        return (self.inner,)

    def __eq__(self, other):
        return isinstance(other, Inversion) and self.inner == other.inner

    def __hash__(self):
        return hash(("inversion", self.inner))

    def __repr__(self):
        return f"Inversion({self.inner!r})"

    def __str__(self):
        return f"-{_wrap(self.inner)}"


class Negation(PathRegex):
    """Negation ``¬(E)``.

    Safety of the translated program requires negation to be the *outermost*
    operator of an edge's p.r.e. (footnote 4 of the paper); the validator in
    :mod:`repro.core.query_graph` enforces this.
    """

    __slots__ = ("inner",)

    def __init__(self, inner):
        self.inner = _coerce(inner)

    def label_variables(self):
        return self.inner.label_variables()

    def all_variables(self):
        return self.inner.all_variables()

    def _children(self):
        return (self.inner,)

    def __eq__(self, other):
        return isinstance(other, Negation) and self.inner == other.inner

    def __hash__(self):
        return hash(("negation", self.inner))

    def __repr__(self):
        return f"Negation({self.inner!r})"

    def __str__(self):
        return f"~{_wrap(self.inner)}"


class Alternation(PathRegex):
    """Alternation ``(E1|E2)``; the scope of its ghost variables."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = _coerce(left)
        self.right = _coerce(right)

    def label_variables(self):
        left = self.left.label_variables()
        right = set(self.right.label_variables())
        return [v for v in left if v in right]

    def all_variables(self):
        return self.left.all_variables() | self.right.all_variables()

    def ghost_variables(self):
        """Variables occurring in exactly one branch (they vanish)."""
        left = set(self.left.label_variables())
        right = set(self.right.label_variables())
        return left ^ right

    def _children(self):
        return (self.left, self.right)

    def __eq__(self, other):
        return (
            isinstance(other, Alternation)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash(("alternation", self.left, self.right))

    def __repr__(self):
        return f"Alternation({self.left!r}, {self.right!r})"

    def __str__(self):
        return f"{self.left} | {self.right}"


class Composition(PathRegex):
    """Composition ``(E1 E2)``: an E1-step followed by an E2-step."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = _coerce(left)
        self.right = _coerce(right)

    def label_variables(self):
        return _dedupe(self.left.label_variables() + self.right.label_variables())

    def all_variables(self):
        return self.left.all_variables() | self.right.all_variables()

    def _children(self):
        return (self.left, self.right)

    def __eq__(self, other):
        return (
            isinstance(other, Composition)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash(("composition", self.left, self.right))

    def __repr__(self):
        return f"Composition({self.left!r}, {self.right!r})"

    def __str__(self):
        return f"{_wrap(self.left)} {_wrap(self.right)}"


def _wrap(expr):
    if isinstance(expr, (Pred, Equality, Inequality, ComparisonPrimitive)):
        return str(expr)
    return f"({expr})"


# ------------------------------------------------------------ constructors


def rel(name, *args):
    """Shorthand literal constructor: ``rel('mother', '_')``."""
    return Pred(name, args)


def closure(expr):
    return Closure(_coerce(expr))


def star(expr):
    return Star(_coerce(expr))


def optional(expr):
    return Optional(_coerce(expr))


def inverse(expr):
    return Inversion(_coerce(expr))


def neg(expr):
    return Negation(_coerce(expr))


def alt(first, *rest):
    expr = _coerce(first)
    for nxt in rest:
        expr = Alternation(expr, _coerce(nxt))
    return expr


def seq(first, *rest):
    expr = _coerce(first)
    for nxt in rest:
        expr = Composition(expr, _coerce(nxt))
    return expr


# ------------------------------------------------------------ validation


def strip_outer_negation(expr):
    """Return ``(inner, positive)`` after removing one outermost negation."""
    if isinstance(expr, Negation):
        return expr.inner, False
    return expr, True


def validate_pre(expr):
    """Structural checks on a p.r.e. used as an edge label.

    - negation may only be the outermost operator (footnote 4);
    - ghost variables of every alternation must not be referenced outside
      that alternation *within the expression* (cross-edge ghost escapes are
      checked at the query-graph level).
    """
    inner, _positive = strip_outer_negation(expr)
    for sub in inner.walk():
        if isinstance(sub, Negation):
            raise RegexError(
                f"negation must be the outermost operator of an edge label, found "
                f"inner negation in {expr}"
            )
    _check_ghosts_within(inner)
    return expr


def _check_ghosts_within(expr):
    """Detect a ghost variable of an alternation being used by a sibling
    subexpression of the same overall p.r.e."""
    for sub in expr.walk():
        if not isinstance(sub, Alternation):
            continue
        ghosts = sub.ghost_variables()
        if not ghosts:
            continue
        outside = _variables_outside(expr, sub)
        escaped = ghosts & outside
        if escaped:
            names = ", ".join(sorted(v.name for v in escaped))
            raise RegexError(
                f"ghost variable(s) {names} of alternation {sub} used outside "
                f"their scope in {expr}"
            )


def _variables_outside(root, scope):
    """Variables of *root* occurring outside the subtree *scope*."""
    outside = set()

    def visit(node):
        if node is scope:
            return
        if isinstance(node, Pred):
            outside.update(node.all_variables())
        for child in node._children():
            visit(child)

    visit(root)
    return outside


def exported_variables(expr):
    """Label variables of an edge expression after outer-negation stripping."""
    inner, _positive = strip_outer_negation(expr)
    return inner.label_variables()
