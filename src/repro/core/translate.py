"""The logical translation function λ (Definition 2.4), extended to p.r.e.s.

Each query graph becomes one Datalog rule (the distinguished edge is the
head; every pattern edge and node annotation contributes a body literal),
plus auxiliary rules for closure literals and composite path regular
expressions:

- ``p+`` on an edge produces the two TC rules (2)-(3) of Definition 2.4 for
  an auxiliary predicate named ``p-tc`` (matching Figure 3's
  ``descendant-tc``);
- alternation/composition/inversion/star/optional produce auxiliary
  predicates with fresh names (deduplicated structurally, so the same
  subexpression used on two edges compiles once);
- Kleene star and optional need a *domain* predicate for their zero-step
  branch: the unary ``node`` relation over all graph nodes, which
  :func:`repro.core.engine.prepare_database` maintains.

The output of translating a valid graphical query is always a stratified
*linear* Datalog program (every recursive rule is one of the TC pair), which
is exactly the SL-DATALOG ⊇ GRAPHLOG direction of Lemma 3.4.
"""

from __future__ import annotations

from repro import obs
from repro.core.pre import (
    Alternation,
    Closure,
    ComparisonPrimitive,
    Composition,
    Equality,
    Inequality,
    Inversion,
    Negation,
    Optional,
    Pred,
    Star,
    strip_outer_negation,
)
from repro.core.query_graph import GraphicalQuery, QueryGraph
from repro.datalog.ast import Atom, Comparison, Literal, Program, Rule
from repro.datalog.terms import FreshVariables, Variable
from repro.errors import TranslationError

DOMAIN_PREDICATE = "node"

_NEGATED_COMPARISON = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}


class PredicateNamer:
    """Allocates collision-free names for auxiliary p.r.e. predicates.

    Structurally equal expressions map to the same auxiliary predicate, so a
    subexpression shared by several edges is compiled exactly once.
    """

    def __init__(self, reserved=()):
        self._reserved = set(reserved)
        self._by_expr = {}
        self._counter = 0

    def reserve(self, name):
        self._reserved.add(name)

    def known(self, expr, width=1):
        return self._by_expr.get((expr, width))

    def name_for(self, expr, hint, width=1):
        existing = self._by_expr.get((expr, width))
        if existing is not None:
            return existing, False
        candidate = hint
        while candidate in self._reserved:
            self._counter += 1
            candidate = f"{hint}-{self._counter}"
        self._reserved.add(candidate)
        self._by_expr[(expr, width)] = candidate
        return candidate, True


class _Compiler:
    """Compiles path regular expressions into auxiliary Datalog rules."""

    def __init__(self, namer, domain_predicate=DOMAIN_PREDICATE):
        self.namer = namer
        self.domain_predicate = domain_predicate
        self.rules = []

    # The compiler returns, for each expression, a pair
    # ``(predicate_name, label_terms)`` such that the relation
    # ``predicate_name(source..., target..., *label_terms)`` holds exactly
    # when the expression matches a path from source to target.

    def compile(self, expr, width):
        if isinstance(expr, Pred):
            return expr.name, tuple(expr.args)
        if isinstance(expr, Closure):
            return self._compile_closure(expr, width)
        if isinstance(expr, Composition):
            return self._compile_composition(expr)
        if isinstance(expr, Alternation):
            return self._compile_alternation(expr)
        if isinstance(expr, Inversion):
            return self._compile_inversion(expr, width)
        if isinstance(expr, Star):
            return self._compile_star(expr, width)
        if isinstance(expr, Optional):
            return self._compile_optional(expr, width)
        if isinstance(expr, Equality):
            return self._compile_equality(width)
        if isinstance(expr, Inequality):
            return self._compile_inequality(width)
        if isinstance(expr, Negation):
            raise TranslationError(
                f"negation must be outermost in an edge label; cannot compile {expr}"
            )
        raise TranslationError(f"unsupported path expression {expr!r}")

    # ----------------------------------------------------------- helpers

    def _fresh_vectors(self, expr, width, count):
        used = {v for v in expr.all_variables()}
        fresh = FreshVariables(used, prefix="X")
        vectors = []
        for index in range(count):
            vectors.append(
                tuple(fresh.fresh(hint=f"{'XYZ'[index % 3]}_") for _ in range(width))
            )
        return vectors

    def _domain_literals(self, variables):
        return [Literal(Atom(self.domain_predicate, (v,))) for v in variables]

    # ------------------------------------------------------------- cases

    def _compile_closure(self, expr, width):
        inner_name, inner_terms = self.compile(expr.inner, width)
        exported = tuple(expr.inner.label_variables())
        hint = f"{inner_name}-tc"
        name, fresh = self.namer.name_for(expr, hint, width)
        if fresh:
            (xs, ys, zs) = self._fresh_vectors(expr, width, 3)
            head = Atom(name, xs + ys + exported)
            base = Rule(head, (Literal(Atom(inner_name, xs + ys + inner_terms)),))
            step = Rule(
                head,
                (
                    Literal(Atom(inner_name, xs + zs + inner_terms)),
                    Literal(Atom(name, zs + ys + exported)),
                ),
            )
            self.rules.append(base)
            self.rules.append(step)
        return name, exported

    def _compile_composition(self, expr):
        left_name, left_terms = self.compile(expr.left, 1)
        right_name, right_terms = self.compile(expr.right, 1)
        exported = tuple(expr.label_variables())
        name, fresh = self.namer.name_for(expr, "path")
        if fresh:
            used = expr.all_variables()
            gen = FreshVariables(used, prefix="N")
            x, z, y = gen.fresh("X_"), gen.fresh("Z_"), gen.fresh("Y_")
            head = Atom(name, (x, y) + exported)
            body = (
                Literal(Atom(left_name, (x, z) + left_terms)),
                Literal(Atom(right_name, (z, y) + right_terms)),
            )
            self.rules.append(Rule(head, body))
        return name, exported

    def _compile_alternation(self, expr):
        left_name, left_terms = self.compile(expr.left, 1)
        right_name, right_terms = self.compile(expr.right, 1)
        exported = tuple(expr.label_variables())
        name, fresh = self.namer.name_for(expr, "alt")
        if fresh:
            used = expr.all_variables()
            gen = FreshVariables(used, prefix="N")
            x, y = gen.fresh("X_"), gen.fresh("Y_")
            head = Atom(name, (x, y) + exported)
            self.rules.append(Rule(head, (Literal(Atom(left_name, (x, y) + left_terms)),)))
            self.rules.append(Rule(head, (Literal(Atom(right_name, (x, y) + right_terms)),)))
        return name, exported

    def _compile_inversion(self, expr, width):
        inner_name, inner_terms = self.compile(expr.inner, width)
        exported = tuple(expr.inner.label_variables())
        name, fresh = self.namer.name_for(expr, f"{inner_name}-inv", width)
        if fresh:
            (xs, ys) = self._fresh_vectors(expr, width, 2)
            head = Atom(name, xs + ys + exported)
            self.rules.append(Rule(head, (Literal(Atom(inner_name, ys + xs + inner_terms)),)))
        return name, exported

    def _compile_star(self, expr, width):
        closure_name, closure_exported = self._compile_closure(Closure(expr.inner), width)
        star_hint = f"{closure_name[:-3]}-star" if closure_name.endswith("-tc") else "star"
        name, fresh = self.namer.name_for(expr, star_hint, width)
        if fresh:
            (xs, ys) = self._fresh_vectors(expr, width, 2)
            head = Atom(name, xs + ys)
            self.rules.append(
                Rule(Atom(name, xs + xs), tuple(self._domain_literals(xs)))
            )
            self.rules.append(
                Rule(head, (Literal(Atom(closure_name, xs + ys + closure_exported)),))
            )
        return name, ()

    def _compile_optional(self, expr, width):
        inner_name, inner_terms = self.compile(expr.inner, width)
        name, fresh = self.namer.name_for(expr, f"{inner_name}-opt", width)
        if fresh:
            (xs, ys) = self._fresh_vectors(expr, width, 2)
            self.rules.append(
                Rule(Atom(name, xs + xs), tuple(self._domain_literals(xs)))
            )
            self.rules.append(
                Rule(Atom(name, xs + ys), (Literal(Atom(inner_name, xs + ys + inner_terms)),))
            )
        return name, ()

    def _compile_equality(self, width):
        expr = Equality()
        name, fresh = self.namer.name_for(expr, "same", width)
        if fresh:
            xs = tuple(Variable(f"X_{i}") for i in range(width))
            self.rules.append(Rule(Atom(name, xs + xs), tuple(self._domain_literals(xs))))
        return name, ()

    def _compile_inequality(self, width):
        expr = Inequality()
        name, fresh = self.namer.name_for(expr, "diff", width)
        if fresh:
            xs = tuple(Variable(f"X_{i}") for i in range(width))
            ys = tuple(Variable(f"Y_{i}") for i in range(width))
            body = tuple(self._domain_literals(xs)) + tuple(self._domain_literals(ys))
            body += tuple(Comparison("!=", x, y) for x, y in zip(xs, ys))
            self.rules.append(Rule(Atom(name, xs + ys), body))
        return name, ()


def translate_query_graph(graph, namer=None, domain_predicate=DOMAIN_PREDICATE):
    """Apply λ to one query graph; returns a list of Datalog rules.

    The first rule returned is the graph's main rule; auxiliary (closure /
    p.r.e.) rules follow.
    """
    graph.validate()
    if namer is None:
        namer = PredicateNamer(reserved=graph.body_predicates() | {graph.head_predicate})
    compiler = _Compiler(namer, domain_predicate)
    body = []

    for edge in graph.edges:
        inner, positive = strip_outer_negation(edge.pre)
        k1, k2 = len(edge.source), len(edge.target)
        if isinstance(inner, Equality) and positive:
            body.extend(
                Comparison("==", s, t) for s, t in zip(edge.source, edge.target)
            )
            continue
        if isinstance(inner, Inequality) and positive:
            body.extend(
                Comparison("!=", s, t) for s, t in zip(edge.source, edge.target)
            )
            continue
        if isinstance(inner, Equality) and not positive:
            body.extend(
                Comparison("!=", s, t) for s, t in zip(edge.source, edge.target)
            )
            continue
        if isinstance(inner, Inequality) and not positive:
            body.extend(
                Comparison("==", s, t) for s, t in zip(edge.source, edge.target)
            )
            continue
        if isinstance(inner, ComparisonPrimitive):
            op = inner.op if positive else _NEGATED_COMPARISON[inner.op]
            body.append(Comparison(op, edge.source[0], edge.target[0]))
            continue
        if isinstance(inner, Pred):
            atom = Atom(inner.name, edge.source + edge.target + inner.args)
            body.append(Literal(atom, positive))
            continue
        name, exported = compiler.compile(inner, k1)
        atom = Atom(name, edge.source + edge.target + tuple(exported))
        body.append(Literal(atom, positive))

    for annotation in graph.annotations:
        atom = Atom(annotation.predicate, annotation.node + annotation.extra)
        body.append(Literal(atom, annotation.positive))

    head = Atom(
        graph.distinguished_edge.predicate, graph.distinguished_edge.head_terms
    )
    main_rule = Rule(head, tuple(body))
    return [main_rule] + compiler.rules


def translate(graphical_query, domain_predicate=DOMAIN_PREDICATE):
    """Apply λ to a graphical query; returns a stratified Datalog Program.

    Validates the query first (including Definition 2.7 acyclicity).  The
    auxiliary-predicate namer is shared across member graphs, so identical
    closure literals in different graphs reuse one TC definition.

    Queries with path-summarization edges (Section 4) are outside plain
    Datalog; use :func:`translate_extended` for those.
    """
    with obs.span("translate.lambda") as span:
        if isinstance(graphical_query, QueryGraph):
            graphical_query = GraphicalQuery([graphical_query])
        graphical_query.validate()
        if any(graph.summaries for graph in graphical_query.graphs):
            raise TranslationError(
                "query uses path-summarization edges; use translate_extended "
                "(evaluated by the aggregate engine)"
            )
        reserved = set(graphical_query.idb_predicates)
        reserved |= graphical_query.edb_predicates
        reserved.add(domain_predicate)
        namer = PredicateNamer(reserved)
        rules = []
        for graph in graphical_query.graphs:
            rules.extend(translate_query_graph(graph, namer, domain_predicate))
        if span:
            span.annotate(
                graphs=len(graphical_query.graphs),
                rules=len(rules),
                defined=sorted(graphical_query.idb_predicates),
            )
        return Program(rules)


def translate_extended(graphical_query, domain_predicate=DOMAIN_PREDICATE):
    """λ plus Section 4 extensions: returns an AggregateProgram.

    Path-summarization edges compile to a :class:`PathSummaryRule` for an
    auxiliary summary predicate plus a body literal binding the value
    variable.  Structurally identical summaries (same weight relation and
    semiring) share one summary predicate.
    """
    from repro.aggregation.aggregates import AggregateProgram, PathSummaryRule

    if isinstance(graphical_query, QueryGraph):
        graphical_query = GraphicalQuery([graphical_query])
    graphical_query.validate()
    reserved = set(graphical_query.idb_predicates)
    reserved |= graphical_query.edb_predicates
    reserved.add(domain_predicate)
    namer = PredicateNamer(reserved)

    program = AggregateProgram()
    summary_predicates = {}
    for graph in graphical_query.graphs:
        extra_literals = []
        for summary in graph.summaries:
            semiring_name = getattr(summary.semiring, "name", str(summary.semiring))
            key = (summary.weight_predicate, semiring_name, summary.include_empty)
            name = summary_predicates.get(key)
            if name is None:
                hint = f"{summary.weight_predicate}-{str(semiring_name).split()[0]}"
                name, _fresh = namer.name_for(key, hint)
                summary_predicates[key] = name
                program.add(
                    PathSummaryRule(
                        name,
                        summary.weight_predicate,
                        summary.semiring,
                        include_empty=summary.include_empty,
                    )
                )
            atom = Atom(name, summary.source + summary.target + (summary.value_var,))
            extra_literals.append(Literal(atom))
        rules = translate_query_graph(graph, namer, domain_predicate)
        if extra_literals:
            main = rules[0]
            rules[0] = Rule(main.head, tuple(main.body) + tuple(extra_literals))
        for rule in rules:
            program.add(rule)
    return program
