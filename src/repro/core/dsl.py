"""A textual concrete syntax for GraphLog graphical queries.

The paper's visual formalism is isomorphic to this DSL: each ``define``
block is one query graph; its header is the distinguished edge; the block
body lists pattern edges and node annotations.

Example (the query of Figure 2)::

    define (P1) -[not-desc-of(P2)]-> (P3) {
        (P1) -[descendant+]-> (P3);
        (P2) -[~descendant+]-> (P3);
        person(P2);
    }

Syntax summary:

- nodes are parenthesized term sequences: ``(P1)``, ``(X, Y)``, ``(toronto)``
  (uppercase-initial names are variables, others constants);
- edges are ``-[<p.r.e.>]->`` (or ``<-[<p.r.e.>]-`` for the reverse
  direction); edge chains like ``(X) -[a]-> (Y) -[b]-> (Z)`` are allowed;
- the header edge label names the defined relation, with optional extra
  label arguments;
- a bare atom statement ``person(P2)`` annotates the node formed by its
  arguments with that predicate; prefix ``~`` or ``!`` negates it;
- statements are separated by ``;``; ``%`` and ``#`` start comments.

Several ``define`` blocks in one source form a graphical query.
"""

from __future__ import annotations

from repro.core.pre_parser import parse_pre_from_stream
from repro.core.pre import validate_pre
from repro.core.query_graph import GraphicalQuery, QueryGraph
from repro.datalog.lexer import TokenStream, tokenize
from repro.datalog.terms import Constant, Variable
from repro.errors import ParseError


def parse_graphical_query(source, name=None):
    """Parse one or more ``define`` blocks into a GraphicalQuery."""
    stream = TokenStream(tokenize(source))
    graphs = []
    while not stream.exhausted:
        graphs.append(_parse_define(stream))
    if not graphs:
        raise ParseError("no 'define' block found")
    query = GraphicalQuery(graphs, name=name)
    query.validate()
    return query


def parse_query_graph(source):
    """Parse exactly one ``define`` block into a QueryGraph."""
    stream = TokenStream(tokenize(source))
    graph = _parse_define(stream)
    if not stream.exhausted:
        token = stream.peek()
        raise ParseError("trailing input after define block", token.line, token.column)
    graph.validate()
    return graph


# --------------------------------------------------------------- internals


def _parse_define(stream):
    stream.expect("ident", "define")
    graph = QueryGraph()
    source = _parse_node(stream)
    _expect_edge_open(stream)
    predicate, extra = _parse_head_label(stream)
    _expect_edge_close(stream)
    target = _parse_node(stream)
    graph.distinguished(source, target, predicate, extra)
    stream.expect("punct", "{")
    while not stream.at_punct("}"):
        _parse_statement(stream, graph)
        if not stream.accept("punct", ";"):
            break
    stream.expect("punct", "}")
    return graph


def _parse_node(stream):
    stream.expect("punct", "(")
    terms = [_parse_node_term(stream)]
    while stream.accept("punct", ","):
        terms.append(_parse_node_term(stream))
    stream.expect("punct", ")")
    return tuple(terms)


def _parse_node_term(stream):
    token = stream.peek()
    if token.kind == "var":
        stream.next()
        return Variable(token.text)
    if token.kind == "ident":
        stream.next()
        return Constant(token.text)
    if token.kind in ("number", "string"):
        stream.next()
        return Constant(token.value)
    raise ParseError(
        f"expected a node term, found {token.text or token.kind!r}", token.line, token.column
    )


def _expect_edge_open(stream):
    stream.expect("punct", "-")
    stream.expect("punct", "[")


def _expect_edge_close(stream):
    stream.expect("punct", "]")
    stream.expect("punct", "->")


def _parse_head_label(stream):
    name = stream.expect("ident").text
    extra = []
    if stream.accept("punct", "("):
        if not stream.at_punct(")"):
            extra.append(_parse_node_term(stream))
            while stream.accept("punct", ","):
                extra.append(_parse_node_term(stream))
        stream.expect("punct", ")")
    return name, extra


def _parse_statement(stream, graph):
    if stream.at_punct("("):
        _parse_edge_chain(stream, graph)
        return
    positive = True
    if stream.at_punct("~") or stream.at_punct("!"):
        stream.next()
        positive = False
    token = stream.expect("ident")
    stream.expect("punct", "(")
    terms = [_parse_node_term(stream)]
    while stream.accept("punct", ","):
        terms.append(_parse_node_term(stream))
    stream.expect("punct", ")")
    graph.annotate(tuple(terms), token.text, positive=positive)


def _parse_summary_suffix(stream, pre):
    """Parse ``@ <semiring> <Var>`` after a weight predicate name."""
    from repro.core.pre import Pred

    if not isinstance(pre, Pred) or pre.args:
        raise ParseError(
            "the left side of '@' must be a bare weight predicate name"
        )
    stream.expect("punct", "@")
    semiring = stream.expect("ident").text
    token = stream.peek()
    if token.kind != "var":
        raise ParseError(
            f"expected a value variable after the semiring, found {token.text!r}",
            token.line,
            token.column,
        )
    stream.next()
    return pre.name, semiring, Variable(token.text)


def _parse_edge_chain(stream, graph):
    current = _parse_node(stream)
    seen_edge = False
    while True:
        if stream.at_punct("-") and stream.peek(1).text == "[":
            stream.next()
            stream.expect("punct", "[")
            pre = validate_pre(parse_pre_from_stream(stream))
            if stream.at_punct("@"):
                # Summarization edge (Section 4):
                #   (T1) -[moved-duration @ longest E]-> (T2)
                summary = _parse_summary_suffix(stream, pre)
                _expect_edge_close(stream)
                target = _parse_node(stream)
                graph.summarize(current, target, *summary)
                current = target
                seen_edge = True
                continue
            _expect_edge_close(stream)
            target = _parse_node(stream)
            graph.edge(current, target, pre)
            current = target
            seen_edge = True
            continue
        if stream.at_punct("<") and stream.peek(1).text == "-" and stream.peek(2).text == "[":
            stream.next()
            stream.next()
            stream.expect("punct", "[")
            pre = validate_pre(parse_pre_from_stream(stream))
            stream.expect("punct", "]")
            stream.expect("punct", "-")
            source = _parse_node(stream)
            graph.edge(source, current, pre)
            current = source
            seen_edge = True
            continue
        break
    if not seen_edge:
        token = stream.peek()
        raise ParseError("expected an edge after node", token.line, token.column)
