"""A catalog of reusable GraphLog query patterns.

The paper motivates GraphLog with "real life" recursive queries —
reachability, genealogy, circular dependencies, hypertext structure.  This
module packages those archetypes as parameterized query builders so
applications compose them instead of re-drawing the same graphs.  Every
builder returns a validated :class:`GraphicalQuery`.
"""

from __future__ import annotations

from repro.core.pre import Closure, Pred, alt, closure, inverse, rel, star
from repro.core.query_graph import GraphicalQuery


def reachability(edge="edge", name="reachable"):
    """``name(X, Y)``: one or more *edge* steps from X to Y."""
    query = GraphicalQuery(name=name)
    graph = query.define("X", "Y", name)
    graph.edge("X", "Y", closure(edge))
    return query.validate()


def reachable_from(source, edge="edge", name="reached"):
    """``name(s, Y)``: nodes reachable from the constant *source*."""
    query = GraphicalQuery(name=name)
    graph = query.define((source,), "Y", name)
    graph.edge((source,), "Y", closure(edge))
    return query.validate()


def connected(edge="edge", name="connected"):
    """``name(X, Y)``: X and Y joined ignoring edge direction (≥1 step)."""
    query = GraphicalQuery(name=name)
    graph = query.define("X", "Y", name)
    graph.edge("X", "Y", closure(alt(rel(edge), inverse(edge))))
    return query.validate()


def in_cycle(edge="edge", name="in-cycle"):
    """``name(X, X)``: X lies on a directed *edge* cycle (a loop relation)."""
    query = GraphicalQuery(name=name)
    graph = query.define("X", "X", name)
    graph.edge("X", "X", closure(edge))
    return query.validate()


def sources_and_sinks(edge="edge", source_name="source", sink_name="sink"):
    """Loop relations marking nodes with no incoming / no outgoing edge.

    Three query graphs: ``has-in``/``has-out`` helpers plus the negated
    forms (GraphLog's way of universally quantifying).
    """
    query = GraphicalQuery(name=f"{source_name}/{sink_name}")
    has_in = query.define("X", "X", "has-in")
    has_in.edge("Z", "X", edge)
    has_out = query.define("X", "X", "has-out")
    has_out.edge("X", "Z", edge)
    source = query.define("X", "X", source_name)
    source.edge("X", "Y", edge)  # X participates in the graph
    source.edge("X", "X", "~has-in")
    sink = query.define("X", "X", sink_name)
    sink.edge("Y", "X", edge)
    sink.edge("X", "X", "~has-out")
    return query.validate()


def ancestors(parent="parent", name="ancestor"):
    """``name(A, D)``: A is a proper ancestor of D via *parent* edges
    (``parent(P, C)`` read as P is a parent of C)."""
    query = GraphicalQuery(name=name)
    graph = query.define("A", "D", name)
    graph.edge("A", "D", closure(parent))
    return query.validate()


def siblings(parent="parent", name="sibling"):
    """``name(X, Y)``: distinct X, Y sharing some parent."""
    query = GraphicalQuery(name=name)
    graph = query.define("X", "Y", name)
    graph.edge("P", "X", parent)
    graph.edge("P", "Y", parent)
    graph.edge("X", "Y", "!=")
    return query.validate()


def same_generation(parent="parent", name="same-generation"):
    """``name(X, Y)``: X and Y at equal depth below a common ancestor.

    The classic linear-Datalog example drawn GraphLog-style: a Kleene star
    over *pairs* climbing one generation at a time, ending at a pair
    ``(Z, Z)`` — the common ancestor.  (This is the Figure 8 query without
    the ``person``-reflexivity base; X is same-generation with itself when
    some ancestor exists, and with Y when they meet at equal height.)
    """
    query = GraphicalQuery(name=name)
    up_pair = query.define(("X", "Y"), ("U", "V"), "up-pair")
    up_pair.edge("U", "X", parent)
    up_pair.edge("V", "Y", parent)
    graph = query.define("X", "Y", name)
    graph.edge(("X", "Y"), ("Z", "Z"), star("up-pair"))
    return query.validate()


def bottlenecks(edge="edge", through="T", name="bottleneck"):
    """``name(X, Y, T)``: every X->Y connection passes through T.

    Drawn with negation of an auxiliary: avoid(X, Y, T) holds when X
    reaches Y without visiting T.
    """
    query = GraphicalQuery(name=name)
    # avoid(X, Y, T): an edge+ path where each intermediate differs from T —
    # needs per-step qualification, which plain closure cannot express;
    # approximate with the standard two-hop unfolding is wrong, so instead:
    # reach-not-via(X, Y, T) defined recursively is disallowed (no explicit
    # recursion).  The classic trick: closure over the edge relation
    # restricted by the label argument (Definition 2.4's "same value along
    # the path").  We require an edge relation tagged with the avoided node:
    # not expressible over a bare binary edge, so this builder asks for a
    # ternary relation avoid-edge(U, V, T) = edge(U, V), U != T, V != T,
    # which the first query graph defines.
    avoid_edge = query.define("U", "V", "avoid-edge", extra=["T"])
    avoid_edge.edge("U", "V", edge)
    avoid_edge.edge("U", "T", "!=")
    avoid_edge.edge("V", "T", "!=")
    avoid_edge.annotate("T", "node")
    avoids = query.define("X", "Y", "avoids", extra=["T"])
    avoids.edge("X", "Y", Closure(Pred("avoid-edge", ("T",))))
    graph = query.define("X", "Y", name, extra=[through])
    graph.edge("X", "Y", closure(edge))
    graph.edge("X", "Y", ~Pred("avoids", (through,)))
    graph.annotate(through, "node")
    graph.edge("X", through, "!=")
    graph.edge("Y", through, "!=")
    return query.validate()


def table_of_contents(contains="contains", next_link="next", name="toc"):
    """Hypertext ([CM89]): ``name(D, S0, C)``: C is reachable in reading
    order from the first contained section S0 of document D."""
    query = GraphicalQuery(name=name)
    graph = query.define("D", "S0", name, extra=["C"])
    graph.edge("D", "S0", contains)
    graph.edge("S0", "C", star(next_link))
    return query.validate()


CATALOG = {
    "reachability": reachability,
    "connected": connected,
    "in_cycle": in_cycle,
    "sources_and_sinks": sources_and_sinks,
    "ancestors": ancestors,
    "siblings": siblings,
    "same_generation": same_generation,
    "bottlenecks": bottlenecks,
    "table_of_contents": table_of_contents,
}
