"""Parser for textual path regular expressions.

Syntax (precedence from loosest to tightest)::

    expr      := cat ('|' cat)*
    cat       := prefixed (prefixed | '.' prefixed)*       # juxtaposition
    prefixed  := '-' prefixed | '~' prefixed | '!' prefixed | postfixed
    postfixed := primary ('+' | '*' | '?')*
    primary   := IDENT ['(' args ')'] | '=' | '!=' | '(' expr ')'
    args      := (VAR | '_' | constant) (',' ...)*

Examples::

    descendant+
    ~descendant+                      # negated closure
    (father | mother(_))* residence
    -from to                          # inversion composed with a literal
"""

from __future__ import annotations

from repro.core.pre import (
    Alternation,
    Closure,
    ComparisonPrimitive,
    Composition,
    Equality,
    Inequality,
    Inversion,
    Negation,
    Optional,
    Pred,
    Star,
    validate_pre,
)
from repro.datalog.lexer import TokenStream, tokenize
from repro.datalog.terms import Constant, Variable
from repro.errors import ParseError

_PRIMARY_START_PUNCT = ("(", "=", "!=", "-", "~", "!", "<", "<=", ">", ">=")


def parse_pre(source):
    """Parse and validate a path regular expression from text."""
    stream = TokenStream(tokenize(source))
    expr = parse_pre_from_stream(stream)
    if not stream.exhausted:
        token = stream.peek()
        raise ParseError("trailing input after path expression", token.line, token.column)
    return validate_pre(expr)


def parse_pre_from_stream(stream):
    """Parse a p.r.e. starting at the stream cursor (no validation)."""
    return _parse_alternation(stream)


def _parse_alternation(stream):
    expr = _parse_concatenation(stream)
    while stream.at_punct("|"):
        stream.next()
        expr = Alternation(expr, _parse_concatenation(stream))
    return expr


def _starts_primary(stream):
    token = stream.peek()
    if token.kind == "ident":
        return True
    return token.kind == "punct" and token.text in _PRIMARY_START_PUNCT


def _parse_concatenation(stream):
    expr = _parse_prefixed(stream)
    while True:
        if stream.at_punct("."):
            stream.next()
            expr = Composition(expr, _parse_prefixed(stream))
            continue
        if _starts_primary(stream):
            expr = Composition(expr, _parse_prefixed(stream))
            continue
        return expr


def _parse_prefixed(stream):
    if stream.at_punct("-"):
        stream.next()
        return Inversion(_parse_prefixed(stream))
    if stream.at_punct("~") or stream.at_punct("!"):
        stream.next()
        return Negation(_parse_prefixed(stream))
    return _parse_postfixed(stream)


def _parse_postfixed(stream):
    expr = _parse_primary(stream)
    while True:
        if stream.at_punct("+"):
            stream.next()
            expr = Closure(expr)
        elif stream.at_punct("*"):
            stream.next()
            expr = Star(expr)
        elif stream.at_punct("?"):
            stream.next()
            expr = Optional(expr)
        else:
            return expr


def _parse_primary(stream):
    token = stream.peek()
    if stream.at_punct("="):
        stream.next()
        return Equality()
    if stream.at_punct("!="):
        stream.next()
        return Inequality()
    if stream.at_punct("<", "<=", ">", ">="):
        return ComparisonPrimitive(stream.next().text)
    if stream.at_punct("("):
        stream.next()
        expr = _parse_alternation(stream)
        stream.expect("punct", ")")
        return expr
    if token.kind == "ident":
        stream.next()
        args = []
        if stream.at_punct("(") and _looks_like_argument_list(stream):
            # Disambiguation: "mother(_)" is a literal with arguments, while
            # "calls-extn (calls-local | calls-extn)*" is a composition whose
            # right operand is parenthesized.  A parenthesized group counts
            # as an argument list only when it is a comma-separated sequence
            # of plain terms.  (Whitespace is not significant; to compose
            # with a single parenthesized literal, write "f . (g)".)
            stream.next()
            if not stream.at_punct(")"):
                args.append(_parse_argument(stream))
                while stream.accept("punct", ","):
                    args.append(_parse_argument(stream))
            stream.expect("punct", ")")
        return Pred(token.text, args)
    raise ParseError(
        f"expected a path expression, found {token.text or token.kind!r}",
        token.line,
        token.column,
    )


def _looks_like_argument_list(stream):
    """Lookahead from an opening '(': true when the parenthesized group is a
    comma-separated sequence of plain terms (vars, constants, numbers,
    strings), i.e. a literal's argument list rather than a subexpression."""
    ahead = 1  # skip the '('
    expecting_term = True
    while True:
        token = stream.peek(ahead)
        if token.kind == "eof":
            return False
        if token.kind == "punct" and token.text == ")":
            # Empty "()" or trailing ")" after a term both qualify.
            return not expecting_term or ahead == 1
        if expecting_term:
            if token.kind in ("var", "ident", "number", "string"):
                expecting_term = False
                ahead += 1
                continue
            if token.kind == "punct" and token.text == "-" and stream.peek(ahead + 1).kind == "number":
                expecting_term = False
                ahead += 2
                continue
            return False
        if token.kind == "punct" and token.text == ",":
            expecting_term = True
            ahead += 1
            continue
        return False


def _parse_argument(stream):
    token = stream.peek()
    if token.kind == "var":
        stream.next()
        return Variable(token.text)
    if stream.at_punct("_"):
        stream.next()
        return Variable("_")
    if token.kind == "ident":
        stream.next()
        return Constant(token.text)
    if token.kind in ("number", "string"):
        stream.next()
        return Constant(token.value)
    if stream.at_punct("-") and stream.peek(1).kind == "number":
        stream.next()
        number = stream.next()
        return Constant(-number.value)
    raise ParseError(
        f"expected an argument, found {token.text or token.kind!r}", token.line, token.column
    )
