"""Query graphs and graphical queries (Definitions 2.3, 2.5-2.7).

A :class:`QueryGraph` is a directed labeled multigraph whose nodes are
labeled by sequences of variables and whose edges are labeled by path
regular expressions, with one *distinguished edge* labeled by a positive,
non-closure literal: the relation the graph defines.

A :class:`GraphicalQuery` is a finite set of query graphs; its *dependence
graph* (Definition 2.6) must be acyclic (Definition 2.7) — recursion is only
implicit, through closure literals.

Node annotations (the paper draws unary predicates like ``person`` directly
on a node) are supported first-class: they translate to extra body literals.
"""

from __future__ import annotations

from repro.core.pre import Alternation, Closure, ComparisonPrimitive, Equality, Inequality, Inversion, Optional, PathRegex, Pred, Star, strip_outer_negation, validate_pre
from repro.core.pre_parser import parse_pre
from repro.datalog.stratify import DependenceGraph
from repro.datalog.terms import Constant, Variable, make_term
from repro.errors import (
    DependenceCycleError,
    GhostVariableError,
    QueryGraphError,
)


def _normalize_node(spec):
    """Coerce a node spec into a tuple of terms.

    Accepts a string (one term: uppercase-initial names become variables,
    everything else constants, per :func:`make_term`), an iterable of
    names/terms, or a Variable/Constant.  Nodes are identified by their term
    sequence (the one-one correspondence the paper recommends in footnote 2).
    Constants are allowed in node labels as a practical extension (e.g. a
    node pinned to the city ``toronto`` in Figure 5).
    """
    if isinstance(spec, (Variable, Constant)):
        return (spec,)
    if isinstance(spec, str):
        return (make_term(spec),)
    members = []
    for item in spec:
        if isinstance(item, (Variable, Constant)):
            members.append(item)
        elif isinstance(item, str):
            members.append(make_term(item))
        else:
            members.append(Constant(item))
    if not members:
        raise QueryGraphError("a query-graph node needs at least one term")
    return tuple(members)


def _coerce_pre(label):
    if isinstance(label, PathRegex):
        return label
    if isinstance(label, str):
        return parse_pre(label)
    raise TypeError(f"edge label must be a PathRegex or string, got {type(label).__name__}")


class QueryEdge:
    """A non-distinguished edge of a query graph."""

    __slots__ = ("source", "target", "pre")

    def __init__(self, source, target, pre):
        self.source = source  # tuple of Variables
        self.target = target
        self.pre = pre

    def variables(self):
        out = {t for t in self.source + self.target if isinstance(t, Variable)}
        out |= {v for v in self.pre.all_variables()}
        return out

    def __repr__(self):
        return f"QueryEdge({_fmt_node(self.source)} -[{self.pre}]-> {_fmt_node(self.target)})"


class NodeAnnotation:
    """A predicate attached directly to a node (e.g. ``person`` on P2)."""

    __slots__ = ("node", "predicate", "extra", "positive")

    def __init__(self, node, predicate, extra=(), positive=True):
        self.node = node
        self.predicate = str(predicate)
        self.extra = tuple(make_term(t) for t in extra)
        self.positive = bool(positive)

    def variables(self):
        out = {t for t in self.node if isinstance(t, Variable)}
        out |= {t for t in self.extra if isinstance(t, Variable)}
        return out

    def __repr__(self):
        sign = "" if self.positive else "~"
        extra = f"({', '.join(map(str, self.extra))})" if self.extra else ""
        return f"NodeAnnotation({sign}{self.predicate}{extra} on {_fmt_node(self.node)})"


class SummaryPathEdge:
    """A Section 4 path-summarization edge.

    Relates two single-term nodes through *all* paths of a weighted edge
    relation: ``value_var`` is bound to the semiring summary (e.g. the
    longest sum of durations, Figure 11's earlier-start).
    """

    __slots__ = ("source", "target", "weight_predicate", "semiring", "value_var",
                 "include_empty")

    def __init__(self, source, target, weight_predicate, semiring, value_var,
                 include_empty=False):
        self.source = source
        self.target = target
        self.weight_predicate = str(weight_predicate)
        self.semiring = semiring  # name or Semiring instance
        self.value_var = (
            value_var if isinstance(value_var, Variable) else Variable(str(value_var))
        )
        self.include_empty = bool(include_empty)

    def variables(self):
        out = {t for t in self.source + self.target if isinstance(t, Variable)}
        out.add(self.value_var)
        return out

    def __repr__(self):
        return (
            f"SummaryPathEdge({_fmt_node(self.source)} -[{self.weight_predicate} @ "
            f"{self.semiring} {self.value_var}]-> {_fmt_node(self.target)})"
        )


class DistinguishedEdge:
    """The distinguished edge: a positive non-closure literal (Def. 2.2)."""

    __slots__ = ("source", "target", "predicate", "extra")

    def __init__(self, source, target, predicate, extra=()):
        self.source = source
        self.target = target
        self.predicate = str(predicate)
        self.extra = tuple(make_term(t) for t in extra)

    @property
    def head_terms(self):
        return self.source + self.target + self.extra

    @property
    def arity(self):
        return len(self.head_terms)

    def variables(self):
        out = {t for t in self.source + self.target if isinstance(t, Variable)}
        out |= {t for t in self.extra if isinstance(t, Variable)}
        return out

    def __repr__(self):
        extra = f"({', '.join(map(str, self.extra))})" if self.extra else ""
        return (
            f"DistinguishedEdge({_fmt_node(self.source)} =[{self.predicate}{extra}]=> "
            f"{_fmt_node(self.target)})"
        )


def _fmt_node(node):
    return "(" + ", ".join(str(t) for t in node) + ")"


class QueryGraph:
    """Builder/model for one query graph.

    Typical use::

        g = QueryGraph()
        g.edge("P1", "P3", "descendant+")
        g.edge("P2", "P3", "~descendant+")
        g.annotate("P2", "person")
        g.distinguished("P1", "P3", "not-desc-of", extra=["P2"])
        g.validate()
    """

    def __init__(self, name=None):
        self.name = name
        self._nodes = {}  # variable tuple -> variable tuple (insertion order)
        self.edges = []
        self.annotations = []
        self.summaries = []
        self.distinguished_edge = None

    # ------------------------------------------------------------ builder

    def node(self, spec):
        node = _normalize_node(spec)
        self._nodes.setdefault(node, node)
        return node

    def edge(self, source, target, label):
        """Add a pattern edge; *label* is a PathRegex or p.r.e. text."""
        pre = validate_pre(_coerce_pre(label))
        edge = QueryEdge(self.node(source), self.node(target), pre)
        self.edges.append(edge)
        return edge

    def summarize(self, source, target, weight_predicate, semiring, value,
                  include_empty=False):
        """Add a path-summarization edge (Section 4).

        ``weight_predicate`` names an arity-3 relation ``w(u, v, weight)``
        (possibly defined by another query graph); ``value`` is the variable
        receiving the per-pair summary under *semiring* (a standard name
        like "longest" or a Semiring instance).
        """
        source = self.node(source)
        target = self.node(target)
        if len(source) != 1 or len(target) != 1:
            raise QueryGraphError("summary edges need single-term nodes")
        edge = SummaryPathEdge(source, target, weight_predicate, semiring, value,
                               include_empty)
        self.summaries.append(edge)
        return edge

    def annotate(self, node_spec, predicate, *extra, positive=True):
        """Attach a predicate to a node (extra args allowed)."""
        annotation = NodeAnnotation(self.node(node_spec), predicate, extra, positive)
        self.annotations.append(annotation)
        return annotation

    def distinguished(self, source, target, predicate, extra=()):
        """Set the distinguished edge; its label names the defined relation."""
        if self.distinguished_edge is not None:
            raise QueryGraphError("a query graph has exactly one distinguished edge")
        self.distinguished_edge = DistinguishedEdge(
            self.node(source), self.node(target), predicate, extra
        )
        if self.name is None:
            self.name = self.distinguished_edge.predicate
        return self.distinguished_edge

    # ----------------------------------------------------------- analysis

    @property
    def nodes(self):
        return list(self._nodes)

    @property
    def head_predicate(self):
        if self.distinguished_edge is None:
            raise QueryGraphError("query graph has no distinguished edge")
        return self.distinguished_edge.predicate

    def body_predicates(self):
        """Predicate names used on non-distinguished edges and annotations."""
        names = set()
        for edge in self.edges:
            for sub in edge.pre.walk():
                if isinstance(sub, Pred):
                    names.add(sub.name)
        for annotation in self.annotations:
            names.add(annotation.predicate)
        for summary in self.summaries:
            names.add(summary.weight_predicate)
        return names

    def variables(self):
        out = set()
        for edge in self.edges:
            out |= edge.variables()
        for annotation in self.annotations:
            out |= annotation.variables()
        for summary in self.summaries:
            out |= summary.variables()
        if self.distinguished_edge is not None:
            out |= self.distinguished_edge.variables()
        return out

    # --------------------------------------------------------- validation

    def validate(self):
        """Check the conditions of Definition 2.3 plus ghost-variable scope."""
        if self.distinguished_edge is None:
            raise QueryGraphError("query graph has no distinguished edge")
        if not self.edges and not self.annotations and not self.summaries:
            raise QueryGraphError(
                "query graph has no pattern edges; the distinguished edge needs a pattern"
            )
        self._check_isolated_nodes()
        self._check_edge_shapes()
        self._check_ghost_scopes()
        return self

    def _check_isolated_nodes(self):
        incident = set()
        for edge in self.edges:
            incident.add(edge.source)
            incident.add(edge.target)
        for annotation in self.annotations:
            incident.add(annotation.node)
        for summary in self.summaries:
            incident.add(summary.source)
            incident.add(summary.target)
        if self.distinguished_edge is not None:
            incident.add(self.distinguished_edge.source)
            incident.add(self.distinguished_edge.target)
        isolated = set(self._nodes) - incident
        if isolated:
            names = ", ".join(_fmt_node(n) for n in sorted(isolated, key=str))
            raise QueryGraphError(f"isolated node(s) in query graph: {names}")

    def _check_edge_shapes(self):
        for edge in self.edges:
            inner, _positive = strip_outer_negation(edge.pre)
            k1, k2 = len(edge.source), len(edge.target)
            if isinstance(inner, (Closure, Star, Optional, Equality, Inequality)) and k1 != k2:
                raise QueryGraphError(
                    f"closure/star/equality edge requires equal node lengths, got "
                    f"{k1} and {k2} on {edge!r}"
                )
            if isinstance(inner, ComparisonPrimitive) and (k1 != 1 or k2 != 1):
                raise QueryGraphError(
                    f"comparison edge {inner} requires single-term nodes, got {edge!r}"
                )
            if (k1 != 1 or k2 != 1) and not _supports_width(inner):
                raise QueryGraphError(
                    f"composition/alternation path expressions are supported "
                    f"between single-variable nodes only, got {edge!r}"
                )

    def _check_ghost_scopes(self):
        """A ghost variable of an alternation must not occur outside it
        anywhere in the query graph (Section 2)."""
        for edge in self.edges:
            inner, _positive = strip_outer_negation(edge.pre)
            for sub in inner.walk():
                ghosts = set()
                if isinstance(sub, Alternation):
                    ghosts = sub.ghost_variables()
                elif isinstance(sub, (Star, Optional)):
                    # Star/Optional desugar to an alternation with "=";
                    # every label variable inside is a ghost of that scope.
                    ghosts = set(sub.inner.label_variables())
                if not ghosts:
                    continue
                outside = self._variables_outside(edge, sub)
                escaped = ghosts & outside
                if escaped:
                    names = ", ".join(sorted(v.name for v in escaped))
                    raise GhostVariableError(
                        f"ghost variable(s) {names} of {sub} escape their scope "
                        f"in query graph {self.name or '?'}"
                    )

    def _variables_outside(self, scope_edge, scope_sub):
        outside = set()
        for edge in self.edges:
            if edge is scope_edge:
                inner, _sign = strip_outer_negation(edge.pre)
                outside |= _vars_excluding(inner, scope_sub)
            else:
                outside |= edge.variables()
        for annotation in self.annotations:
            outside |= annotation.variables()
        if self.distinguished_edge is not None:
            outside |= self.distinguished_edge.variables()
        # Node label variables count as "outside" occurrences too.
        for node in self._nodes:
            outside |= {t for t in node if isinstance(t, Variable)}
        return outside


def _vars_excluding(root, scope):
    out = set()

    def visit(node):
        if node is scope:
            return
        if isinstance(node, Pred):
            out.update(node.all_variables())
        for child in node._children():
            visit(child)

    visit(root)
    return out


def _supports_width(expr):
    """Can this expression label an edge between multi-term nodes?

    Closure/star/optional/inversion chains over a bare literal compile at
    any width; composition and alternation are hard-wired to width 1."""
    while isinstance(expr, (Closure, Star, Optional, Inversion)):
        expr = expr.inner
    return isinstance(expr, Pred)


class GraphicalQuery:
    """A finite set of query graphs with an acyclic dependence graph."""

    def __init__(self, graphs=(), name=None):
        self.name = name
        self.graphs = []
        for graph in graphs:
            self.add(graph)

    def add(self, graph):
        if not isinstance(graph, QueryGraph):
            raise TypeError("GraphicalQuery holds QueryGraph objects")
        self.graphs.append(graph)
        return graph

    def define(self, source, target, predicate, extra=()):
        """Start a new query graph with its distinguished edge set."""
        graph = QueryGraph()
        graph.distinguished(source, target, predicate, extra)
        self.add(graph)
        return graph

    # ----------------------------------------------------------- analysis

    @property
    def idb_predicates(self):
        """Predicates labeling some distinguished edge (Definition 2.5)."""
        return {g.head_predicate for g in self.graphs}

    @property
    def edb_predicates(self):
        used = set()
        for graph in self.graphs:
            used |= graph.body_predicates()
        return used - self.idb_predicates

    def dependence_graph(self):
        """The dependence graph of Definition 2.6."""
        graph = DependenceGraph()
        for query_graph in self.graphs:
            head = query_graph.head_predicate
            graph.nodes.add(head)
            for used in query_graph.body_predicates():
                graph.add_edge(used, head)
        return graph

    def validate(self):
        """Validate every member graph and the acyclicity of Definition 2.7."""
        if not self.graphs:
            raise QueryGraphError("graphical query contains no query graphs")
        for graph in self.graphs:
            graph.validate()
        dependence = self.dependence_graph()
        if not dependence.is_acyclic():
            raise DependenceCycleError(
                "dependence graph of the graphical query is cyclic; GraphLog "
                "forbids explicit recursion (Definition 2.7) - use closure "
                "literals instead"
            )
        return self

    def __iter__(self):
        return iter(self.graphs)

    def __len__(self):
        return len(self.graphs)

    def __repr__(self):
        heads = ", ".join(g.head_predicate for g in self.graphs if g.distinguished_edge)
        return f"GraphicalQuery([{heads}])"
