"""Blocking TCP client for the query service.

Speaks the JSON-lines protocol of :mod:`repro.service.protocol` over one
socket.  Server-side failures are re-raised locally with the matching
exception from the service taxonomy (``QueryTimeout``, ``ResultTooLarge``,
``ProtocolError``, generic ``ServiceError``).  One client wraps one
connection and is not thread-safe; concurrent callers should each open
their own (connections are cheap, the server multiplexes them).

Retries are opt-in (``retries=N``) and deliberately narrow: a failed
*connect* and a failed *send* are retried on a fresh connection with
exponential backoff and jitter, because in both cases the server cannot
have executed the request (an incomplete line is never dispatched).  A
failure after the request was fully sent — a receive timeout, a closed
connection, a desync — is **never** retried: the server may have applied
the request, and replaying an ``update`` would double-commit it.
"""

from __future__ import annotations

import itertools
import json
import random
import socket
import time

from repro.errors import ServiceError
from repro.service import protocol


class _Retryable(Exception):
    """Internal: wraps a ServiceError that is safe to retry (the request
    was provably not executed by the server)."""

    def __init__(self, error):
        super().__init__(str(error))
        self.error = error


class ServiceClient:
    """One connection to a running :class:`~repro.service.server.ServiceServer`."""

    def __init__(
        self,
        host="127.0.0.1",
        port=7464,
        timeout=60.0,
        retries=0,
        backoff_base=0.05,
        backoff_max=2.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._ids = itertools.count(1)
        self._poisoned = False
        self._sock = None
        self._reader = None
        attempt = 0
        while True:
            try:
                self._connect()
                break
            except ServiceError:
                if attempt >= self.retries:
                    raise
                time.sleep(self._backoff(attempt))
                attempt += 1

    @property
    def poisoned(self):
        """True once the request/response stream can no longer be trusted."""
        return self._poisoned

    def _connect(self):
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        self._reader = self._sock.makefile("rb")
        self._poisoned = False

    def _backoff(self, attempt):
        delay = min(self.backoff_max, self.backoff_base * (2**attempt))
        return delay * (0.5 + random.random())  # full jitter: 0.5x .. 1.5x

    # ------------------------------------------------------------------ raw

    def call(self, op, **payload):
        """Send one request, wait for its response, raise on failure.

        Returns the full response dict (``result``, ``version``,
        ``elapsed_ms``, ``cache``).

        The connection is *poisoned* (closed, all later calls fail fast)
        whenever the request/response pairing can no longer be trusted: a
        client-side socket timeout leaves the server's eventual response
        buffered on the wire, where a later call would read it and
        misattribute it — the id check alone can't save a pipelined
        sequence once the stream has slipped by one message.

        With ``retries=N``, a poisoned (or never-established) connection is
        transparently re-opened — the old stream stays dead, so no stale
        bytes can leak — and connect/send failures are re-attempted up to N
        times with backoff.  Failures after a complete send still surface
        immediately (see the module docstring).
        """
        payload = {k: v for k, v in payload.items() if v is not None}
        attempt = 0
        while True:
            try:
                return self._call_once(op, payload)
            except _Retryable as exc:
                if attempt >= self.retries:
                    raise exc.error from exc.error.__cause__
                time.sleep(self._backoff(attempt))
                attempt += 1

    def _call_once(self, op, payload):
        if self._sock is None or self._poisoned:
            if self.retries == 0:
                raise ServiceError(
                    "connection is poisoned by an earlier timeout or protocol "
                    "desync; open a new ServiceClient"
                )
            try:
                self._connect()
            except ServiceError as exc:
                raise _Retryable(exc) from exc
        # Local refs: close() from another thread (to abort a long-poll)
        # nulls the attributes; the socket errors below cover that race.
        sock, reader = self._sock, self._reader
        request_id = next(self._ids)
        message = {"id": request_id, "op": op}
        message.update(payload)
        try:
            sock.sendall(protocol.encode(message))
        except OSError as exc:
            # Covers TimeoutError too: sendall raised, so the trailing
            # newline never reached the wire and the server will not
            # dispatch the partial line — safe to retry on a new socket.
            self._poison()
            error = ServiceError(f"connection to {self.host}:{self.port} failed: {exc}")
            error.__cause__ = exc
            raise _Retryable(error)
        try:
            line = reader.readline()
        except TimeoutError as exc:
            # socket.timeout is TimeoutError on 3.10+; catch before OSError.
            self._poison()
            raise ServiceError(
                f"timed out waiting for {self.host}:{self.port}; connection "
                f"closed to avoid reading the stale response later: {exc}"
            ) from exc
        except ValueError as exc:
            # reader.readline() on a file object close()d mid-call.
            self._poison()
            raise ServiceError(
                f"connection to {self.host}:{self.port} was closed: {exc}"
            ) from exc
        except OSError as exc:
            self._poison()
            raise ServiceError(
                f"connection to {self.host}:{self.port} failed: {exc}"
            ) from exc
        if not line:
            self._poison()
            raise ServiceError("server closed the connection")
        try:
            response = json.loads(line)
        except ValueError as exc:
            self._poison()
            raise ServiceError(f"server sent invalid JSON: {exc}") from exc
        # Match ids BEFORE interpreting the body: a buffered stale response
        # must not surface its error (or worse, its result) as this call's.
        # ``id: null`` is allowed through — the server answers undecodable
        # requests without an id.
        response_id = response.get("id")
        if response_id is not None and response_id != request_id:
            self._poison()
            raise ServiceError(
                f"response id {response_id!r} does not match request "
                f"{request_id}; connection closed (protocol desync)"
            )
        protocol.raise_for_error(response)
        return response

    def _poison(self):
        self._poisoned = True
        try:
            self.close()
        except OSError:  # pragma: no cover - close errors are best-effort
            pass

    # ---------------------------------------------------------- operations

    def graphlog(self, query, predicate=None, method=None, **limits):
        """Evaluate a GraphLog DSL query; returns ``{predicate: set of rows}``."""
        response = self.call(
            "graphlog", query=query, predicate=predicate, method=method, **limits
        )
        return _relations(response)

    def datalog(self, program, predicate=None, method=None, **limits):
        """Evaluate a Datalog program; returns ``{predicate: set of rows}``."""
        response = self.call(
            "datalog", query=program, predicate=predicate, method=method, **limits
        )
        return _relations(response)

    def rpq(self, regex, source=None, **limits):
        """Evaluate a regular path query; returns a set of answer tuples."""
        response = self.call("rpq", query=regex, source=source, **limits)
        return _relations(response)["answers"]

    def update(self, nodes=None, edges=None):
        """Commit node/edge insertions; returns the new store version."""
        response = self.call("update", nodes=nodes, edges=edges)
        return response["version"]

    def explain(self, query, target="graphlog", **params):
        """Trace one query end to end; returns the explain result dict.

        The result carries ``trace`` (the span tree), ``text`` (rendered
        ASCII), ``phases`` (top-level phase → ms) and per-relation counts.
        Caches are bypassed on the server so the trace always covers
        compilation and evaluation.
        """
        response = self.call("explain", query=query, target=target, **params)
        return response["result"]

    def profile(self, query, target="graphlog", **params):
        """Like :meth:`explain` without the rendered ASCII tree."""
        response = self.call("profile", query=query, target=target, **params)
        return response["result"]

    def checkpoint(self):
        """Force a durability checkpoint on the server; returns its info
        dict (``version``, ``path``, segments pruned, elapsed ms).  Fails
        with :class:`~repro.errors.ProtocolError` when the server runs
        without ``--data-dir``."""
        return self.call("checkpoint")["result"]

    def stats(self):
        """The server's metrics/cache/store statistics snapshot."""
        return self.call("stats")["result"]

    def slowlog(self, limit=None):
        """The server's slow-query log, newest first.

        Returns ``{"entries": [...], "stats": {...}}``; each entry carries
        the originating ``request_id``, op, elapsed/threshold milliseconds
        and (for traced requests) the full span tree under ``trace``.
        """
        return self.call("slowlog", limit=limit)["result"]

    def repl_bootstrap(self):
        """The server's replication bootstrap document (see
        :meth:`repro.replication.ReplicationSource.bootstrap`)."""
        return self.call("repl_bootstrap")["result"]

    def repl_tail(self, from_version, max_records=None, wait_ms=None):
        """Commit records after *from_version* (see
        :meth:`repro.replication.ReplicationSource.tail`)."""
        return self.call(
            "repl_tail",
            from_version=from_version,
            max_records=max_records,
            wait_ms=wait_ms,
        )["result"]

    def promote(self):
        """Promote the connected *replica* to a writable primary under a
        fresh epoch (see :meth:`repro.service.server.QueryService.promote`).
        Fails with :class:`~repro.errors.ProtocolError` when the server is
        not a replica.  Returns the promotion document (``promoted_from``,
        ``applied_version``, ``epoch``)."""
        return self.call("promote")["result"]

    def ping(self):
        return self.call("ping")["result"]["pong"]

    # ------------------------------------------------------------ lifecycle

    def close(self):
        reader, self._reader = self._reader, None
        sock, self._sock = self._sock, None
        if sock is not None:
            # shutdown() (unlike close()) reliably unblocks another thread
            # parked in recv() on this socket — the replica applier closes
            # its client from the stopping thread to abort a long-poll.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        try:
            if reader is not None:
                reader.close()
        finally:
            if sock is not None:
                sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()


def _relations(response):
    return {
        name: {tuple(row) for row in rows}
        for name, rows in response["result"]["relations"].items()
    }
