"""Blocking TCP client for the query service.

Speaks the JSON-lines protocol of :mod:`repro.service.protocol` over one
socket.  Server-side failures are re-raised locally with the matching
exception from the service taxonomy (``QueryTimeout``, ``ResultTooLarge``,
``ProtocolError``, generic ``ServiceError``).  One client wraps one
connection and is not thread-safe; concurrent callers should each open
their own (connections are cheap, the server multiplexes them).

Retries are opt-in (``retries=N``) and deliberately narrow: a failed
*connect* and a failed *send* are retried on a fresh connection with
exponential backoff and jitter, because in both cases the server cannot
have executed the request (an incomplete line is never dispatched).  A
failure after the request was fully sent — a receive timeout, a closed
connection, a desync — is **never** retried: the server may have applied
the request, and replaying an ``update`` would double-commit it.

Subscriptions (:meth:`ServiceClient.subscribe`) interleave asynchronous
push frames with responses on the same socket; the client demultiplexes on
the ``"frame"`` key and applies deltas to a local materialized result set
(:class:`SubscriptionHandle`).  Subscriptions and retries are mutually
exclusive on one connection: a retry reconnects, and the fresh connection
has none of the old one's server-side subscription state — the stream
would just go silent.  Use a dedicated ``retries=0`` client for streaming
(see docs/SERVICE.md).
"""

from __future__ import annotations

import itertools
import json
import random
import socket
import time
from collections import deque

from repro.errors import ServiceError, SubscriptionError
from repro.obs import context as trace_context
from repro.service import protocol

#: Push frames for ids with no local handle yet (the server's sender task
#: can write a delta ahead of the subscribe response) are buffered up to
#: this many before the oldest are dropped.
_MAX_ORPHAN_FRAMES = 1024


class _Retryable(Exception):
    """Internal: wraps a ServiceError that is safe to retry (the request
    was provably not executed by the server)."""

    def __init__(self, error):
        super().__init__(str(error))
        self.error = error


class ServiceClient:
    """One connection to a running :class:`~repro.service.server.ServiceServer`."""

    def __init__(
        self,
        host="127.0.0.1",
        port=7464,
        timeout=60.0,
        retries=0,
        backoff_base=0.05,
        backoff_max=2.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._ids = itertools.count(1)
        self._poisoned = False
        self._sock = None
        self._buffer = bytearray()
        self._handles = {}
        self._orphans = {}
        self._dead_subscriptions = set()
        attempt = 0
        while True:
            try:
                self._connect()
                break
            except ServiceError:
                if attempt >= self.retries:
                    raise
                time.sleep(self._backoff(attempt))
                attempt += 1

    @property
    def poisoned(self):
        """True once the request/response stream can no longer be trusted."""
        return self._poisoned

    def _connect(self):
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        self._buffer = bytearray()
        self._poisoned = False

    def _backoff(self, attempt):
        delay = min(self.backoff_max, self.backoff_base * (2**attempt))
        return delay * (0.5 + random.random())  # full jitter: 0.5x .. 1.5x

    # ------------------------------------------------------------------ raw

    def call(self, op, **payload):
        """Send one request, wait for its response, raise on failure.

        Returns the full response dict (``result``, ``version``,
        ``elapsed_ms``, ``cache``).

        The connection is *poisoned* (closed, all later calls fail fast)
        whenever the request/response pairing can no longer be trusted: a
        client-side socket timeout leaves the server's eventual response
        buffered on the wire, where a later call would read it and
        misattribute it — the id check alone can't save a pipelined
        sequence once the stream has slipped by one message.

        With ``retries=N``, a poisoned (or never-established) connection is
        transparently re-opened — the old stream stays dead, so no stale
        bytes can leak — and connect/send failures are re-attempted up to N
        times with backoff.  Failures after a complete send still surface
        immediately (see the module docstring).
        """
        payload = {k: v for k, v in payload.items() if v is not None}
        if "trace" not in payload:
            # Ambient trace propagation: inside `with obs.context.start():`
            # every outgoing request is stamped with the caller's context,
            # so the server adopts the trace id instead of minting one.
            ambient = trace_context.current()
            if ambient is not None:
                payload["trace"] = ambient.to_wire()
        attempt = 0
        while True:
            try:
                return self._call_once(op, payload)
            except _Retryable as exc:
                if attempt >= self.retries:
                    raise exc.error from exc.error.__cause__
                time.sleep(self._backoff(attempt))
                attempt += 1

    def _call_once(self, op, payload):
        if self._sock is None or self._poisoned:
            if self.retries == 0:
                raise ServiceError(
                    "connection is poisoned by an earlier timeout or protocol "
                    "desync; open a new ServiceClient"
                )
            try:
                self._connect()
            except ServiceError as exc:
                raise _Retryable(exc) from exc
        # Local ref: close() from another thread (to abort a long-poll)
        # nulls the attribute; the socket errors below cover that race.
        sock = self._sock
        request_id = next(self._ids)
        message = {"id": request_id, "op": op}
        message.update(payload)
        try:
            sock.sendall(protocol.encode(message))
        except OSError as exc:
            # Covers TimeoutError too: sendall raised, so the trailing
            # newline never reached the wire and the server will not
            # dispatch the partial line — safe to retry on a new socket.
            self._poison()
            error = ServiceError(f"connection to {self.host}:{self.port} failed: {exc}")
            error.__cause__ = exc
            raise _Retryable(error)
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        while True:
            try:
                line = self._readline(deadline)
            except TimeoutError as exc:
                # socket.timeout is TimeoutError on 3.10+; catch before OSError.
                self._poison()
                raise ServiceError(
                    f"timed out waiting for {self.host}:{self.port}; connection "
                    f"closed to avoid reading the stale response later: {exc}"
                ) from exc
            except OSError as exc:
                self._poison()
                raise ServiceError(
                    f"connection to {self.host}:{self.port} failed: {exc}"
                ) from exc
            if not line:
                self._poison()
                raise ServiceError("server closed the connection")
            try:
                response = json.loads(line)
            except ValueError as exc:
                self._poison()
                raise ServiceError(f"server sent invalid JSON: {exc}") from exc
            if protocol.is_push_frame(response):
                # Asynchronous subscription traffic interleaved with the
                # response; apply it and keep reading.
                self._dispatch_frame(response)
                continue
            break
        # Match ids BEFORE interpreting the body: a buffered stale response
        # must not surface its error (or worse, its result) as this call's.
        # ``id: null`` is allowed through — the server answers undecodable
        # requests without an id.
        response_id = response.get("id")
        if response_id is not None and response_id != request_id:
            self._poison()
            raise ServiceError(
                f"response id {response_id!r} does not match request "
                f"{request_id}; connection closed (protocol desync)"
            )
        protocol.raise_for_error(response)
        return response

    def _readline(self, deadline):
        """One newline-terminated line from the socket, buffering partial
        data so a timeout never loses bytes mid-line.  Returns ``b""`` on a
        clean EOF; raises ``TimeoutError`` when *deadline* passes first."""
        sock = self._sock
        if sock is None:
            raise OSError("connection is closed")
        while True:
            index = self._buffer.find(b"\n")
            if index >= 0:
                line = bytes(self._buffer[: index + 1])
                del self._buffer[: index + 1]
                return line
            if deadline is None:
                sock.settimeout(None)
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise socket.timeout("read deadline elapsed")
                sock.settimeout(remaining)
            chunk = sock.recv(65536)
            if not chunk:
                return b""
            self._buffer += chunk

    def _dispatch_frame(self, frame):
        sub_id = frame.get("subscription")
        handle = self._handles.get(sub_id)
        if handle is not None:
            handle._apply(frame)
            return
        if sub_id in self._dead_subscriptions:
            # Late frames for an unsubscribed id: the server's sender task
            # may already have queued them when unsubscribe was processed.
            return
        # Frames can outrun the subscribe *response* (the sender task is
        # independent); hold them until the handle registers.
        orphans = self._orphans.setdefault(sub_id, [])
        if len(orphans) >= _MAX_ORPHAN_FRAMES:
            orphans.pop(0)
        orphans.append(frame)

    def _pump(self, timeout):
        """Read and dispatch one push frame; True when one was handled,
        False when *timeout* (seconds) elapsed first.

        Only valid between requests: a non-frame message arriving here has
        no outstanding request to pair with, so the stream is desynced and
        the connection is poisoned.
        """
        if self._sock is None or self._poisoned:
            raise ServiceError(
                "connection is closed; subscriptions do not survive reconnects"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            line = self._readline(deadline)
        except TimeoutError:
            # Partial data stays buffered; the stream is still intact.
            return False
        except OSError as exc:
            self._poison()
            raise ServiceError(
                f"connection to {self.host}:{self.port} failed: {exc}"
            ) from exc
        if not line:
            self._poison()
            raise ServiceError("server closed the connection")
        try:
            message = json.loads(line)
        except ValueError as exc:
            self._poison()
            raise ServiceError(f"server sent invalid JSON: {exc}") from exc
        if not protocol.is_push_frame(message):
            self._poison()
            raise ServiceError(
                "unexpected response while waiting for push frames; "
                "connection closed (protocol desync)"
            )
        self._dispatch_frame(message)
        return True

    def _poison(self):
        self._poisoned = True
        try:
            self.close()
        except OSError:  # pragma: no cover - close errors are best-effort
            pass

    # ---------------------------------------------------------- operations

    def graphlog(self, query, predicate=None, method=None, **limits):
        """Evaluate a GraphLog DSL query; returns ``{predicate: set of rows}``."""
        response = self.call(
            "graphlog", query=query, predicate=predicate, method=method, **limits
        )
        return _relations(response)

    def datalog(self, program, predicate=None, method=None, **limits):
        """Evaluate a Datalog program; returns ``{predicate: set of rows}``."""
        response = self.call(
            "datalog", query=program, predicate=predicate, method=method, **limits
        )
        return _relations(response)

    def rpq(self, regex, source=None, **limits):
        """Evaluate a regular path query; returns a set of answer tuples."""
        response = self.call("rpq", query=regex, source=source, **limits)
        return _relations(response)["answers"]

    def update(self, nodes=None, edges=None, remove_nodes=None, remove_edges=None):
        """Commit node/edge insertions and removals; returns the new store
        version.  Additions are applied before removals, in one transaction."""
        response = self.call(
            "update",
            nodes=nodes,
            edges=edges,
            remove_nodes=remove_nodes,
            remove_edges=remove_edges,
        )
        return response["version"]

    def explain(self, query, target="graphlog", **params):
        """Trace one query end to end; returns the explain result dict.

        The result carries ``trace`` (the span tree), ``text`` (rendered
        ASCII), ``phases`` (top-level phase → ms) and per-relation counts.
        Caches are bypassed on the server so the trace always covers
        compilation and evaluation.
        """
        response = self.call("explain", query=query, target=target, **params)
        return response["result"]

    def profile(self, query, target="graphlog", **params):
        """Like :meth:`explain` without the rendered ASCII tree."""
        response = self.call("profile", query=query, target=target, **params)
        return response["result"]

    def checkpoint(self):
        """Force a durability checkpoint on the server; returns its info
        dict (``version``, ``path``, segments pruned, elapsed ms).  Fails
        with :class:`~repro.errors.ProtocolError` when the server runs
        without ``--data-dir``."""
        return self.call("checkpoint")["result"]

    def stats(self, include_histograms=None):
        """The server's metrics/cache/store statistics snapshot."""
        return self.call("stats", include_histograms=include_histograms)["result"]

    def trace_get(self, trace_id):
        """The connected node's spans for *trace_id* (ring, slowlog
        fallback); see ``repro trace`` for the cross-node assembly."""
        return self.call("trace_get", trace_id=trace_id)["result"]

    def cluster_stats(self):
        """The router's merged per-node + aggregate statistics document.
        Only routers answer this op; a plain node rejects it."""
        return self.call("cluster_stats")["result"]

    def slowlog(self, limit=None):
        """The server's slow-query log, newest first.

        Returns ``{"entries": [...], "stats": {...}}``; each entry carries
        the originating ``request_id``, op, elapsed/threshold milliseconds
        and (for traced requests) the full span tree under ``trace``.
        """
        return self.call("slowlog", limit=limit)["result"]

    def repl_bootstrap(self):
        """The server's replication bootstrap document (see
        :meth:`repro.replication.ReplicationSource.bootstrap`)."""
        return self.call("repl_bootstrap")["result"]

    def repl_tail(self, from_version, max_records=None, wait_ms=None):
        """Commit records after *from_version* (see
        :meth:`repro.replication.ReplicationSource.tail`)."""
        return self.call(
            "repl_tail",
            from_version=from_version,
            max_records=max_records,
            wait_ms=wait_ms,
        )["result"]

    def promote(self):
        """Promote the connected *replica* to a writable primary under a
        fresh epoch (see :meth:`repro.service.server.QueryService.promote`).
        Fails with :class:`~repro.errors.ProtocolError` when the server is
        not a replica.  Returns the promotion document (``promoted_from``,
        ``applied_version``, ``epoch``)."""
        return self.call("promote")["result"]

    def ping(self):
        return self.call("ping")["result"]["pong"]

    # -------------------------------------------------------- subscriptions

    def subscribe(
        self,
        query,
        target="graphlog",
        predicate=None,
        method=None,
        source=None,
        policy=None,
        queue_max=None,
        allow_fallback=None,
        on_event=None,
        **limits,
    ):
        """Register *query* for live maintenance; returns a
        :class:`SubscriptionHandle` holding the initial snapshot.

        The handle's ``rows`` track the server's maintained answer: call
        :meth:`SubscriptionHandle.next_event` (or iterate ``events()``) to
        pump the connection and apply queued delta frames.  Non-maintainable
        queries (aggregation, RPQ) raise
        :class:`~repro.errors.NotMaintainable` unless ``allow_fallback=True``
        opts into server-side diff-based re-evaluation.

        Raises :class:`~repro.errors.SubscriptionError` when the client was
        built with ``retries > 0``: a retry reconnects, and server-side
        subscription state does not survive a reconnect — the stream would
        silently go dead.  Use a dedicated ``retries=0`` client.
        """
        if self.retries:
            raise SubscriptionError(
                "subscriptions and retries are mutually exclusive on one "
                "connection: a retry reconnects and silently drops all "
                "server-side subscription state; use a retries=0 client"
            )
        response = self.call(
            "subscribe",
            query=query,
            target=target,
            predicate=predicate,
            method=method,
            source=source,
            policy=policy,
            queue_max=queue_max,
            allow_fallback=allow_fallback,
            **limits,
        )
        result = response["result"]
        rows = {
            name: {tuple(row) for row in rel}
            for name, rel in result["snapshot"].items()
        }
        handle = SubscriptionHandle(
            self,
            result["subscription"],
            rows,
            response.get("version", -1),
            predicates=tuple(result.get("predicates", ())),
            mode=result.get("mode"),
            policy=result.get("policy"),
            queue_max=result.get("queue_max"),
            fallback_reason=result.get("fallback_reason"),
            on_event=on_event,
        )
        self._handles[handle.id] = handle
        # Frames that raced ahead of the subscribe response.
        for frame in self._orphans.pop(handle.id, ()):
            handle._apply(frame)
        return handle

    def unsubscribe(self, handle):
        """Tear down a subscription (by handle or id); the handle is closed
        locally even when late frames for it are still in flight."""
        sub_id = handle.id if isinstance(handle, SubscriptionHandle) else int(handle)
        response = self.call("unsubscribe", subscription=sub_id)
        self._dead_subscriptions.add(sub_id)
        self._orphans.pop(sub_id, None)
        closed = self._handles.pop(sub_id, None)
        if closed is not None:
            closed._mark_closed("unsubscribed")
        return response["result"]

    # ------------------------------------------------------------ lifecycle

    def close(self):
        sock, self._sock = self._sock, None
        for handle in list(self._handles.values()):
            handle._mark_closed("connection closed")
        if sock is not None:
            # shutdown() (unlike close()) reliably unblocks another thread
            # parked in recv() on this socket — the replica applier closes
            # its client from the stopping thread to abort a long-poll.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()


class SubscriptionHandle:
    """One live subscription: a locally materialized result set plus the
    event stream that keeps it current.

    ``rows`` maps predicate → set of answer tuples and always reflects the
    last applied frame; ``version`` is the store version it corresponds to.
    Events are dicts — ``{"type": "delta", "version", "inserted",
    "deleted"}``, ``{"type": "snapshot", "version", "resync"}`` (the server
    replaced the state wholesale, e.g. after queue overflow under the
    ``resync`` policy), and the terminal ``{"type": "closed", "reason"}``.
    Pass ``on_event`` to :meth:`ServiceClient.subscribe` to consume them via
    callback instead of the queue.  Not thread-safe, like the owning client.
    """

    def __init__(
        self,
        client,
        sub_id,
        rows,
        version,
        predicates=(),
        mode=None,
        policy=None,
        queue_max=None,
        fallback_reason=None,
        on_event=None,
    ):
        self.client = client
        self.id = sub_id
        self.rows = rows
        self.version = version
        self.predicates = predicates
        self.mode = mode
        self.policy = policy
        self.queue_max = queue_max
        self.fallback_reason = fallback_reason
        self.on_event = on_event
        self.closed = None  # reason string once terminal
        self._events = deque()

    def result(self, predicate=None):
        """A copy of the materialized answer: one predicate's set of rows,
        or the full ``{predicate: rows}`` map."""
        if predicate is not None:
            return set(self.rows.get(predicate, ()))
        return {name: set(rel) for name, rel in self.rows.items()}

    def next_event(self, timeout=None):
        """The next event for this subscription, pumping the connection
        while other traffic (or nothing) arrives; None once *timeout*
        seconds pass without one."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._events:
                return self._events.popleft()
            if self.closed is not None:
                return {"type": "closed", "reason": self.closed}
            if deadline is None:
                remaining = None
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
            if not self.client._pump(remaining):
                return None

    def events(self, timeout=None):
        """Iterate events until the subscription closes or a pump times out."""
        while True:
            event = self.next_event(timeout)
            if event is None:
                return
            yield event
            if event["type"] == "closed":
                return

    def unsubscribe(self):
        self.client.unsubscribe(self)

    # ------------------------------------------------------------- internal

    def _apply(self, frame):
        kind = frame.get("frame")
        if kind == "delta":
            version = frame.get("version", -1)
            if version <= self.version:
                # Already covered by a (re)snapshot that raced ahead.
                return
            inserted = _wire_rows(frame.get("inserted"))
            deleted = _wire_rows(frame.get("deleted"))
            for name, rel in inserted.items():
                self.rows.setdefault(name, set()).update(rel)
            for name, rel in deleted.items():
                self.rows.setdefault(name, set()).difference_update(rel)
            self.version = version
            event = {
                "type": "delta",
                "version": version,
                "inserted": inserted,
                "deleted": deleted,
            }
            if frame.get("trace_id") is not None:
                # The distributed trace of the commit that produced this
                # delta — `repro trace <id>` shows the write it came from.
                event["trace_id"] = frame["trace_id"]
            self._emit(event)
        elif kind == "snapshot":
            self.rows = _wire_rows(frame.get("relations"))
            self.version = frame.get("version", -1)
            self._emit(
                {
                    "type": "snapshot",
                    "version": self.version,
                    "resync": bool(frame.get("resync")),
                }
            )
        elif kind == "closed":
            self._mark_closed(frame.get("reason", "closed"))

    def _mark_closed(self, reason):
        if self.closed is not None:
            return
        self.closed = reason
        self._emit({"type": "closed", "reason": reason})

    def _emit(self, event):
        if self.on_event is not None:
            self.on_event(event)
        else:
            self._events.append(event)


def _wire_rows(relations):
    return {
        name: {tuple(row) for row in rel} for name, rel in (relations or {}).items()
    }


def _relations(response):
    return {
        name: {tuple(row) for row in rows}
        for name, rows in response["result"]["relations"].items()
    }
