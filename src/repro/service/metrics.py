"""Service metrics: counters, an in-flight gauge, and latency histograms.

Latencies used to live in bounded per-op rings of recent samples from which
p50/p95 were computed on demand.  That window had a bias worth naming: a
2048-sample deque forgets everything older than the last 2048 requests, so
a burst of fast cache hits evicts exactly the slow tail a dashboard wants,
and two windows cannot be merged (percentiles of percentiles are
meaningless).  Latencies and phase durations are now held in mergeable
fixed-bucket histograms (:class:`repro.obs.metrics.HistogramData`): every
observation since process start contributes, quantiles are interpolated
inside the owning bucket and clamped to the observed extremes, and the same
data renders as Prometheus text exposition through :attr:`exposition`.

The dict-shaped :meth:`snapshot` keeps its exact keys (``counters``,
``latency`` with ``count/p50_ms/p95_ms/max_ms``, ``phases`` with
``count/p50_ms/p95_ms/total_ms``, ``in_flight``) so existing clients and
tests are unaffected; ``p99_ms`` is added alongside.  All methods are
thread-safe; the asyncio server updates the registry from worker threads.
"""

from __future__ import annotations

import math
import threading
from collections import defaultdict

from repro.obs.metrics import (
    Gauge,
    HistogramData,
    MetricFamily,
    Registry,
    sanitize_metric_name,
)


def percentile(samples, fraction):
    """The *fraction*-quantile of *samples* (nearest-rank on a sorted copy).

    Edge cases are defined, not exceptional: an empty window returns
    ``None`` (callers render it as absent, never crash), and a single
    sample is every percentile of itself.  Retained for ad-hoc use and
    backward compatibility — the registry itself now uses bucketed
    histograms, which don't suffer the sliding-window bias this function
    inherits from whatever window it is handed.
    """
    if not samples:
        return None
    ordered = sorted(samples)
    rank = math.ceil(fraction * len(ordered)) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


class MetricsRegistry:
    """Counts, gauges and latency histograms for the query service."""

    def __init__(self, window=None):
        # ``window`` is accepted for backward compatibility with the old
        # sample-window implementation and ignored: histograms are not
        # windowed.
        self._lock = threading.Lock()
        self._counters = defaultdict(int)
        self._pinned = set()  # names set via set_counter (gauge semantics)
        self._latency = {}
        self._phases = {}
        self._in_flight = 0
        #: Prometheus exposition registry; the service adds its own
        #: collectors (store statistics) and renders this on scrape.
        self.exposition = Registry()
        self.exposition.collector(self._families)
        self._in_flight_gauge = Gauge(
            "repro_in_flight_requests",
            "Requests currently executing or queued in the service",
            registry=self.exposition,
        )

    # ------------------------------------------------------------ updates

    def incr(self, name, amount=1):
        with self._lock:
            self._counters[name] += amount

    def set_counter(self, name, value):
        """Pin a counter to an externally-tracked value (e.g. a cache's
        commit-driven counters, mirrored into snapshots on demand)."""
        with self._lock:
            self._counters[name] = value
            self._pinned.add(name)

    def observe_latency(self, op, seconds):
        with self._lock:
            hist = self._latency.get(op)
            if hist is None:
                hist = self._latency[op] = HistogramData()
            hist.observe(seconds)

    def observe_phase(self, phase, seconds):
        """Record one pipeline-phase duration (plan, cache_lookup, evaluate,
        encode, queue_wait, ...) for the per-phase latency breakdown."""
        self.observe_phases(((phase, seconds),))

    def observe_phases(self, pairs):
        """Record several ``(phase, seconds)`` samples under one lock grab —
        the request hot path batches its phases to keep the fixed per-request
        cost at a single extra acquisition."""
        with self._lock:
            for phase, seconds in pairs:
                hist = self._phases.get(phase)
                if hist is None:
                    hist = self._phases[phase] = HistogramData()
                hist.observe(seconds)

    def request_started(self):
        with self._lock:
            self._in_flight += 1

    def request_finished(self):
        with self._lock:
            # Clamp: the gauge must never read negative, even if shutdown
            # races ever unbalance a started/finished pair (the clamp events
            # are counted so the imbalance stays visible).
            if self._in_flight > 0:
                self._in_flight -= 1
            else:
                self._counters["gauge.in_flight_clamped"] += 1

    def request_completed(self, op, seconds, phases=()):
        """End-of-request bookkeeping — the ``requests.<op>`` counter, the
        latency sample, the in-flight decrement, and the request's phase
        samples — under one lock grab (separate acquisitions are measurable
        on the ~12µs cache-hit path)."""
        with self._lock:
            self._counters[f"requests.{op}"] += 1
            hist = self._latency.get(op)
            if hist is None:
                hist = self._latency[op] = HistogramData()
            hist.observe(seconds)
            if self._in_flight > 0:
                self._in_flight -= 1
            else:
                self._counters["gauge.in_flight_clamped"] += 1
            for phase, elapsed in phases:
                hist = self._phases.get(phase)
                if hist is None:
                    hist = self._phases[phase] = HistogramData()
                hist.observe(elapsed)

    # ------------------------------------------------------------- export

    @property
    def in_flight(self):
        with self._lock:
            return self._in_flight

    def counter(self, name):
        with self._lock:
            return self._counters[name]

    def snapshot(self, include_histograms=False):
        """A JSON-ready dict of everything the registry knows.

        With *include_histograms*, each per-op latency entry additionally
        carries the raw histogram in its mergeable wire form
        (:meth:`HistogramData.to_wire`) under ``"histogram"`` — the
        router's ``cluster_stats`` merges these across nodes to compute
        true cluster-wide quantiles (quantiles of quantiles would be
        meaningless).
        """
        with self._lock:
            latency = {}
            for op, hist in self._latency.items():
                entry = {
                    "count": hist.count,
                    "p50_ms": _ms(hist.quantile(0.50)),
                    "p95_ms": _ms(hist.quantile(0.95)),
                    "p99_ms": _ms(hist.quantile(0.99)),
                    "max_ms": _ms(hist.max),
                }
                if include_histograms:
                    entry["histogram"] = hist.to_wire()
                latency[op] = entry
            phases = {}
            for phase, hist in self._phases.items():
                phases[phase] = {
                    "count": hist.count,
                    "p50_ms": _ms(hist.quantile(0.50)),
                    "p95_ms": _ms(hist.quantile(0.95)),
                    "p99_ms": _ms(hist.quantile(0.99)),
                    "total_ms": _ms(hist.sum),
                }
            return {
                "counters": dict(self._counters),
                "latency": latency,
                "phases": phases,
                "in_flight": self._in_flight,
            }

    def render_prometheus(self):
        """The exposition registry as Prometheus text format 0.0.4."""
        return self.exposition.render()

    # ----------------------------------------------------- exposition map

    def _families(self):
        """Map internal dotted names onto Prometheus families.

        ``requests.<op>`` and ``errors.<code>`` become labeled counter
        families; counters pinned via :meth:`set_counter` are mirrors of
        external point-in-time values and export as gauges; everything
        else incremented via :meth:`incr` is a monotonic ``_total``
        counter.  Latency and phase histograms export with ``op``/``phase``
        labels, and the ``wal.fsync`` phase additionally exports under its
        own name so fsync latency is scrapable without a phase join.
        """
        with self._lock:
            counters = dict(self._counters)
            pinned = set(self._pinned)
            latency = {op: h.copy() for op, h in self._latency.items()}
            phases = {ph: h.copy() for ph, h in self._phases.items()}
            self._in_flight_gauge.set(self._in_flight)

        families = []

        requests = MetricFamily(
            "repro_requests_total", "counter", "Requests handled, by wire op"
        )
        errors = MetricFamily(
            "repro_errors_total", "counter", "Failed requests, by error code"
        )
        plain = {}
        for name, value in sorted(counters.items()):
            if name.startswith("requests."):
                requests.add_sample(value, {"op": name[len("requests."):]})
            elif name.startswith("errors."):
                errors.add_sample(value, {"code": name[len("errors."):]})
            elif name in pinned:
                metric = "repro_" + sanitize_metric_name(name)
                plain.setdefault(
                    metric,
                    MetricFamily(metric, "gauge", f"Mirror of service stat {name}"),
                ).add_sample(value)
            else:
                metric = "repro_" + sanitize_metric_name(name) + "_total"
                plain.setdefault(
                    metric,
                    MetricFamily(metric, "counter", f"Total of service counter {name}"),
                ).add_sample(value)
        if requests.samples:
            families.append(requests)
        if errors.samples:
            families.append(errors)
        families.extend(plain.values())

        if latency:
            fam = MetricFamily(
                "repro_request_seconds",
                "histogram",
                "Request wall-clock latency, by wire op",
            )
            for op, hist in sorted(latency.items()):
                fam.add_histogram(hist, {"op": op})
            families.append(fam)
        if phases:
            fam = MetricFamily(
                "repro_phase_seconds",
                "histogram",
                "Pipeline phase duration (queue_wait, plan, evaluate, ...)",
            )
            for phase, hist in sorted(phases.items()):
                fam.add_histogram(hist, {"phase": phase})
            families.append(fam)
            fsync = phases.get("wal.fsync")
            if fsync is not None:
                families.append(
                    MetricFamily(
                        "repro_wal_fsync_seconds",
                        "histogram",
                        "WAL fsync latency (alias of phase wal.fsync)",
                    ).add_histogram(fsync)
                )
        return families


def _ms(seconds):
    return None if seconds is None else round(seconds * 1000.0, 3)
