"""Service metrics: counters, an in-flight gauge, and latency percentiles.

A deliberately small, dependency-free registry.  Latencies are kept per
operation in a bounded ring of recent samples (default 2048), from which
p50/p95 are computed on demand — the sliding-window flavor of percentile
that serving dashboards actually want.  All methods are thread-safe; the
asyncio server updates it from worker threads.
"""

from __future__ import annotations

import math
import threading
from collections import defaultdict, deque


def percentile(samples, fraction):
    """The *fraction*-quantile of *samples* (nearest-rank on a sorted copy)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = math.ceil(fraction * len(ordered)) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


class MetricsRegistry:
    """Counts, gauges and latency windows for the query service."""

    def __init__(self, window=2048):
        self._lock = threading.Lock()
        self._counters = defaultdict(int)
        self._latencies = defaultdict(lambda: deque(maxlen=window))
        self._in_flight = 0

    # ------------------------------------------------------------ updates

    def incr(self, name, amount=1):
        with self._lock:
            self._counters[name] += amount

    def set_counter(self, name, value):
        """Pin a counter to an externally-tracked value (e.g. a cache's
        commit-driven counters, mirrored into snapshots on demand)."""
        with self._lock:
            self._counters[name] = value

    def observe_latency(self, op, seconds):
        with self._lock:
            self._latencies[op].append(seconds)

    def request_started(self):
        with self._lock:
            self._in_flight += 1

    def request_finished(self):
        with self._lock:
            self._in_flight -= 1

    # ------------------------------------------------------------- export

    @property
    def in_flight(self):
        with self._lock:
            return self._in_flight

    def counter(self, name):
        with self._lock:
            return self._counters[name]

    def snapshot(self):
        """A JSON-ready dict of everything the registry knows."""
        with self._lock:
            latency = {}
            for op, window in self._latencies.items():
                samples = list(window)
                latency[op] = {
                    "count": len(samples),
                    "p50_ms": _ms(percentile(samples, 0.50)),
                    "p95_ms": _ms(percentile(samples, 0.95)),
                    "max_ms": _ms(max(samples) if samples else None),
                }
            return {
                "counters": dict(self._counters),
                "latency": latency,
                "in_flight": self._in_flight,
            }


def _ms(seconds):
    return None if seconds is None else round(seconds * 1000.0, 3)
